//! Property-style tests over randomly generated programs.
//!
//! A small structured-program generator (straight-line arithmetic,
//! if/else, bounded loops over a handful of variables) produces valid IR
//! modules from a deterministic in-tree PRNG (the environment is
//! offline, so `proptest` is unavailable; the generator and case counts
//! mirror the original proptest suite). The properties assert the
//! system's core invariants:
//!
//! 1. the emulator is deterministic;
//! 2. SCHEMATIC compilation preserves program semantics;
//! 3. intermittent execution of a SCHEMATIC binary terminates with the
//!    same result, with **zero re-execution energy and zero mid-interval
//!    failures** (the paper's forward-progress guarantee);
//! 4. the independent placement verifier agrees (`max_interval ≤ EB`);
//! 5. printing and re-parsing the generated module round-trips.

use schematic_repro::benchsuite::inputs::SplitMix64;
use schematic_repro::emu::{run, InstrumentedModule, Machine, PowerModel, RunConfig};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::ir::{
    parse_module, print_module, BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable,
};
use schematic_repro::schematic::{compile, verify_placement, SchematicConfig};

// ---------------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------------

const N_VARS: usize = 4;
const CASES: u64 = 48;

#[derive(Debug, Clone)]
enum Stmt {
    /// vars[dst] = vars[src] <op> constant
    Arith {
        dst: usize,
        src: usize,
        op: BinOp,
        k: i32,
    },
    /// if (vars[c] & 1) { then } else { els }
    If {
        c: usize,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// repeat `n` times { body }
    Loop { n: u8, body: Vec<Stmt> },
}

fn gen_op(rng: &mut SplitMix64) -> BinOp {
    match rng.below(6) {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Xor,
        3 => BinOp::Mul,
        4 => BinOp::And,
        _ => BinOp::Or,
    }
}

fn gen_stmt(rng: &mut SplitMix64, depth: u32) -> Stmt {
    // At depth 0 only leaves; otherwise mostly leaves with occasional
    // nesting, like the original `prop_recursive(2, 24, 4, ..)` shape.
    let choice = if depth == 0 { 0 } else { rng.below(4) };
    match choice {
        1 => {
            let c = rng.below(N_VARS as u32) as usize;
            let then = gen_stmts(rng, depth - 1, 1, 3);
            let els = gen_stmts(rng, depth - 1, 0, 2);
            Stmt::If { c, then, els }
        }
        2 => {
            let n = 1 + rng.below(5) as u8;
            let body = gen_stmts(rng, depth - 1, 1, 3);
            Stmt::Loop { n, body }
        }
        _ => Stmt::Arith {
            dst: rng.below(N_VARS as u32) as usize,
            src: rng.below(N_VARS as u32) as usize,
            op: gen_op(rng),
            k: (rng.next_i32() >> 16) | 1,
        },
    }
}

fn gen_stmts(rng: &mut SplitMix64, depth: u32, min: u32, max: u32) -> Vec<Stmt> {
    let n = min + rng.below(max - min + 1);
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

fn gen_program(seed: u64) -> Vec<Stmt> {
    let mut rng = SplitMix64::new(seed);
    gen_stmts(&mut rng, 2, 1, 5)
}

fn gen_tbpf(seed: u64) -> u64 {
    let mut rng = SplitMix64::new(seed ^ 0xD1B5_4A32_D192_ED03);
    1_500 + u64::from(rng.below(38_500))
}

/// Lowers the statement list to an IR module over N_VARS scalars plus a
/// result accumulator.
fn lower(stmts: &[Stmt]) -> Module {
    let mut mb = ModuleBuilder::new("generated");
    let vars: Vec<_> = (0..N_VARS)
        .map(|i| mb.var(Variable::scalar(format!("v{i}")).with_init(vec![i as i32 + 1])))
        .collect();
    let mut f = FunctionBuilder::new("main", 0);
    lower_stmts(&mut f, &vars, stmts);
    // Result: xor of all variables.
    let mut acc = f.load_scalar(vars[0]);
    for &v in &vars[1..] {
        let x = f.load_scalar(v);
        acc = f.bin(BinOp::Xor, acc, x);
    }
    f.ret(Some(acc.into()));
    let main = mb.func(f.finish());
    mb.finish(main)
}

fn lower_stmts(f: &mut FunctionBuilder, vars: &[schematic_repro::ir::VarId], stmts: &[Stmt]) {
    for stmt in stmts {
        match stmt {
            Stmt::Arith { dst, src, op, k } => {
                let s = f.load_scalar(vars[*src]);
                let r = f.bin(*op, s, *k);
                f.store_scalar(vars[*dst], r);
            }
            Stmt::If { c, then, els } => {
                let then_bb = f.new_block("t");
                let else_bb = f.new_block("e");
                let join = f.new_block("j");
                let cv = f.load_scalar(vars[*c]);
                let bit = f.bin(BinOp::And, cv, 1);
                f.cond_br(bit, then_bb, else_bb);
                f.switch_to(then_bb);
                lower_stmts(f, vars, then);
                f.br(join);
                f.switch_to(else_bb);
                lower_stmts(f, vars, els);
                f.br(join);
                f.switch_to(join);
            }
            Stmt::Loop { n, body } => {
                let header = f.new_block("h");
                let body_bb = f.new_block("b");
                let exit = f.new_block("x");
                let i = f.copy(0);
                f.br(header);
                f.switch_to(header);
                f.set_max_iters(header, u64::from(*n) + 1);
                let done = f.cmp(CmpOp::SGe, i, i32::from(*n));
                f.cond_br(done, exit, body_bb);
                f.switch_to(body_bb);
                lower_stmts(f, vars, body);
                let i2 = f.bin(BinOp::Add, i, 1);
                f.copy_to(i, i2);
                f.br(header);
                f.switch_to(exit);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

fn table() -> CostTable {
    CostTable::msp430fr5969()
}

#[test]
fn generated_modules_verify_and_roundtrip() {
    for seed in 0..CASES {
        let m = lower(&gen_program(seed));
        assert!(
            schematic_repro::ir::verify_module(&m).is_empty(),
            "seed {seed}"
        );
        let text = print_module(&m);
        let reparsed = parse_module(&text).expect("printer output parses");
        // The printer may rename duplicate labels, so compare the stable
        // textual fixpoint rather than the structures directly.
        assert_eq!(text, print_module(&reparsed), "seed {seed}");
        // And the reparsed program must behave identically.
        let a = run(&InstrumentedModule::bare(m), RunConfig::default()).unwrap();
        let b = run(&InstrumentedModule::bare(reparsed), RunConfig::default()).unwrap();
        assert_eq!(a.result, b.result, "seed {seed}");
    }
}

#[test]
fn emulator_is_deterministic() {
    for seed in 0..CASES {
        let m = lower(&gen_program(seed));
        let im = InstrumentedModule::bare(m);
        let a = run(&im, RunConfig::default()).unwrap();
        let b = run(&im, RunConfig::default()).unwrap();
        assert_eq!(a.result, b.result, "seed {seed}");
        assert_eq!(
            a.metrics.active_cycles, b.metrics.active_cycles,
            "seed {seed}"
        );
        assert_eq!(
            a.metrics.total_energy(),
            b.metrics.total_energy(),
            "seed {seed}"
        );
    }
}

#[test]
fn compilation_preserves_semantics() {
    for seed in 0..CASES {
        let m = lower(&gen_program(seed));
        let tbpf = gen_tbpf(seed);
        let golden = run(&InstrumentedModule::bare(m.clone()), RunConfig::default()).unwrap();
        let t = table();
        let eb = Energy::from_pj(t.cpu_pj_per_cycle) * tbpf;
        let compiled = match compile(&m, &t, &SchematicConfig::new(eb)) {
            Ok(c) => c,
            Err(e) => panic!("seed {seed}: compile: {e}"),
        };
        // Continuous power.
        let cont = Machine::new(&compiled.instrumented, &t, RunConfig::default())
            .run()
            .unwrap();
        assert_eq!(cont.result, golden.result, "seed {seed}");
        assert_eq!(cont.metrics.coherence_violations, 0, "seed {seed}");
    }
}

#[test]
fn forward_progress_under_intermittent_power() {
    for seed in 0..CASES {
        let m = lower(&gen_program(seed));
        let tbpf = gen_tbpf(seed);
        let golden = run(&InstrumentedModule::bare(m.clone()), RunConfig::default()).unwrap();
        let t = table();
        let eb = Energy::from_pj(t.cpu_pj_per_cycle) * tbpf;
        let compiled = match compile(&m, &t, &SchematicConfig::new(eb)) {
            Ok(c) => c,
            Err(e) => panic!("seed {seed}: compile: {e}"),
        };
        let cfg = RunConfig {
            power: PowerModel::Periodic { tbpf },
            ..RunConfig::default()
        };
        let out = Machine::new(&compiled.instrumented, &t, cfg).run().unwrap();
        assert!(out.completed(), "seed {seed}: status {:?}", out.status);
        assert_eq!(out.result, golden.result, "seed {seed}");
        assert_eq!(out.metrics.reexecution, Energy::ZERO, "seed {seed}");
        assert_eq!(out.metrics.unexpected_failures, 0, "seed {seed}");
        assert!(out.metrics.peak_vm_bytes <= 2048, "seed {seed}");
    }
}

#[test]
fn verifier_bounds_every_interval() {
    for seed in 0..CASES {
        let m = lower(&gen_program(seed));
        let tbpf = gen_tbpf(seed);
        let t = table();
        let eb = Energy::from_pj(t.cpu_pj_per_cycle) * tbpf;
        let compiled = match compile(&m, &t, &SchematicConfig::new(eb)) {
            Ok(c) => c,
            Err(e) => panic!("seed {seed}: compile: {e}"),
        };
        let report = verify_placement(&compiled.instrumented, &t, eb);
        assert!(report.is_sound(), "seed {seed}: {:?}", report.violations);
        assert!(report.max_interval <= eb, "seed {seed}");
    }
}
