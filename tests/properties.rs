//! Property-based tests over randomly generated programs.
//!
//! A small structured-program generator (straight-line arithmetic,
//! if/else, bounded loops over a handful of variables) produces valid IR
//! modules; the properties assert the system's core invariants on them:
//!
//! 1. the emulator is deterministic;
//! 2. SCHEMATIC compilation preserves program semantics;
//! 3. intermittent execution of a SCHEMATIC binary terminates with the
//!    same result, with **zero re-execution energy and zero mid-interval
//!    failures** (the paper's forward-progress guarantee);
//! 4. the independent placement verifier agrees (`max_interval ≤ EB`);
//! 5. printing and re-parsing the generated module round-trips.

use proptest::prelude::*;
use schematic_repro::emu::{run, InstrumentedModule, Machine, PowerModel, RunConfig};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::ir::{
    parse_module, print_module, BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable,
};
use schematic_repro::schematic::{compile, verify_placement, SchematicConfig};

// ---------------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------------

const N_VARS: usize = 4;

#[derive(Debug, Clone)]
enum Stmt {
    /// vars[dst] = vars[src] <op> constant
    Arith {
        dst: usize,
        src: usize,
        op: BinOp,
        k: i32,
    },
    /// if (vars[c] & 1) { then } else { els }
    If {
        c: usize,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// repeat `n` times { body } (`tag` only diversifies shrinking)
    Loop {
        n: u8,
        body: Vec<Stmt>,
        #[allow(dead_code)]
        tag: u32,
    },
}

fn arb_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Xor),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_stmt(depth: u32) -> impl Strategy<Value = Stmt> {
    let leaf = (0..N_VARS, 0..N_VARS, arb_op(), any::<i16>()).prop_map(|(dst, src, op, k)| {
        Stmt::Arith {
            dst,
            src,
            op,
            k: i32::from(k) | 1,
        }
    });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (
                0..N_VARS,
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, then, els)| Stmt::If { c, then, els }),
            (1u8..6, prop::collection::vec(inner, 1..4), any::<u32>())
                .prop_map(|(n, body, tag)| Stmt::Loop { n, body, tag }),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Vec<Stmt>> {
    prop::collection::vec(arb_stmt(2), 1..6)
}

/// Lowers the statement list to an IR module over N_VARS scalars plus a
/// result accumulator.
fn lower(stmts: &[Stmt]) -> Module {
    let mut mb = ModuleBuilder::new("generated");
    let vars: Vec<_> = (0..N_VARS)
        .map(|i| mb.var(Variable::scalar(format!("v{i}")).with_init(vec![i as i32 + 1])))
        .collect();
    let mut f = FunctionBuilder::new("main", 0);
    lower_stmts(&mut f, &vars, stmts);
    // Result: xor of all variables.
    let mut acc = f.load_scalar(vars[0]);
    for &v in &vars[1..] {
        let x = f.load_scalar(v);
        acc = f.bin(BinOp::Xor, acc, x);
    }
    f.ret(Some(acc.into()));
    let main = mb.func(f.finish());
    mb.finish(main)
}

fn lower_stmts(
    f: &mut FunctionBuilder,
    vars: &[schematic_repro::ir::VarId],
    stmts: &[Stmt],
) {
    for stmt in stmts {
        match stmt {
            Stmt::Arith { dst, src, op, k } => {
                let s = f.load_scalar(vars[*src]);
                let r = f.bin(*op, s, *k);
                f.store_scalar(vars[*dst], r);
            }
            Stmt::If { c, then, els } => {
                let then_bb = f.new_block("t");
                let else_bb = f.new_block("e");
                let join = f.new_block("j");
                let cv = f.load_scalar(vars[*c]);
                let bit = f.bin(BinOp::And, cv, 1);
                f.cond_br(bit, then_bb, else_bb);
                f.switch_to(then_bb);
                lower_stmts(f, vars, then);
                f.br(join);
                f.switch_to(else_bb);
                lower_stmts(f, vars, els);
                f.br(join);
                f.switch_to(join);
            }
            Stmt::Loop { n, body, tag: _ } => {
                let header = f.new_block("h");
                let body_bb = f.new_block("b");
                let exit = f.new_block("x");
                let i = f.copy(0);
                f.br(header);
                f.switch_to(header);
                f.set_max_iters(header, u64::from(*n) + 1);
                let done = f.cmp(CmpOp::SGe, i, i32::from(*n));
                f.cond_br(done, exit, body_bb);
                f.switch_to(body_bb);
                lower_stmts(f, vars, body);
                let i2 = f.bin(BinOp::Add, i, 1);
                f.copy_to(i, i2);
                f.br(header);
                f.switch_to(exit);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

fn table() -> CostTable {
    CostTable::msp430fr5969()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_modules_verify_and_roundtrip(stmts in arb_program()) {
        let m = lower(&stmts);
        prop_assert!(schematic_repro::ir::verify_module(&m).is_empty());
        let text = print_module(&m);
        let reparsed = parse_module(&text).expect("printer output parses");
        // The printer may rename duplicate labels, so compare the stable
        // textual fixpoint rather than the structures directly.
        prop_assert_eq!(&text, &print_module(&reparsed));
        // And the reparsed program must behave identically.
        let a = run(&InstrumentedModule::bare(m), RunConfig::default()).unwrap();
        let b = run(&InstrumentedModule::bare(reparsed), RunConfig::default()).unwrap();
        prop_assert_eq!(a.result, b.result);
    }

    #[test]
    fn emulator_is_deterministic(stmts in arb_program()) {
        let m = lower(&stmts);
        let im = InstrumentedModule::bare(m);
        let a = run(&im, RunConfig::default()).unwrap();
        let b = run(&im, RunConfig::default()).unwrap();
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(a.metrics.active_cycles, b.metrics.active_cycles);
        prop_assert_eq!(a.metrics.total_energy(), b.metrics.total_energy());
    }

    #[test]
    fn compilation_preserves_semantics(stmts in arb_program(), tbpf in 1_500u64..40_000) {
        let m = lower(&stmts);
        let golden = run(&InstrumentedModule::bare(m.clone()), RunConfig::default())
            .unwrap();
        let t = table();
        let eb = Energy::from_pj(t.cpu_pj_per_cycle) * tbpf;
        let compiled = match compile(&m, &t, &SchematicConfig::new(eb)) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("compile: {e}"))),
        };
        // Continuous power.
        let cont = Machine::new(&compiled.instrumented, &t, RunConfig::default())
            .run()
            .unwrap();
        prop_assert_eq!(cont.result, golden.result);
        prop_assert_eq!(cont.metrics.coherence_violations, 0);
    }

    #[test]
    fn forward_progress_under_intermittent_power(
        stmts in arb_program(),
        tbpf in 1_500u64..40_000,
    ) {
        let m = lower(&stmts);
        let golden = run(&InstrumentedModule::bare(m.clone()), RunConfig::default())
            .unwrap();
        let t = table();
        let eb = Energy::from_pj(t.cpu_pj_per_cycle) * tbpf;
        let compiled = match compile(&m, &t, &SchematicConfig::new(eb)) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("compile: {e}"))),
        };
        let cfg = RunConfig {
            power: PowerModel::Periodic { tbpf },
            ..RunConfig::default()
        };
        let out = Machine::new(&compiled.instrumented, &t, cfg).run().unwrap();
        prop_assert!(out.completed(), "status {:?}", out.status);
        prop_assert_eq!(out.result, golden.result);
        prop_assert_eq!(out.metrics.reexecution, Energy::ZERO);
        prop_assert_eq!(out.metrics.unexpected_failures, 0);
        prop_assert!(out.metrics.peak_vm_bytes <= 2048);
    }

    #[test]
    fn verifier_bounds_every_interval(stmts in arb_program(), tbpf in 1_500u64..40_000) {
        let m = lower(&stmts);
        let t = table();
        let eb = Energy::from_pj(t.cpu_pj_per_cycle) * tbpf;
        let compiled = match compile(&m, &t, &SchematicConfig::new(eb)) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("compile: {e}"))),
        };
        let report = verify_placement(&compiled.instrumented, &t, eb);
        prop_assert!(report.is_sound(), "{:?}", report.violations);
        prop_assert!(report.max_interval <= eb);
    }
}
