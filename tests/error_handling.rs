//! Error-path integration tests: the pipeline must fail *informatively*
//! (never panic) on impossible inputs, and the emulator must surface
//! program bugs as typed traps.

use schematic_repro::emu::{run, InstrumentedModule, RunConfig, TrapKind};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::ir::{parse_module, FunctionBuilder, ModuleBuilder, Variable};
use schematic_repro::schematic::{compile, PlacementError, SchematicConfig};

#[test]
fn absurdly_small_budget_is_a_clean_error() {
    let m = parse_module(
        "var @x : 1\nfunc @main(0) {\nentry:\n  r0 = load @x\n  store @x, r0\n  ret\n}",
    )
    .unwrap();
    let table = CostTable::msp430fr5969();
    // Smaller than a single instruction: block splitting cannot help.
    let err = compile(&m, &table, &SchematicConfig::new(Energy::from_pj(50))).unwrap_err();
    assert!(
        matches!(err, PlacementError::BudgetTooSmall { .. }),
        "{err}"
    );
    assert!(err.to_string().contains("budget too small"));
}

#[test]
fn budget_below_checkpoint_overheads_fails_not_panics() {
    // Enough for individual instructions but not for any checkpoint
    // overhead: the repair pass must give up with a typed error rather
    // than loop or panic.
    let mut mb = ModuleBuilder::new("m");
    let x = mb.var(Variable::scalar("x"));
    let mut f = FunctionBuilder::new("main", 0);
    for _ in 0..200 {
        let v = f.load_scalar(x);
        f.store_scalar(x, v);
    }
    f.ret(None);
    let main = mb.func(f.finish());
    let m = mb.finish(main);
    let table = CostTable::msp430fr5969();
    let result = compile(&m, &table, &SchematicConfig::new(Energy::from_pj(60_000)));
    assert!(
        result.is_err(),
        "60 kpJ cannot host commit+resume overheads"
    );
}

#[test]
fn recursion_is_rejected() {
    // Build a self-recursive function directly (the parser/builder allow
    // it structurally; the verifier rejects it).
    let mut mb = ModuleBuilder::new("m");
    let fid = schematic_repro::ir::FuncId(0);
    let mut f = FunctionBuilder::new("main", 0);
    f.call_void(fid, vec![]);
    f.ret(None);
    mb.func(f.finish());
    let m = mb.finish(fid);
    let table = CostTable::msp430fr5969();
    let err = compile(&m, &table, &SchematicConfig::new(Energy::from_uj(3))).unwrap_err();
    assert!(matches!(err, PlacementError::InvalidModule { .. }), "{err}");
    assert!(err.to_string().contains("recursive"));
}

#[test]
fn missing_loop_bound_is_rejected() {
    let mut mb = ModuleBuilder::new("m");
    let mut f = FunctionBuilder::new("main", 0);
    let l = f.new_block("l");
    let exit = f.new_block("exit");
    f.br(l);
    f.switch_to(l);
    let c = f.copy(1);
    f.cond_br(c, l, exit);
    // no set_max_iters: WCEC cannot bound the loop
    f.switch_to(exit);
    f.ret(None);
    let main = mb.func(f.finish());
    let m = mb.finish(main);
    let table = CostTable::msp430fr5969();
    let err = compile(&m, &table, &SchematicConfig::new(Energy::from_uj(3))).unwrap_err();
    assert!(err.to_string().contains("max_iters"), "{err}");
}

#[test]
fn division_by_zero_is_a_typed_trap() {
    let m = parse_module(
        "var @x : 1\nfunc @main(0) {\nentry:\n  r0 = load @x\n  r1 = sdiv 1, r0\n  ret r1\n}",
    )
    .unwrap();
    let err = run(&InstrumentedModule::bare(m), RunConfig::default()).unwrap_err();
    let s = err.to_string();
    assert!(s.contains("division by zero"), "{s}");
    match err {
        schematic_repro::emu::EmuError::Trap { kind, .. } => {
            assert_eq!(kind, TrapKind::DivisionByZero)
        }
        other => panic!("expected trap, got {other}"),
    }
}

#[test]
fn out_of_bounds_index_reports_location() {
    let m = parse_module(
        "var @a : 4\nfunc @main(0) {\nentry:\n  r0 = mov 9\n  r1 = load @a[r0]\n  ret r1\n}",
    )
    .unwrap();
    let err = run(&InstrumentedModule::bare(m), RunConfig::default()).unwrap_err();
    let s = err.to_string();
    assert!(s.contains("out of bounds"), "{s}");
    assert!(s.contains("fn0"), "{s}");
}

#[test]
fn parse_error_messages_are_actionable() {
    for (src, needle) in [
        (
            "func @main(0) {\nentry:\n  r0 = bogus 1, 2\n  ret\n}",
            "unknown instruction",
        ),
        (
            "func @main(0) {\nentry:\n  br nowhere\n}",
            "unknown block label",
        ),
        ("var @x : 0\nfunc @main(0) {\nentry:\n  ret\n}", "positive"),
        (
            "func @main(0) {\nentry:\n  r0 = cmp.zz 1, 2\n  ret\n}",
            "unknown comparison",
        ),
    ] {
        let err = parse_module(src).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "source {src:?} produced {err}"
        );
    }
}
