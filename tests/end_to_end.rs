//! End-to-end integration tests spanning all crates: every benchmark
//! kernel, compiled by every technique that supports it, must terminate
//! with the oracle's result under intermittent power — and SCHEMATIC
//! must additionally uphold its forward-progress guarantees.

use schematic_repro::baselines::Technique;
use schematic_repro::benchsuite;
use schematic_repro::emu::{Machine, PowerModel, RunConfig};
use schematic_repro::energy::{CostTable, Energy};
use schematic_repro::schematic::{compile, verify_placement, SchematicConfig};

const TBPF: u64 = 10_000;
const SVM: usize = 2048;

fn eb(table: &CostTable) -> Energy {
    Energy::from_pj(table.cpu_pj_per_cycle) * TBPF
}

fn run_cfg() -> RunConfig {
    RunConfig {
        power: PowerModel::Periodic { tbpf: TBPF },
        svm_bytes: usize::MAX / 2,
        ..RunConfig::default()
    }
}

#[test]
fn schematic_all_kernels_complete_intermittently() {
    let table = CostTable::msp430fr5969();
    for bench in benchsuite::all() {
        let module = (bench.build)(3);
        let compiled = compile(&module, &table, &SchematicConfig::new(eb(&table)))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let out = Machine::new(&compiled.instrumented, &table, run_cfg())
            .run()
            .unwrap();
        assert!(out.completed(), "{}: {:?}", bench.name, out.status);
        assert_eq!(out.result, Some((bench.oracle)(3)), "{}", bench.name);
        // The paper's guarantees (§II-B).
        assert_eq!(out.metrics.unexpected_failures, 0, "{}", bench.name);
        assert_eq!(out.metrics.reexecution, Energy::ZERO, "{}", bench.name);
        assert_eq!(out.metrics.coherence_violations, 0, "{}", bench.name);
        assert!(
            out.metrics.peak_vm_bytes <= SVM,
            "{}: peak VM {} B",
            bench.name,
            out.metrics.peak_vm_bytes
        );
    }
}

#[test]
fn schematic_placements_pass_the_independent_verifier() {
    let table = CostTable::msp430fr5969();
    for bench in benchsuite::all() {
        let module = (bench.build)(9);
        let compiled = compile(&module, &table, &SchematicConfig::new(eb(&table)))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let report = verify_placement(&compiled.instrumented, &table, eb(&table));
        assert!(report.is_sound(), "{}: {:?}", bench.name, report.violations);
        assert!(report.max_interval <= eb(&table));
    }
}

#[test]
fn baselines_run_supported_kernels_correctly() {
    let table = CostTable::msp430fr5969();
    // Keep the matrix small but meaningful: one small, one with calls,
    // one with heavy loops.
    for name in ["randmath", "bitcount", "crc"] {
        let bench = benchsuite::by_name(name).unwrap();
        let module = (bench.build)(5);
        for tech in schematic_repro::baselines::all() {
            if !tech.supports(&module, SVM) {
                continue;
            }
            let im = tech
                .compile(&module, &table, eb(&table))
                .unwrap_or_else(|e| panic!("{} on {name}: {e}", tech.name()));
            let out = Machine::new(&im, &table, run_cfg()).run().unwrap();
            assert!(
                out.completed(),
                "{} on {name}: {:?}",
                tech.name(),
                out.status
            );
            assert_eq!(
                out.result,
                Some((bench.oracle)(5)),
                "{} on {name}",
                tech.name()
            );
        }
    }
}

#[test]
fn wait_mode_techniques_never_reexecute() {
    let table = CostTable::msp430fr5969();
    let bench = benchsuite::by_name("crc").unwrap();
    let module = (bench.build)(11);
    let rockclimb = schematic_repro::baselines::Rockclimb;
    let im = rockclimb.compile(&module, &table, eb(&table)).unwrap();
    let out = Machine::new(&im, &table, run_cfg()).run().unwrap();
    assert!(out.completed());
    assert_eq!(out.metrics.reexecution, Energy::ZERO);
    assert_eq!(out.metrics.unexpected_failures, 0);
}

#[test]
fn table1_shape_reproduced() {
    // The exact ✓/✗ pattern of the paper's Table I.
    let fits: Vec<(&str, bool)> = benchsuite::all()
        .iter()
        .map(|b| {
            let m = (b.build)(1);
            (b.name, m.data_bytes() <= SVM)
        })
        .collect();
    let expected = [
        ("aes", true),
        ("basicmath", true),
        ("bitcount", true),
        ("crc", true),
        ("dijkstra", false),
        ("fft", false),
        ("randmath", true),
        ("rc4", false),
    ];
    assert_eq!(fits, expected);
}

#[test]
fn schematic_beats_baseline_average_on_shared_kernels() {
    // Directional check of §IV-D: SCHEMATIC's total energy is below the
    // average of the baselines that complete (coarse, fast subset).
    let table = CostTable::msp430fr5969();
    for name in ["randmath", "basicmath"] {
        let bench = benchsuite::by_name(name).unwrap();
        let module = (bench.build)(2);
        let compiled = compile(&module, &table, &SchematicConfig::new(eb(&table))).unwrap();
        let ours = Machine::new(&compiled.instrumented, &table, run_cfg())
            .run()
            .unwrap()
            .metrics
            .total_energy();
        let mut baseline_sum = Energy::ZERO;
        let mut n = 0u64;
        for tech in schematic_repro::baselines::all() {
            if !tech.supports(&module, SVM) {
                continue;
            }
            let im = tech.compile(&module, &table, eb(&table)).unwrap();
            let out = Machine::new(&im, &table, run_cfg()).run().unwrap();
            if out.completed() {
                baseline_sum += out.metrics.total_energy();
                n += 1;
            }
        }
        let avg = Energy::from_pj(baseline_sum.as_pj() / n.max(1));
        assert!(ours < avg, "{name}: ours {ours} vs baseline avg {avg}");
    }
}
