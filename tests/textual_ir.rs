//! Textual IR round-trip tests over the real benchmark modules: the
//! printer's output must re-parse into a behaviourally identical
//! program, and the checked-in sample program must keep working.

use schematic_repro::emu::{run, InstrumentedModule, RunConfig};
use schematic_repro::ir::{parse_module, print_module, verify_module};

#[test]
fn all_benchmarks_roundtrip_through_text() {
    for bench in schematic_repro::benchsuite::all() {
        let module = (bench.build)(5);
        let text = print_module(&module);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: printer output must parse: {e}", bench.name));
        assert!(
            verify_module(&reparsed).is_empty(),
            "{}: reparsed module verifies",
            bench.name
        );
        // Textual fixpoint.
        assert_eq!(
            text,
            print_module(&reparsed),
            "{}: print∘parse∘print is stable",
            bench.name
        );
        // Behavioural identity (skip the big/slow kernels for speed).
        if matches!(bench.name, "crc" | "randmath" | "basicmath" | "bitcount") {
            let a = run(&InstrumentedModule::bare(module), RunConfig::default()).unwrap();
            let b = run(&InstrumentedModule::bare(reparsed), RunConfig::default()).unwrap();
            assert_eq!(a.result, b.result, "{}", bench.name);
            assert_eq!(a.result, Some((bench.oracle)(5)), "{}", bench.name);
        }
    }
}

#[test]
fn sample_program_parses_and_runs() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/programs/motivating.ir"
    ))
    .expect("sample program exists");
    let module = parse_module(&text).expect("sample parses");
    assert!(verify_module(&module).is_empty());
    let out = run(&InstrumentedModule::bare(module), RunConfig::default()).unwrap();
    assert!(out.completed());
    // sum of the 16 initializers = 80; f(80) = (80 >> 4) & 7 = 5.
    assert_eq!(out.result, Some(5));
}

#[test]
fn parse_errors_carry_line_numbers() {
    let bad = "var @x : 1\nfunc @main(0) {\nentry:\n  r0 = load @nope\n  ret\n}";
    let err = parse_module(bad).unwrap_err();
    assert_eq!(err.line, 4);
    assert!(err.to_string().contains("line 4"));
}
