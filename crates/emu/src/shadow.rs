//! Opt-in shadow recorder: dynamic cross-validation of the static
//! WAR-hazard analysis in `schematic-core`.
//!
//! When enabled (see [`crate::RunConfig::shadow_war`] or the
//! `SCHEMATIC_SHADOW_WAR=1` environment variable), the machine records the
//! actual first-access order of every variable's NVM home per
//! inter-checkpoint *epoch* — the dynamic counterpart of the static
//! analysis' region. An epoch begins at boot, at every checkpoint commit,
//! and again whenever a power failure rolls execution back to a committed
//! checkpoint (re-execution restarts the epoch: the first attempt's reads
//! can no longer pair with the retry's writes).
//!
//! An **observed WAR** is an NVM-level read of a variable followed, in the
//! same epoch, by an NVM-level write to it. The recorded events are
//! exactly the emulator's real NVM traffic:
//!
//! * reads — NVM-class `load`s, and every fault/restore load into VM
//!   (boot staging, failure restore, checkpoint wake-up or migration,
//!   implicit restores, `restorevar`);
//! * writes — NVM-class `store`s, residency-reconciliation flushes of
//!   dirty VM copies, and `savevar` flushes.
//!
//! Checkpoint *commit* flushes are not writes here: they land atomically
//! with the new resume image (a torn commit takes no effect at all), so
//! re-execution can never start before them.
//!
//! The contract checked by callers (e.g. the `soundcheck` experiment and
//! the randomized cross-validation tests): every observed WAR's variable
//! must be in the static analysis' predicted WAR set — the static pass
//! has no false negatives. The recorder is off by default and the fused
//! block dispatch is disabled while it runs, so enabled runs are slower
//! but metrics stay bit-identical to unshadowed runs.

use schematic_ir::{CheckpointId, VarId};

/// Label of one dynamic inter-checkpoint epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EpochStart {
    /// From first boot (or a failure before any commit) to the first
    /// checkpoint commit.
    Boot,
    /// Opened by a commit of this checkpoint (or a failure rolling back
    /// to it).
    Checkpoint(CheckpointId),
}

/// One dynamically observed WAR: `var`'s NVM home was read and later
/// written within the epoch labeled `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedWar {
    /// The epoch the read/write pair occurred in.
    pub epoch: EpochStart,
    /// The variable whose NVM home was read then written.
    pub var: VarId,
}

/// Everything the shadow recorder observed during one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShadowReport {
    /// Observed WARs, deduplicated per variable (first epoch wins).
    pub wars: Vec<ObservedWar>,
    /// Number of epochs entered (boot + commits + failure rollbacks).
    pub epochs: u64,
    /// NVM-level reads recorded.
    pub nvm_reads: u64,
    /// NVM-level writes recorded.
    pub nvm_writes: u64,
}

impl ShadowReport {
    /// The distinct variables with at least one observed WAR.
    pub fn war_vars(&self) -> Vec<VarId> {
        self.wars.iter().map(|w| w.var).collect()
    }
}

/// Per-run recording state. Lives inside the machine only when shadow
/// mode is on; every hook is behind an `Option` check so the default
/// hot path pays one branch on the cold (fault/flush) paths only.
#[derive(Debug)]
pub(crate) struct ShadowRecorder {
    epoch: EpochStart,
    /// Per-var: read from NVM in the current epoch.
    read_in_epoch: Vec<bool>,
    /// Per-var: already reported (dedup).
    warred: Vec<bool>,
    report: ShadowReport,
}

impl ShadowRecorder {
    pub(crate) fn new(n_vars: usize) -> Self {
        ShadowRecorder {
            epoch: EpochStart::Boot,
            read_in_epoch: vec![false; n_vars],
            warred: vec![false; n_vars],
            report: ShadowReport {
                epochs: 1, // boot epoch
                ..ShadowReport::default()
            },
        }
    }

    /// Starts a new epoch; prior reads can no longer pair with writes.
    pub(crate) fn begin_epoch(&mut self, epoch: EpochStart) {
        self.epoch = epoch;
        self.read_in_epoch.fill(false);
        self.report.epochs += 1;
    }

    pub(crate) fn record_read(&mut self, var: VarId) {
        self.report.nvm_reads += 1;
        self.read_in_epoch[var.index()] = true;
    }

    pub(crate) fn record_write(&mut self, var: VarId) {
        self.report.nvm_writes += 1;
        if self.read_in_epoch[var.index()] && !self.warred[var.index()] {
            self.warred[var.index()] = true;
            self.report.wars.push(ObservedWar {
                epoch: self.epoch,
                var,
            });
        }
    }

    pub(crate) fn into_report(self) -> ShadowReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_in_one_epoch_is_a_war() {
        let mut r = ShadowRecorder::new(2);
        r.record_read(VarId(0));
        r.record_write(VarId(0));
        let rep = r.into_report();
        assert_eq!(
            rep.wars,
            vec![ObservedWar {
                epoch: EpochStart::Boot,
                var: VarId(0)
            }]
        );
        assert_eq!(rep.nvm_reads, 1);
        assert_eq!(rep.nvm_writes, 1);
    }

    #[test]
    fn write_before_read_is_not_a_war() {
        let mut r = ShadowRecorder::new(1);
        r.record_write(VarId(0));
        r.record_read(VarId(0));
        assert!(r.into_report().wars.is_empty());
    }

    #[test]
    fn epoch_boundary_clears_reads() {
        let mut r = ShadowRecorder::new(1);
        r.record_read(VarId(0));
        r.begin_epoch(EpochStart::Checkpoint(CheckpointId(0)));
        r.record_write(VarId(0));
        let rep = r.into_report();
        assert!(rep.wars.is_empty());
        assert_eq!(rep.epochs, 2);
    }

    #[test]
    fn wars_dedupe_per_var() {
        let mut r = ShadowRecorder::new(1);
        r.record_read(VarId(0));
        r.record_write(VarId(0));
        r.record_write(VarId(0));
        assert_eq!(r.into_report().wars.len(), 1);
    }
}
