//! Opt-in shadow recorder: dynamic cross-validation of the static
//! WAR-hazard analysis in `schematic-core`.
//!
//! When enabled (see [`crate::RunConfig::shadow_war`] or the
//! `SCHEMATIC_SHADOW_WAR=1` environment variable), the machine records the
//! actual first-access order of every **word** of every variable's NVM
//! home per inter-checkpoint *epoch* — the dynamic counterpart of the
//! static analysis' region, at the same per-element granularity as its
//! index-sensitive footprints. An epoch begins at boot, at every
//! checkpoint commit, and again whenever a power failure rolls execution
//! back to a committed checkpoint (re-execution restarts the epoch: the
//! first attempt's reads can no longer pair with the retry's writes).
//!
//! An **observed WAR** is an NVM-level read of a word followed, in the
//! same epoch, by an NVM-level write to the same word. The recorded
//! events are exactly the emulator's real NVM traffic:
//!
//! * reads — NVM-class `load`s (the addressed word only), and every
//!   fault/restore load into VM (boot staging, failure restore,
//!   checkpoint wake-up or migration, implicit restores, `restorevar`) —
//!   whole-variable, since staging copies every word;
//! * writes — NVM-class `store`s (the addressed word only),
//!   residency-reconciliation flushes of dirty VM copies and `savevar`
//!   flushes (whole-variable).
//!
//! Checkpoint *commit* flushes are not writes here: they land atomically
//! with the new resume image (a torn commit takes no effect at all), so
//! re-execution can never start before them.
//!
//! The contract checked by callers (e.g. the `soundcheck` experiment and
//! the randomized cross-validation tests): every observed WAR must be
//! *covered* by the static analysis — its variable predicted, and the
//! observed word inside some predicted anomaly footprint
//! (`AnomalyReport::predicts_element`) — i.e. the static pass has no
//! false negatives, per element. The recorder is off by default and the
//! fused block dispatch is disabled while it runs, so enabled runs are
//! slower but metrics stay bit-identical to unshadowed runs.

use schematic_ir::{CheckpointId, VarId};

/// Label of one dynamic inter-checkpoint epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EpochStart {
    /// From first boot (or a failure before any commit) to the first
    /// checkpoint commit.
    Boot,
    /// Opened by a commit of this checkpoint (or a failure rolling back
    /// to it).
    Checkpoint(CheckpointId),
}

/// One dynamically observed WAR: word `elem` of `var`'s NVM home was
/// read and later written within the epoch labeled `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedWar {
    /// The epoch the read/write pair occurred in.
    pub epoch: EpochStart,
    /// The variable whose NVM home was read then written.
    pub var: VarId,
    /// The word offset within `var` that was read then written.
    pub elem: u32,
}

/// Everything the shadow recorder observed during one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShadowReport {
    /// Observed WARs, deduplicated per `(var, elem)` (first epoch wins).
    pub wars: Vec<ObservedWar>,
    /// Number of epochs entered (boot + commits + failure rollbacks).
    pub epochs: u64,
    /// NVM-level read events recorded (one per access, not per word).
    pub nvm_reads: u64,
    /// NVM-level write events recorded (one per access, not per word).
    pub nvm_writes: u64,
}

impl ShadowReport {
    /// The distinct variables with at least one observed WAR.
    pub fn war_vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self.wars.iter().map(|w| w.var).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// The distinct `(var, word)` pairs with an observed WAR.
    pub fn war_elems(&self) -> Vec<(VarId, u32)> {
        let mut elems: Vec<(VarId, u32)> = self.wars.iter().map(|w| (w.var, w.elem)).collect();
        elems.sort_unstable();
        elems.dedup();
        elems
    }
}

/// Per-run recording state. Lives inside the machine only when shadow
/// mode is on; every hook is behind an `Option` check so the default
/// hot path pays one branch on the cold (fault/flush) paths only.
///
/// Word state is stored flat: `base[v] .. base[v] + words[v]` are the
/// per-word flags of variable `v`.
#[derive(Debug)]
pub(crate) struct ShadowRecorder {
    epoch: EpochStart,
    /// Start of each var's word flags in the flat arrays.
    base: Vec<usize>,
    /// Words per var (mirror of the module layout at construction).
    words: Vec<usize>,
    /// Per-word: read from NVM in the current epoch.
    read_in_epoch: Vec<bool>,
    /// Per-word: already reported (dedup).
    warred: Vec<bool>,
    report: ShadowReport,
}

impl ShadowRecorder {
    pub(crate) fn new(var_words: impl IntoIterator<Item = usize>) -> Self {
        let words: Vec<usize> = var_words.into_iter().collect();
        let mut base = Vec::with_capacity(words.len());
        let mut total = 0usize;
        for &w in &words {
            base.push(total);
            total += w;
        }
        ShadowRecorder {
            epoch: EpochStart::Boot,
            base,
            words,
            read_in_epoch: vec![false; total],
            warred: vec![false; total],
            report: ShadowReport {
                epochs: 1, // boot epoch
                ..ShadowReport::default()
            },
        }
    }

    /// Starts a new epoch; prior reads can no longer pair with writes.
    pub(crate) fn begin_epoch(&mut self, epoch: EpochStart) {
        self.epoch = epoch;
        self.read_in_epoch.fill(false);
        self.report.epochs += 1;
    }

    fn mark_read(&mut self, var: VarId, elem: usize) {
        self.read_in_epoch[self.base[var.index()] + elem] = true;
    }

    fn mark_write(&mut self, var: VarId, elem: usize) {
        let w = self.base[var.index()] + elem;
        if self.read_in_epoch[w] && !self.warred[w] {
            self.warred[w] = true;
            self.report.wars.push(ObservedWar {
                epoch: self.epoch,
                var,
                elem: elem as u32,
            });
        }
    }

    /// Whole-variable NVM read (fault/restore staging copies every word).
    pub(crate) fn record_read(&mut self, var: VarId) {
        self.report.nvm_reads += 1;
        for e in 0..self.words[var.index()] {
            self.mark_read(var, e);
        }
    }

    /// Whole-variable NVM write (reconcile/`savevar` flushes every word).
    pub(crate) fn record_write(&mut self, var: VarId) {
        self.report.nvm_writes += 1;
        for e in 0..self.words[var.index()] {
            self.mark_write(var, e);
        }
    }

    /// NVM-class load of one word.
    pub(crate) fn record_read_at(&mut self, var: VarId, elem: usize) {
        self.report.nvm_reads += 1;
        self.mark_read(var, elem);
    }

    /// NVM-class store of one word.
    pub(crate) fn record_write_at(&mut self, var: VarId, elem: usize) {
        self.report.nvm_writes += 1;
        self.mark_write(var, elem);
    }

    pub(crate) fn into_report(self) -> ShadowReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_in_one_epoch_is_a_war() {
        let mut r = ShadowRecorder::new([1, 1]);
        r.record_read(VarId(0));
        r.record_write(VarId(0));
        let rep = r.into_report();
        assert_eq!(
            rep.wars,
            vec![ObservedWar {
                epoch: EpochStart::Boot,
                var: VarId(0),
                elem: 0,
            }]
        );
        assert_eq!(rep.nvm_reads, 1);
        assert_eq!(rep.nvm_writes, 1);
    }

    #[test]
    fn write_before_read_is_not_a_war() {
        let mut r = ShadowRecorder::new([1]);
        r.record_write(VarId(0));
        r.record_read(VarId(0));
        assert!(r.into_report().wars.is_empty());
    }

    #[test]
    fn epoch_boundary_clears_reads() {
        let mut r = ShadowRecorder::new([1]);
        r.record_read(VarId(0));
        r.begin_epoch(EpochStart::Checkpoint(CheckpointId(0)));
        r.record_write(VarId(0));
        let rep = r.into_report();
        assert!(rep.wars.is_empty());
        assert_eq!(rep.epochs, 2);
    }

    #[test]
    fn wars_dedupe_per_var() {
        let mut r = ShadowRecorder::new([1]);
        r.record_read(VarId(0));
        r.record_write(VarId(0));
        r.record_write(VarId(0));
        assert_eq!(r.into_report().wars.len(), 1);
    }

    #[test]
    fn disjoint_elements_are_not_a_war() {
        // read word 1, write word 0 of the same array: no per-element WAR.
        let mut r = ShadowRecorder::new([4]);
        r.record_read_at(VarId(0), 1);
        r.record_write_at(VarId(0), 0);
        assert!(r.into_report().wars.is_empty());
    }

    #[test]
    fn same_element_war_reports_offset() {
        let mut r = ShadowRecorder::new([4]);
        r.record_read_at(VarId(0), 2);
        r.record_write_at(VarId(0), 2);
        let rep = r.into_report();
        assert_eq!(rep.wars.len(), 1);
        assert_eq!(rep.wars[0].elem, 2);
        assert_eq!(rep.war_elems(), vec![(VarId(0), 2)]);
    }

    #[test]
    fn whole_write_pairs_with_element_read() {
        // A reconcile flush (whole write) after an indexed read WARs the
        // read word only.
        let mut r = ShadowRecorder::new([3]);
        r.record_read_at(VarId(0), 1);
        r.record_write(VarId(0));
        let rep = r.into_report();
        assert_eq!(rep.war_elems(), vec![(VarId(0), 1)]);
    }
}
