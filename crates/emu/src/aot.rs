//! Ahead-of-time trace lowering: the top rung of the execution tier
//! ladder (see [`ExecTier`](crate::ExecTier)).
//!
//! A hot fusable trace is lowered *once* — after its head block has been
//! dispatched [`RunConfig::aot_threshold`](crate::RunConfig) times — into
//! a dense micro-op tape, one [`AotSeg`] per member block. Each micro-op
//! bakes in everything the instruction needed to look up or branch on at
//! run time under the interpreted tiers:
//!
//! - pure register instructions are specialized per operand shape
//!   ([`MicroOp`]): register indices and immediates are extracted at
//!   lowering time, so executing one is a single dense-enum dispatch
//!   with no nested `Operand` matching and no 32-byte `DInst` loads;
//! - memory accesses are specialized per (class × index shape): a
//!   scalar access carries its flat arena word address outright, an
//!   immediate-indexed access resolves its bounds check at lowering
//!   time, and only register-indexed accesses keep a run-time check.
//!
//! Accesses that provably cannot trap (constant-address loads and
//! register-sourced constant-address stores) join the micro-op tape
//! directly, so a typical block body is a handful of flat [`MicroOp`]
//! runs interrupted only by trapping register-indexed accesses — the
//! tape entries stay 12 bytes and the hot loop is a single dense match.
//!
//! Lowering is purely a *faster encoding* of `run_body`'s semantics: the
//! trace's prep pass has already established VM residency for every
//! variable the body touches, the enclosing guard proved the power
//! window absorbs the whole trace, and all Exec accounting is committed
//! from the decode-time [`FusedCosts`](crate::decoded::FusedCosts)
//! bundle — so an AOT run and a per-instruction run are bit-identical,
//! which `tests/tier_parity.rs` asserts over randomized modules.
//!
//! The lowering lives in a `OnceLock` on the head's
//! [`DecodedBlock`](crate::decoded::DecodedBlock), so it is shared by
//! every machine running the same decoded program.

use crate::decoded::{DInst, DecodedModule, TraceInfo};
use crate::error::TrapKind;
use crate::machine::exec_pure;
use crate::memory::Memory;
use schematic_energy::MemClass;
use schematic_ir::{BinOp, CmpOp, Operand, UnOp, VarId};

/// A pre-resolved value source: register index or immediate.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// Read register `.0`.
    R(u16),
    /// The immediate value `.0`.
    I(i32),
}

impl Src {
    #[inline(always)]
    fn get(self, regs: &[i32]) -> i32 {
        match self {
            Src::R(r) => regs[r as usize],
            Src::I(v) => v,
        }
    }

    fn of(op: Operand) -> Src {
        match op {
            Operand::Reg(r) => Src::R(u16::try_from(r.index()).expect("register index fits u16")),
            Operand::Imm(v) => Src::I(v),
        }
    }
}

/// One specialized tape entry (operand shapes baked in at lowering
/// time): a pure register micro-op, a constant-address memory access,
/// or a bounds-checked indexed access. Deliberately ≤16 bytes: rarer
/// shapes fall back to [`AotOp`] variants rather than inflating every
/// tape entry — the tape's cache density is most of its win over
/// re-interpreting.
#[derive(Debug, Clone, Copy)]
enum MicroOp {
    /// `regs[d] = regs[a] op regs[b]`
    BinRR { op: BinOp, d: u16, a: u16, b: u16 },
    /// `regs[d] = regs[a] op imm`
    BinRI { op: BinOp, d: u16, a: u16, imm: i32 },
    /// `regs[d] = regs[a] pred regs[b]`
    CmpRR { op: CmpOp, d: u16, a: u16, b: u16 },
    /// `regs[d] = regs[a] pred imm`
    CmpRI { op: CmpOp, d: u16, a: u16, imm: i32 },
    /// `regs[d] = op regs[a]`
    UnR { op: UnOp, d: u16, a: u16 },
    /// `regs[d] = regs[a]`
    CopyR { d: u16, a: u16 },
    /// `regs[d] = imm`
    CopyI { d: u16, imm: i32 },
    /// `regs[d] = vm[at]` — scalar or in-bounds immediate index.
    LoadVmAt { d: u16, at: u32 },
    /// `regs[d] = nvm[at]`
    LoadNvmAt { d: u16, at: u32 },
    /// `vm[at] = regs[s]` (marks `var` dirty).
    StoreVmAtR { var: VarId, at: u32, s: u16 },
    /// `nvm[at] = regs[s]` (clobber check + VM-copy drop).
    StoreNvmAtR { var: VarId, at: u32, s: u16 },
    /// `regs[d] = vm[base + regs[i]]` with an inline bounds check
    /// (`words` fits u16, or the access lowers to [`AotOp::LoadVmIdx`]).
    /// A failed check reports the trap cold from the baked-in fields.
    LoadVmIdxC {
        var: VarId,
        d: u16,
        i: u16,
        words: u16,
        base: u32,
    },
    /// NVM variant of [`MicroOp::LoadVmIdxC`].
    LoadNvmIdxC {
        var: VarId,
        d: u16,
        i: u16,
        words: u16,
        base: u32,
    },
    /// `vm[base + regs[i]] = regs[s]` with an inline bounds check
    /// (marks `var` dirty).
    StoreVmIdxC {
        var: VarId,
        s: u16,
        i: u16,
        words: u16,
        base: u32,
    },
    /// NVM variant of [`MicroOp::StoreVmIdxC`].
    StoreNvmIdxC {
        var: VarId,
        s: u16,
        i: u16,
        words: u16,
        base: u32,
    },
}

/// Executes one tape entry. Returns `false` only when an inline
/// bounds check fails — the caller rebuilds the trap report cold.
#[inline(always)]
#[must_use]
fn exec_micro(m: &MicroOp, regs: &mut [i32], mem: &mut Memory, clobbers: &mut u64) -> bool {
    match *m {
        MicroOp::BinRR { op, d, a, b } => {
            let v = eval_bin_nt(op, regs[a as usize], regs[b as usize]);
            regs[d as usize] = v;
        }
        MicroOp::BinRI { op, d, a, imm } => {
            let v = eval_bin_nt(op, regs[a as usize], imm);
            regs[d as usize] = v;
        }
        MicroOp::CmpRR { op, d, a, b } => {
            regs[d as usize] = i32::from(op.eval(regs[a as usize], regs[b as usize]));
        }
        MicroOp::CmpRI { op, d, a, imm } => {
            regs[d as usize] = i32::from(op.eval(regs[a as usize], imm));
        }
        MicroOp::UnR { op, d, a } => {
            let s = regs[a as usize];
            regs[d as usize] = match op {
                UnOp::Neg => s.wrapping_neg(),
                UnOp::Not => !s,
            };
        }
        MicroOp::CopyR { d, a } => regs[d as usize] = regs[a as usize],
        MicroOp::CopyI { d, imm } => regs[d as usize] = imm,
        MicroOp::LoadVmAt { d, at } => regs[d as usize] = mem.vm_read_at(at as usize),
        MicroOp::LoadNvmAt { d, at } => regs[d as usize] = mem.nvm_read_at(at as usize),
        MicroOp::StoreVmAtR { var, at, s } => {
            mem.vm_write_at(var, at as usize, regs[s as usize]);
        }
        MicroOp::StoreNvmAtR { var, at, s } => {
            if mem.nvm_write_would_clobber(var) {
                *clobbers += 1;
            }
            mem.nvm_write_at(var, at as usize, regs[s as usize]);
        }
        MicroOp::LoadVmIdxC {
            d, i, words, base, ..
        } => {
            let ix = regs[i as usize];
            if (ix as u32) >= u32::from(words) {
                return false;
            }
            regs[d as usize] = mem.vm_read_at(base as usize + ix as usize);
        }
        MicroOp::LoadNvmIdxC {
            d, i, words, base, ..
        } => {
            let ix = regs[i as usize];
            if (ix as u32) >= u32::from(words) {
                return false;
            }
            regs[d as usize] = mem.nvm_read_at(base as usize + ix as usize);
        }
        MicroOp::StoreVmIdxC {
            var,
            s,
            i,
            words,
            base,
        } => {
            let ix = regs[i as usize];
            if (ix as u32) >= u32::from(words) {
                return false;
            }
            mem.vm_write_at(var, base as usize + ix as usize, regs[s as usize]);
        }
        MicroOp::StoreNvmIdxC {
            var,
            s,
            i,
            words,
            base,
        } => {
            let ix = regs[i as usize];
            if (ix as u32) >= u32::from(words) {
                return false;
            }
            if mem.nvm_write_would_clobber(var) {
                *clobbers += 1;
            }
            mem.nvm_write_at(var, base as usize + ix as usize, regs[s as usize]);
        }
    }
    true
}

/// [`eval_bin`](crate::machine) for operands that provably cannot trap
/// (superblock-fusable instructions only; see `DInst::is_fusable`).
#[inline(always)]
fn eval_bin_nt(op: BinOp, lhs: i32, rhs: i32) -> i32 {
    match op {
        BinOp::Add => lhs.wrapping_add(rhs),
        BinOp::Sub => lhs.wrapping_sub(rhs),
        BinOp::Mul => lhs.wrapping_mul(rhs),
        BinOp::DivS => lhs / rhs,
        BinOp::DivU => ((lhs as u32) / (rhs as u32)) as i32,
        BinOp::RemS => lhs % rhs,
        BinOp::RemU => ((lhs as u32) % (rhs as u32)) as i32,
        BinOp::And => lhs & rhs,
        BinOp::Or => lhs | rhs,
        BinOp::Xor => lhs ^ rhs,
        BinOp::Shl => lhs.wrapping_shl(rhs as u32),
        BinOp::LShr => ((lhs as u32).wrapping_shr(rhs as u32)) as i32,
        BinOp::AShr => lhs.wrapping_shr(rhs as u32),
    }
}

/// One lowered operation of a block body: a flat run of tape entries,
/// or an access the tape can't carry (trapping register-indexed
/// accesses, rare shapes).
#[derive(Debug, Clone)]
enum AotOp {
    /// A maximal run of non-trapping tape entries.
    Run(Box<[MicroOp]>),
    /// A pure instruction whose operand shape has no specialized
    /// micro-op (immediate-first binops, `Select`): replayed through
    /// the interpreter's [`exec_pure`].
    Generic(DInst),
    /// Register-indexed VM load: run-time bounds check.
    LoadVmIdx {
        dst: u16,
        idx: u16,
        base: u32,
        words: u32,
        var: VarId,
    },
    /// Register-indexed NVM load.
    LoadNvmIdx {
        dst: u16,
        idx: u16,
        base: u32,
        words: u32,
        var: VarId,
    },
    /// `vm[at] = imm` (immediate-source constant-address store; the
    /// register-source form rides the tape).
    StoreVmAtI { var: VarId, at: u32, imm: i32 },
    /// `nvm[at] = imm`
    StoreNvmAtI { var: VarId, at: u32, imm: i32 },
    /// Register-indexed VM store.
    StoreVmIdx {
        var: VarId,
        idx: u16,
        base: u32,
        words: u32,
        src: Src,
    },
    /// Register-indexed NVM store.
    StoreNvmIdx {
        var: VarId,
        idx: u16,
        base: u32,
        words: u32,
        src: Src,
    },
    /// An access whose immediate index is out of bounds at lowering
    /// time: always traps, at the same program position it would under
    /// interpretation.
    Trap {
        var: VarId,
        index: i64,
        words: usize,
    },
}

/// The lowering of one member block of a trace.
pub(crate) struct AotSeg {
    ops: Box<[AotOp]>,
}

impl AotSeg {
    /// Runs the block body — same observable effects as
    /// `machine::run_body` on the source block.
    #[inline]
    pub(crate) fn run(
        &self,
        regs: &mut [i32],
        mem: &mut Memory,
        clobbers: &mut u64,
    ) -> Result<(), TrapKind> {
        for op in &self.ops {
            match *op {
                AotOp::Run(ref tape) => {
                    for m in tape {
                        if !exec_micro(m, regs, mem, clobbers) {
                            return Err(idx_trap(m, regs));
                        }
                    }
                }
                AotOp::Generic(ref di) => exec_pure(di, regs),
                AotOp::LoadVmIdx {
                    dst,
                    idx,
                    base,
                    words,
                    var,
                } => {
                    let at = dyn_at(regs, idx, base, words, var)?;
                    regs[dst as usize] = mem.vm_read_at(at);
                }
                AotOp::LoadNvmIdx {
                    dst,
                    idx,
                    base,
                    words,
                    var,
                } => {
                    let at = dyn_at(regs, idx, base, words, var)?;
                    regs[dst as usize] = mem.nvm_read_at(at);
                }
                AotOp::StoreVmAtI { var, at, imm } => {
                    mem.vm_write_at(var, at as usize, imm);
                }
                AotOp::StoreNvmAtI { var, at, imm } => {
                    if mem.nvm_write_would_clobber(var) {
                        *clobbers += 1;
                    }
                    mem.nvm_write_at(var, at as usize, imm);
                }
                AotOp::StoreVmIdx {
                    var,
                    idx,
                    base,
                    words,
                    src,
                } => {
                    let at = dyn_at(regs, idx, base, words, var)?;
                    mem.vm_write_at(var, at, src.get(regs));
                }
                AotOp::StoreNvmIdx {
                    var,
                    idx,
                    base,
                    words,
                    src,
                } => {
                    let at = dyn_at(regs, idx, base, words, var)?;
                    if mem.nvm_write_would_clobber(var) {
                        *clobbers += 1;
                    }
                    mem.nvm_write_at(var, at, src.get(regs));
                }
                AotOp::Trap { var, index, words } => {
                    return Err(TrapKind::IndexOutOfBounds { var, index, words });
                }
            }
        }
        Ok(())
    }
}

/// Rebuilds the trap report for a failed inline bounds check from the
/// fields baked into the faulting tape entry.
#[cold]
fn idx_trap(m: &MicroOp, regs: &[i32]) -> TrapKind {
    let (MicroOp::LoadVmIdxC { var, i, words, .. }
    | MicroOp::LoadNvmIdxC { var, i, words, .. }
    | MicroOp::StoreVmIdxC { var, i, words, .. }
    | MicroOp::StoreNvmIdxC { var, i, words, .. }) = *m
    else {
        unreachable!("inline bounds check only fails on an indexed access");
    };
    TrapKind::IndexOutOfBounds {
        var,
        index: i64::from(regs[i as usize]),
        words: words as usize,
    }
}

/// Bounds-checks a register-indexed access (the dynamic remainder of
/// [`resolve_at`](crate::machine) after lowering). A single unsigned
/// compare covers both the negative and the too-large case (`words`
/// never exceeds `i32::MAX` words of arena); the cold arm recomputes
/// the signed index for the trap report.
#[inline(always)]
fn dyn_at(regs: &[i32], idx: u16, base: u32, words: u32, var: VarId) -> Result<usize, TrapKind> {
    let i = regs[idx as usize];
    if (i as u32) < words {
        Ok(base as usize + i as usize)
    } else {
        Err(TrapKind::IndexOutOfBounds {
            var,
            index: i64::from(i),
            words: words as usize,
        })
    }
}

/// The AOT lowering of a whole trace: one [`AotSeg`] per member block,
/// in trace order.
pub(crate) struct AotTrace {
    pub(crate) segs: Box<[AotSeg]>,
}

/// Lowers every member block of `ti` (a trace of `d`) to micro-op
/// tapes.
pub(crate) fn lower_trace(d: &DecodedModule<'_>, ti: &TraceInfo) -> AotTrace {
    let segs = ti
        .blocks
        .iter()
        .map(|&flat| lower_block(&d.blocks[flat as usize]))
        .collect();
    AotTrace { segs }
}

fn lower_block(db: &crate::decoded::DecodedBlock<'_>) -> AotSeg {
    let insts = &db.insts;
    let n = insts.len();
    let mut ops: Vec<AotOp> = Vec::new();
    // Non-trapping entries accumulate here and flush as one flat run
    // whenever an op the tape can't carry interrupts them.
    let mut tape: Vec<MicroOp> = Vec::new();
    let mut ip = 0usize;
    while ip < n {
        let run = db.fuse_len[ip] as usize;
        if run > 0 {
            for di in &insts[ip..ip + run] {
                match lower_pure(di) {
                    Some(m) => tape.push(m),
                    None => {
                        flush(&mut ops, &mut tape);
                        ops.push(AotOp::Generic(*di));
                    }
                }
            }
            ip += run;
            continue;
        }
        match insts[ip] {
            DInst::Load {
                dst,
                var,
                idx,
                class,
                base,
                words,
            } => {
                let d = u16::try_from(dst.index()).expect("register index fits u16");
                match (class, resolve_addr(idx, base, words)) {
                    (MemClass::Vm, Addr::Const(at)) => tape.push(MicroOp::LoadVmAt { d, at }),
                    (MemClass::Nvm, Addr::Const(at)) => tape.push(MicroOp::LoadNvmAt { d, at }),
                    (MemClass::Vm, Addr::Dyn(idx)) => match u16::try_from(words) {
                        Ok(w) => tape.push(MicroOp::LoadVmIdxC {
                            var,
                            d,
                            i: idx,
                            words: w,
                            base,
                        }),
                        Err(_) => {
                            flush(&mut ops, &mut tape);
                            ops.push(AotOp::LoadVmIdx {
                                dst: d,
                                idx,
                                base,
                                words,
                                var,
                            });
                        }
                    },
                    (MemClass::Nvm, Addr::Dyn(idx)) => match u16::try_from(words) {
                        Ok(w) => tape.push(MicroOp::LoadNvmIdxC {
                            var,
                            d,
                            i: idx,
                            words: w,
                            base,
                        }),
                        Err(_) => {
                            flush(&mut ops, &mut tape);
                            ops.push(AotOp::LoadNvmIdx {
                                dst: d,
                                idx,
                                base,
                                words,
                                var,
                            });
                        }
                    },
                    (_, Addr::Oob { index, words }) => {
                        flush(&mut ops, &mut tape);
                        ops.push(AotOp::Trap { var, index, words });
                    }
                }
            }
            DInst::Store {
                var,
                idx,
                src,
                class,
                base,
                words,
            } => match (class, resolve_addr(idx, base, words), Src::of(src)) {
                (MemClass::Vm, Addr::Const(at), Src::R(s)) => {
                    tape.push(MicroOp::StoreVmAtR { var, at, s });
                }
                (MemClass::Nvm, Addr::Const(at), Src::R(s)) => {
                    tape.push(MicroOp::StoreNvmAtR { var, at, s });
                }
                (MemClass::Vm, Addr::Const(at), Src::I(imm)) => {
                    flush(&mut ops, &mut tape);
                    ops.push(AotOp::StoreVmAtI { var, at, imm });
                }
                (MemClass::Nvm, Addr::Const(at), Src::I(imm)) => {
                    flush(&mut ops, &mut tape);
                    ops.push(AotOp::StoreNvmAtI { var, at, imm });
                }
                (MemClass::Vm, Addr::Dyn(idx), Src::R(s)) if words <= u32::from(u16::MAX) => {
                    tape.push(MicroOp::StoreVmIdxC {
                        var,
                        s,
                        i: idx,
                        words: words as u16,
                        base,
                    });
                }
                (MemClass::Nvm, Addr::Dyn(idx), Src::R(s)) if words <= u32::from(u16::MAX) => {
                    tape.push(MicroOp::StoreNvmIdxC {
                        var,
                        s,
                        i: idx,
                        words: words as u16,
                        base,
                    });
                }
                (MemClass::Vm, Addr::Dyn(idx), src) => {
                    flush(&mut ops, &mut tape);
                    ops.push(AotOp::StoreVmIdx {
                        var,
                        idx,
                        base,
                        words,
                        src,
                    });
                }
                (MemClass::Nvm, Addr::Dyn(idx), src) => {
                    flush(&mut ops, &mut tape);
                    ops.push(AotOp::StoreNvmIdx {
                        var,
                        idx,
                        base,
                        words,
                        src,
                    });
                }
                (_, Addr::Oob { index, words }, _) => {
                    flush(&mut ops, &mut tape);
                    ops.push(AotOp::Trap { var, index, words });
                }
            },
            _ => unreachable!("non-fusable instruction in a fusable block"),
        }
        ip += 1;
    }
    flush(&mut ops, &mut tape);
    AotSeg {
        ops: ops.into_boxed_slice(),
    }
}

/// Flushes the pending tape run into the op list.
fn flush(ops: &mut Vec<AotOp>, tape: &mut Vec<MicroOp>) {
    if !tape.is_empty() {
        ops.push(AotOp::Run(std::mem::take(tape).into()));
    }
}

/// Specializes one pure instruction by its operand shapes; `None` when
/// no compact shape fits (the caller emits [`AotOp::Generic`]).
fn lower_pure(di: &DInst) -> Option<MicroOp> {
    let r16 = |r: schematic_ir::Reg| u16::try_from(r.index()).expect("register index fits u16");
    Some(match *di {
        DInst::Bin { dst, op, lhs, rhs } => match (lhs, rhs) {
            (Operand::Reg(a), Operand::Reg(b)) => MicroOp::BinRR {
                op,
                d: r16(dst),
                a: r16(a),
                b: r16(b),
            },
            (Operand::Reg(a), Operand::Imm(imm)) => MicroOp::BinRI {
                op,
                d: r16(dst),
                a: r16(a),
                imm,
            },
            _ => return None,
        },
        DInst::Cmp { dst, op, lhs, rhs } => match (lhs, rhs) {
            (Operand::Reg(a), Operand::Reg(b)) => MicroOp::CmpRR {
                op,
                d: r16(dst),
                a: r16(a),
                b: r16(b),
            },
            (Operand::Reg(a), Operand::Imm(imm)) => MicroOp::CmpRI {
                op,
                d: r16(dst),
                a: r16(a),
                imm,
            },
            _ => return None,
        },
        DInst::Un {
            dst,
            op,
            src: Operand::Reg(a),
        } => MicroOp::UnR {
            op,
            d: r16(dst),
            a: r16(a),
        },
        DInst::Copy {
            dst,
            src: Operand::Reg(a),
        } => MicroOp::CopyR {
            d: r16(dst),
            a: r16(a),
        },
        DInst::Copy {
            dst,
            src: Operand::Imm(imm),
        } => MicroOp::CopyI { d: r16(dst), imm },
        _ => return None,
    })
}

/// How an access's arena address resolves at lowering time.
enum Addr {
    /// Scalar or in-bounds immediate index: the flat word address is a
    /// constant.
    Const(u32),
    /// Register index (`.0` is the register): bounds-checked at run
    /// time.
    Dyn(u16),
    /// Immediate index already known to be out of bounds.
    Oob { index: i64, words: usize },
}

/// Resolves as much of the address computation as the index shape
/// allows.
fn resolve_addr(idx: Option<Operand>, base: u32, words: u32) -> Addr {
    match idx {
        None => {
            if words > 0 {
                Addr::Const(base)
            } else {
                Addr::Oob { index: 0, words: 0 }
            }
        }
        Some(Operand::Imm(v)) => {
            let i = i64::from(v);
            if i >= 0 && (i as u64) < u64::from(words) {
                Addr::Const(base + v as u32)
            } else {
                Addr::Oob {
                    index: i,
                    words: words as usize,
                }
            }
        }
        Some(Operand::Reg(r)) => Addr::Dyn(u16::try_from(r.index()).expect("register fits u16")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_addr_folds_in_bounds_immediates() {
        assert!(matches!(
            resolve_addr(Some(Operand::Imm(3)), 100, 8),
            Addr::Const(103)
        ));
        assert!(matches!(resolve_addr(None, 7, 1), Addr::Const(7)));
        assert!(matches!(
            resolve_addr(Some(Operand::Imm(8)), 100, 8),
            Addr::Oob { index: 8, words: 8 }
        ));
        assert!(matches!(
            resolve_addr(Some(Operand::Imm(-1)), 100, 8),
            Addr::Oob { index: -1, .. }
        ));
        assert!(matches!(resolve_addr(None, 0, 0), Addr::Oob { .. }));
    }

    #[test]
    fn micro_lowering_specializes_shapes() {
        use schematic_ir::Reg;
        let di = DInst::Bin {
            dst: Reg(0),
            op: BinOp::Add,
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::Imm(5),
        };
        assert!(matches!(
            lower_pure(&di),
            Some(MicroOp::BinRI {
                op: BinOp::Add,
                d: 0,
                a: 1,
                imm: 5
            })
        ));
        let mut regs = [0, 37];
        let mut mb = schematic_ir::ModuleBuilder::new("m");
        let mut f = schematic_ir::FunctionBuilder::new("main", 0);
        f.ret(None);
        let main = mb.func(f.finish());
        let mut mem = Memory::new(&mb.finish(main), 64);
        let mut clobbers = 0u64;
        assert!(exec_micro(
            &lower_pure(&di).expect("specializes"),
            &mut regs,
            &mut mem,
            &mut clobbers,
        ));
        assert_eq!(regs[0], 42);
        assert_eq!(clobbers, 0);
    }

    #[test]
    fn micro_op_stays_compact() {
        // The tape's cache density is the point: rare shapes must fall
        // back to `AotOp` variants instead of growing every entry.
        assert!(std::mem::size_of::<MicroOp>() <= 16);
    }

    #[test]
    fn dyn_at_single_compare_covers_both_oob_sides() {
        let regs = [3, -1, 8];
        let var = VarId(0);
        assert_eq!(dyn_at(&regs, 0, 100, 8, var).expect("in bounds"), 103);
        assert!(matches!(
            dyn_at(&regs, 1, 100, 8, var),
            Err(TrapKind::IndexOutOfBounds {
                index: -1,
                words: 8,
                ..
            })
        ));
        assert!(matches!(
            dyn_at(&regs, 2, 100, 8, var),
            Err(TrapKind::IndexOutOfBounds {
                index: 8,
                words: 8,
                ..
            })
        ));
    }
}
