//! Hybrid VM/NVM memory state.
//!
//! Every variable has a *home* array in NVM. A variable may additionally
//! have a VM copy; the copy carries a `valid` bit (cleared whenever power
//! is lost or the variable leaves VM) and a `dirty` bit (set by VM
//! writes, cleared when the copy is flushed to NVM). The emulator decides
//! per access — from the allocation plan — whether to touch the VM copy
//! or the NVM home.

use crate::error::{EmuError, TrapKind};
use schematic_ir::{Module, VarId, WORD_BYTES};

/// Per-variable word offsets (a prefix sum over variable sizes) and the
/// total arena size. This layout is a pure function of the module, shared
/// by [`Memory::new`] and the decoder so that decode-time resolved arena
/// addresses (see `DInst::Load`/`DInst::Store`) agree with the arenas the
/// memory subsystem allocates.
pub(crate) fn word_offsets(module: &Module) -> (Vec<u32>, usize) {
    let mut off = Vec::with_capacity(module.vars.len());
    let mut total = 0usize;
    for var in &module.vars {
        off.push(u32::try_from(total).expect("arena offset fits u32"));
        total += var.words;
    }
    (off, total)
}

/// The memory subsystem of the emulated platform.
///
/// Both address spaces are flat arenas indexed by a per-variable word
/// offset (a prefix sum over variable sizes, fixed at construction).
/// A word access is then a single bounds-checked arena index instead of
/// a nested `Vec<Vec<_>>` walk — the emulator's hot loop does one of
/// these per load/store, so the extra pointer chase showed up directly
/// in profiles. The VM arena is allocated up front at full size; the
/// *accounted* VM occupancy (`resident_bytes`, capped by `svm_bytes`)
/// still tracks only variables whose copies are valid, which is what
/// the SVM capacity models.
#[derive(Debug, Clone)]
pub struct Memory {
    /// NVM home arena (all variables, concatenated).
    nvm: Vec<i32>,
    /// VM copy arena (same layout as `nvm`; slots are garbage unless
    /// the variable's `valid` bit is set).
    vm: Vec<i32>,
    /// Word offset of each variable in both arenas.
    off: Vec<u32>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    /// Currently-dirty variables, kept sorted by id. Residency
    /// reconciliation runs on every block transition and only cares
    /// about dirty copies, so it iterates this (usually tiny) list
    /// instead of scanning every variable.
    dirty_list: Vec<VarId>,
    /// Bytes of VM currently holding valid copies.
    resident_bytes: usize,
    /// Configured VM capacity in bytes (`SVM`).
    svm_bytes: usize,
    /// Variable sizes, cached.
    words: Vec<usize>,
}

impl Memory {
    /// Initializes NVM from the module's variable initializers.
    pub fn new(module: &Module, svm_bytes: usize) -> Self {
        let n = module.vars.len();
        let (off, total) = word_offsets(module);
        let mut nvm = vec![0i32; total];
        for (var, &o) in module.vars.iter().zip(&off) {
            let o = o as usize;
            for (slot, &v) in nvm[o..o + var.words].iter_mut().zip(var.init.iter()) {
                *slot = v;
            }
        }
        Memory {
            nvm,
            vm: vec![0i32; total],
            off,
            valid: vec![false; n],
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            resident_bytes: 0,
            svm_bytes,
            words: module.vars.iter().map(|v| v.words).collect(),
        }
    }

    /// Arena range of `var` (its home in NVM and its slot in VM).
    #[inline]
    fn range(&self, var: VarId) -> std::ops::Range<usize> {
        let o = self.off[var.index()] as usize;
        o..o + self.words[var.index()]
    }

    /// The configured VM capacity in bytes.
    pub fn svm_bytes(&self) -> usize {
        self.svm_bytes
    }

    /// Bytes of VM currently occupied by valid copies.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Whether `var` currently has a valid VM copy.
    #[inline]
    pub fn is_vm_valid(&self, var: VarId) -> bool {
        self.valid[var.index()]
    }

    /// Whether `var`'s VM copy is dirty (newer than its NVM home).
    pub fn is_dirty(&self, var: VarId) -> bool {
        self.dirty[var.index()]
    }

    /// The currently-dirty variables, in increasing id order.
    pub fn dirty_vars(&self) -> &[VarId] {
        &self.dirty_list
    }

    #[inline]
    fn mark_dirty(&mut self, var: VarId) {
        if !self.dirty[var.index()] {
            self.dirty[var.index()] = true;
            let pos = self.dirty_list.partition_point(|&v| v < var);
            self.dirty_list.insert(pos, var);
        }
    }

    fn clear_dirty(&mut self, var: VarId) {
        if self.dirty[var.index()] {
            self.dirty[var.index()] = false;
            if let Ok(pos) = self.dirty_list.binary_search(&var) {
                self.dirty_list.remove(pos);
            }
        }
    }

    #[inline]
    fn bounds_check(&self, var: VarId, idx: i64) -> Result<usize, TrapKind> {
        let words = self.words[var.index()];
        if idx < 0 || idx as usize >= words {
            Err(TrapKind::IndexOutOfBounds {
                var,
                index: idx,
                words,
            })
        } else {
            Ok(idx as usize)
        }
    }

    /// Reads a word from the NVM home.
    #[inline]
    pub fn nvm_read(&self, var: VarId, idx: i64) -> Result<i32, TrapKind> {
        let i = self.bounds_check(var, idx)?;
        Ok(self.nvm[self.off[var.index()] as usize + i])
    }

    /// Writes a word to the NVM home. A valid VM copy becomes stale and
    /// is invalidated (its dirty data is discarded — passes must never
    /// mix a dirty VM copy with NVM writes; see
    /// [`Memory::nvm_write_would_clobber`]).
    pub fn nvm_write(&mut self, var: VarId, idx: i64, value: i32) -> Result<(), TrapKind> {
        let i = self.bounds_check(var, idx)?;
        self.nvm[self.off[var.index()] as usize + i] = value;
        if self.valid[var.index()] {
            self.drop_vm(var);
        }
        Ok(())
    }

    /// Whether an NVM write to `var` would discard dirty VM data — a
    /// coherence violation in the instrumentation.
    pub fn nvm_write_would_clobber(&self, var: VarId) -> bool {
        self.valid[var.index()] && self.dirty[var.index()]
    }

    /// Reads a word from the VM copy.
    ///
    /// # Errors
    ///
    /// The copy must be valid — the emulator fault-loads first.
    #[inline]
    pub fn vm_read(&self, var: VarId, idx: i64) -> Result<i32, TrapKind> {
        let i = self.bounds_check(var, idx)?;
        debug_assert!(self.valid[var.index()], "vm_read of invalid copy");
        Ok(self.vm[self.off[var.index()] as usize + i])
    }

    /// Writes a word to the VM copy, marking it dirty.
    #[inline]
    pub fn vm_write(&mut self, var: VarId, idx: i64, value: i32) -> Result<(), TrapKind> {
        let i = self.bounds_check(var, idx)?;
        debug_assert!(self.valid[var.index()], "vm_write of invalid copy");
        self.vm[self.off[var.index()] as usize + i] = value;
        self.mark_dirty(var);
        Ok(())
    }

    // ----- resolved-address fast path ---------------------------------
    //
    // The decoder resolves every load/store's arena word address once
    // (`base + idx`, with `idx` bounds-checked against the decode-time
    // variable size). These accessors skip the per-access offset lookup
    // and bounds check; callers must have proven the address in range
    // and — for the VM forms — the copy valid (the fused executor's
    // per-block prep pass establishes validity before the body runs).

    /// Reads the VM arena word at resolved address `at`.
    #[inline(always)]
    pub(crate) fn vm_read_at(&self, at: usize) -> i32 {
        self.vm[at]
    }

    /// Writes the VM arena word at resolved address `at`, marking `var`
    /// dirty.
    #[inline(always)]
    pub(crate) fn vm_write_at(&mut self, var: VarId, at: usize, value: i32) {
        self.vm[at] = value;
        self.mark_dirty(var);
    }

    /// Reads the NVM arena word at resolved address `at`.
    #[inline(always)]
    pub(crate) fn nvm_read_at(&self, at: usize) -> i32 {
        self.nvm[at]
    }

    /// Writes the NVM arena word at resolved address `at`, invalidating
    /// any VM copy of `var` (same stale-copy rule as [`Memory::nvm_write`]).
    #[inline(always)]
    pub(crate) fn nvm_write_at(&mut self, var: VarId, at: usize, value: i32) {
        self.nvm[at] = value;
        if self.valid[var.index()] {
            self.drop_vm(var);
        }
    }

    /// Loads `var` into VM from its NVM home (restore data path).
    ///
    /// Returns the number of words copied. Errors if the VM capacity
    /// would be exceeded.
    pub fn load_to_vm(&mut self, var: VarId) -> Result<usize, EmuError> {
        if self.valid[var.index()] {
            return Ok(0); // already resident and valid
        }
        let words = self.words[var.index()];
        let needed = self.resident_bytes + words * WORD_BYTES;
        if needed > self.svm_bytes {
            return Err(EmuError::VmOverflow {
                needed,
                svm: self.svm_bytes,
            });
        }
        let r = self.range(var);
        let (nvm, vm) = (&self.nvm[r.clone()], &mut self.vm[..]);
        vm[r].copy_from_slice(nvm);
        self.valid[var.index()] = true;
        self.clear_dirty(var);
        self.resident_bytes = needed;
        Ok(words)
    }

    /// Materializes an *uninitialized* VM copy for `var` without reading
    /// NVM — used when the first access after a checkpoint is a full
    /// (scalar) overwrite, so no restore energy is due.
    pub fn alloc_vm_uninit(&mut self, var: VarId) -> Result<(), EmuError> {
        if self.valid[var.index()] {
            return Ok(());
        }
        let words = self.words[var.index()];
        let needed = self.resident_bytes + words * WORD_BYTES;
        if needed > self.svm_bytes {
            return Err(EmuError::VmOverflow {
                needed,
                svm: self.svm_bytes,
            });
        }
        let r = self.range(var);
        self.vm[r].fill(0);
        self.valid[var.index()] = true;
        self.mark_dirty(var); // will be written immediately
        self.resident_bytes = needed;
        Ok(())
    }

    /// Flushes `var`'s VM copy to its NVM home (checkpoint save data
    /// path). Returns the number of words written (0 if not resident).
    /// The copy stays valid and becomes clean.
    pub fn flush_to_nvm(&mut self, var: VarId) -> usize {
        if !self.valid[var.index()] {
            return 0;
        }
        let r = self.range(var);
        let words = r.len();
        let (vm, nvm) = (&self.vm[r.clone()], &mut self.nvm[..]);
        nvm[r].copy_from_slice(vm);
        self.clear_dirty(var);
        words
    }

    /// Drops `var` from VM (allocation change), discarding the copy.
    pub fn drop_vm(&mut self, var: VarId) {
        if self.valid[var.index()] {
            self.valid[var.index()] = false;
            self.clear_dirty(var);
            self.resident_bytes -= self.words[var.index()] * WORD_BYTES;
        }
    }

    /// Power failure: every VM copy is lost.
    pub fn lose_volatile(&mut self) {
        self.valid.fill(false);
        self.dirty.fill(false);
        self.dirty_list.clear();
        self.resident_bytes = 0;
    }

    /// Direct read of the NVM home array (for result checking in tests).
    pub fn nvm_slice(&self, var: VarId) -> &[i32] {
        &self.nvm[self.range(var)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{ModuleBuilder, Variable};

    fn memory(svm: usize) -> Memory {
        let mut mb = ModuleBuilder::new("m");
        mb.var(Variable::scalar("x").with_init(vec![7]));
        mb.var(Variable::array("a", 4).with_init(vec![1, 2, 3]));
        let mut f = schematic_ir::FunctionBuilder::new("main", 0);
        f.ret(None);
        let main = mb.func(f.finish());
        Memory::new(&mb.finish(main), svm)
    }

    const X: VarId = VarId(0);
    const A: VarId = VarId(1);

    #[test]
    fn nvm_initialized_from_module() {
        let m = memory(1024);
        assert_eq!(m.nvm_read(X, 0).unwrap(), 7);
        assert_eq!(m.nvm_read(A, 2).unwrap(), 3);
        assert_eq!(m.nvm_read(A, 3).unwrap(), 0); // zero-extended
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = memory(1024);
        assert!(m.nvm_read(A, 4).is_err());
        assert!(m.nvm_read(A, -1).is_err());
        assert!(m.nvm_write(X, 1, 0).is_err());
    }

    #[test]
    fn vm_roundtrip_with_flush() {
        let mut m = memory(1024);
        assert_eq!(m.load_to_vm(A).unwrap(), 4);
        assert!(m.is_vm_valid(A));
        assert_eq!(m.resident_bytes(), 16);
        assert_eq!(m.vm_read(A, 1).unwrap(), 2);
        m.vm_write(A, 1, 42).unwrap();
        assert!(m.is_dirty(A));
        // NVM home unchanged until flush.
        assert_eq!(m.nvm_read(A, 1).unwrap(), 2);
        assert_eq!(m.flush_to_nvm(A), 4);
        assert_eq!(m.nvm_read(A, 1).unwrap(), 42);
        assert!(!m.is_dirty(A));
        assert!(m.is_vm_valid(A)); // stays resident
    }

    #[test]
    fn load_twice_is_free() {
        let mut m = memory(1024);
        assert_eq!(m.load_to_vm(X).unwrap(), 1);
        assert_eq!(m.load_to_vm(X).unwrap(), 0);
        assert_eq!(m.resident_bytes(), 4);
    }

    #[test]
    fn svm_capacity_enforced() {
        let mut m = memory(16);
        m.load_to_vm(A).unwrap(); // 16 bytes, fills VM
        let err = m.load_to_vm(X).unwrap_err();
        assert!(matches!(err, EmuError::VmOverflow { .. }));
        m.drop_vm(A);
        assert_eq!(m.resident_bytes(), 0);
        m.load_to_vm(X).unwrap();
    }

    #[test]
    fn power_failure_loses_vm() {
        let mut m = memory(1024);
        m.load_to_vm(A).unwrap();
        m.vm_write(A, 0, 9).unwrap();
        m.lose_volatile();
        assert!(!m.is_vm_valid(A));
        assert_eq!(m.resident_bytes(), 0);
        // NVM keeps the last flushed value.
        assert_eq!(m.nvm_read(A, 0).unwrap(), 1);
    }

    #[test]
    fn nvm_write_invalidates_vm_copy() {
        let mut m = memory(1024);
        m.load_to_vm(X).unwrap();
        assert!(!m.nvm_write_would_clobber(X));
        m.vm_write(X, 0, 5).unwrap();
        assert!(m.nvm_write_would_clobber(X));
        m.nvm_write(X, 0, 8).unwrap();
        assert!(!m.is_vm_valid(X));
        assert_eq!(m.nvm_read(X, 0).unwrap(), 8);
    }

    #[test]
    fn alloc_uninit_skips_restore() {
        let mut m = memory(1024);
        m.alloc_vm_uninit(X).unwrap();
        assert!(m.is_vm_valid(X));
        assert!(m.is_dirty(X));
        m.vm_write(X, 0, 3).unwrap();
        assert_eq!(m.flush_to_nvm(X), 1);
        assert_eq!(m.nvm_read(X, 0).unwrap(), 3);
    }

    #[test]
    fn flush_nonresident_is_noop() {
        let mut m = memory(1024);
        assert_eq!(m.flush_to_nvm(A), 0);
    }
}
