//! The intermittent-computing interpreter.
//!
//! [`Machine`] executes an [`InstrumentedModule`] under a [`PowerModel`],
//! charging every instruction's cycle and energy cost from a
//! [`CostTable`], handling checkpoint intrinsics according to the
//! program's [`FailurePolicy`], and rolling power failures/restores into
//! the [`Metrics`] taxonomy of the paper's Figure 6.
//!
//! This is the reproduction's substitute for the SCEPTIC emulator the
//! paper uses (§IV-A.c): execution is at IR level, power failures are
//! periodic (TBPF), and metrics map to MSP430FR5969-like energy.

use crate::decoded::{DInst, DTerm, DecodedModule};
use crate::error::{EmuError, TrapKind};
use crate::instrumented::{CheckpointKind, CheckpointSpec, FailurePolicy, InstrumentedModule};
use crate::memory::Memory;
use crate::metrics::Metrics;
use crate::power::{PowerModel, PowerState};
use crate::shadow::{EpochStart, ShadowRecorder, ShadowReport};
use schematic_energy::{Cost, CostTable, Energy, MemClass};
use schematic_ir::{
    AccessKind, BinOp, BlockId, CheckpointId, FuncId, Operand, Reg, UnOp, VarId, VarSet,
};

/// The emulator's execution-tier ladder, from plain interpretation to
/// AOT-compiled traces. Each tier is a pure dispatch strategy: metrics,
/// failure points and results are bit-identical across all four (the
/// fall-back-near-failure guards prove any fused unit is equivalent to
/// per-instruction stepping). Higher tiers subsume lower ones — a run at
/// `Aot` still interprets per instruction near power failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExecTier {
    /// Per-instruction interpretation only. Forced whenever WAR
    /// shadowing or lifecycle tracing is active, which must observe
    /// every access/step individually.
    Interp,
    /// Single fusable blocks dispatch as one step (PR-5 behavior).
    Fused,
    /// Trace superblocks: chains of fusable blocks across unconditional
    /// branches dispatch as one step.
    Trace,
    /// Hot traces are additionally lowered to closed Rust closures over
    /// resolved operands (see [`crate::aot`]).
    Aot,
}

/// Limits and options for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Power supply model.
    pub power: PowerModel,
    /// Volatile memory capacity in bytes (`SVM`); the MSP430FR5969 has
    /// 2 KB.
    pub svm_bytes: usize,
    /// Abort after this many active cycles (guards non-termination).
    pub max_active_cycles: u64,
    /// Abort after this many power failures.
    pub max_failures: u64,
    /// Declare livelock after this many consecutive power failures with
    /// no new checkpoint committed — the forward-progress test of
    /// Table III.
    pub livelock_threshold: u32,
    /// Maximum call-stack depth.
    pub max_stack: usize,
    /// Model a retentive low-power sleep mode (e.g. MSP430 LPM3 with
    /// SRAM retention): wait-mode checkpoints still *save* (a real
    /// outage may strike during standby) but volatile state survives
    /// the sleep, so nothing is restored on wake-up. This implements the
    /// paper's §VII future-work direction and quantifies its benefit.
    pub retentive_sleep: bool,
    /// Record the sequence of executed blocks (for path profiling).
    pub record_trace: bool,
    /// Cap on recorded trace entries.
    pub max_trace: usize,
    /// Record NVM first-access order per inter-checkpoint epoch and
    /// report observed WAR hazards ([`ShadowReport`]), cross-validating
    /// the static analysis in `schematic-core`. Also enabled by setting
    /// the `SCHEMATIC_SHADOW_WAR=1` environment variable. Disables the
    /// fused block dispatch for the run (metrics stay bit-identical,
    /// the run is just slower), so it is off by default.
    pub shadow_war: bool,
    /// Emit the intermittent-execution lifecycle as structured
    /// [`schematic_obs`] events (see [`crate::trace`]). Also enabled by
    /// `SCHEMATIC_TRACE=1` or [`crate::trace::set_forced`]. Like
    /// [`RunConfig::shadow_war`], disables fused dispatch for the run;
    /// metrics stay bit-identical.
    pub trace: bool,
    /// Highest execution tier the run may use (see [`ExecTier`]); the
    /// effective tier additionally drops to [`ExecTier::Interp`] when
    /// shadowing or tracing is active. All tiers produce bit-identical
    /// metrics — except the transient `peak_vm_bytes` gauge, which the
    /// fused tiers' up-front residency prep can raise past the
    /// per-instruction interleaving — so this knob exists for
    /// differential testing (`tests/tier_parity.rs`) and the per-tier
    /// perfsmoke breakdown.
    pub tier: ExecTier,
    /// Execution count at which a trace head is lowered to AOT closures
    /// (only at [`ExecTier::Aot`]). Cold code never pays the build.
    pub aot_threshold: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            power: PowerModel::Continuous,
            svm_bytes: 2048,
            max_active_cycles: 2_000_000_000,
            max_failures: 1_000_000,
            livelock_threshold: 8,
            max_stack: 64,
            retentive_sleep: false,
            record_trace: false,
            max_trace: 4_000_000,
            shadow_war: false,
            trace: false,
            tier: ExecTier::Aot,
            aot_threshold: 32,
        }
    }
}

impl RunConfig {
    /// Continuous power with tracing enabled (profiling runs).
    pub fn profiling() -> Self {
        RunConfig {
            record_trace: true,
            ..RunConfig::default()
        }
    }

    /// Periodic power failures every `tbpf` cycles.
    pub fn periodic(tbpf: u64) -> Self {
        RunConfig {
            power: PowerModel::Periodic { tbpf },
            ..RunConfig::default()
        }
    }

    /// Feeds the *outcome identity* of this config into a stable hasher:
    /// every field that can change a run's [`Metrics`] or status. Used
    /// by content-addressed result caching.
    ///
    /// Deliberately excluded — observation knobs that are proven not to
    /// affect outcomes: `record_trace`/`max_trace` (path recording),
    /// `trace` (event emission), `tier`/`aot_threshold` (bit-identical
    /// down the ladder, pinned by `tests/tier_parity.rs`). `shadow_war`
    /// is *included*: it fills [`RunOutcome::shadow`], which shadow
    /// cells report on.
    pub fn identity_into(&self, h: &mut schematic_ir::hash::StableHasher) {
        match self.power {
            PowerModel::Continuous => h.write_tag(0xE0),
            PowerModel::Periodic { tbpf } => {
                h.write_tag(0xE1);
                h.write_u64(tbpf);
            }
            PowerModel::Stochastic {
                mean_tbpf,
                jitter,
                seed,
            } => {
                h.write_tag(0xE2);
                h.write_u64(mean_tbpf);
                h.write_u64(jitter);
                h.write_u64(seed);
            }
            // Hash the window *contents*, not the intern index: ids are
            // assigned in first-intern order, which parallel drivers do
            // not fix.
            PowerModel::Trace { id } => {
                h.write_tag(0xE3);
                let windows = crate::power::trace_windows(id);
                h.write_usize(windows.len());
                for &w in windows {
                    h.write_u64(w);
                }
            }
        }
        h.write_usize(self.svm_bytes);
        h.write_u64(self.max_active_cycles);
        h.write_u64(self.max_failures);
        h.write_u64(u64::from(self.livelock_threshold));
        h.write_usize(self.max_stack);
        h.write_bool(self.retentive_sleep);
        h.write_bool(self.shadow_war);
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The program ran to completion.
    Completed,
    /// Forward progress was lost: repeated failures with no new
    /// checkpoint (✗ in Table III).
    Livelock,
    /// The active-cycle budget was exhausted.
    CycleLimit,
    /// The failure budget was exhausted.
    FailureLimit,
}

/// Result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Why the run ended.
    pub status: RunStatus,
    /// The entry function's return value, when completed.
    pub result: Option<i32>,
    /// Measurements.
    pub metrics: Metrics,
    /// Executed-block trace (empty unless requested).
    pub trace: Vec<(FuncId, BlockId)>,
    /// Observed NVM access order per epoch (only under
    /// [`RunConfig::shadow_war`]).
    pub shadow: Option<ShadowReport>,
}

impl RunOutcome {
    /// Whether the program completed (✓ in Table III).
    pub fn completed(&self) -> bool {
        self.status == RunStatus::Completed
    }
}

#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<i32>,
    ret_dst: Option<Reg>,
}

impl Frame {
    #[inline]
    fn eval(&self, op: Operand) -> i32 {
        match op {
            Operand::Imm(v) => v,
            Operand::Reg(r) => self.regs[r.index()],
        }
    }
}

#[derive(Debug, Clone)]
struct Image {
    frames: Vec<Frame>,
    restore_vars: Vec<VarId>,
    restore_words: usize,
    /// Which checkpoint committed this image (`None` = the implicit
    /// pre-deployment/boot image) — labels the epoch a failure rolls
    /// back into for the shadow recorder.
    cp_id: Option<CheckpointId>,
}

enum Step {
    Continue,
    Finished(Option<i32>),
    Failure,
}

enum ChargeCat {
    Exec,
    Save,
    Restore,
}

/// Memory word-access costs precomputed once per [`Machine`] so the hot
/// interpreter loop never rebuilds a `Cost` from the table's raw
/// cycle/energy fields. (Per-opcode execution costs live in the decoded
/// program's flat `costs` array; see [`DecodedModule`].)
struct CostCache {
    vm_read: Cost,
    vm_write: Cost,
    nvm_read: Cost,
    nvm_write: Cost,
}

impl CostCache {
    fn new(table: &CostTable) -> Self {
        CostCache {
            vm_read: table.access_cost(MemClass::Vm, AccessKind::Read),
            vm_write: table.access_cost(MemClass::Vm, AccessKind::Write),
            nvm_read: table.access_cost(MemClass::Nvm, AccessKind::Read),
            nvm_write: table.access_cost(MemClass::Nvm, AccessKind::Write),
        }
    }
}

/// How the machine holds its decoded program: built internally for
/// one-shot runs ([`Machine::new`]) or borrowed from the caller so
/// repeated runs share one lowering ([`Machine::with_decoded`]).
enum DecodedSource<'a> {
    Owned(DecodedModule<'a>),
    Shared(&'a DecodedModule<'a>),
}

impl<'a> DecodedSource<'a> {
    #[inline]
    fn get(&self) -> &DecodedModule<'a> {
        match self {
            DecodedSource::Owned(d) => d,
            DecodedSource::Shared(d) => d,
        }
    }
}

/// The emulator.
pub struct Machine<'a> {
    im: &'a InstrumentedModule,
    table: &'a CostTable,
    costs: CostCache,
    /// The predecoded program ([`DecodedModule`]): per-instruction
    /// resolved costs, pre-resolved memory classes, flat branch targets
    /// and superblock fusion tables.
    decoded: DecodedSource<'a>,
    config: RunConfig,
    mem: Memory,
    frames: Vec<Frame>,
    power: PowerState,
    metrics: Metrics,
    cond_counters: Vec<u64>,
    image: Option<Image>,
    /// Flat index (into the decoded block array) of the block the top
    /// frame executes, kept in sync with the frame stack so `step`
    /// dispatches without re-resolving `func(..).block(..)`.
    cur_flat: u32,
    /// Retired register files recycled across calls.
    reg_pool: Vec<Vec<i32>>,
    /// Scratch list of variables to flush, reused by residency
    /// reconciliation.
    flush_scratch: Vec<VarId>,
    /// Instructions retired since the last checkpoint commit/restore.
    epoch_insts: u64,
    /// Furthest `epoch_insts` reached in the current epoch before a
    /// failure — instructions below this mark are re-executions.
    furthest: u64,
    committed_since_failure: bool,
    consecutive_no_progress: u32,
    pending_failure: bool,
    trace: Vec<(FuncId, BlockId)>,
    /// Cross-validation recorder (see [`crate::shadow`]); `None` on the
    /// default fast path.
    shadow: Option<ShadowRecorder>,
    /// Lifecycle event tracing (see [`crate::trace`]); `false` on the
    /// default fast path.
    tracing: bool,
    /// The resolved execution tier: [`RunConfig::tier`], dropped to
    /// [`ExecTier::Interp`] when shadowing or tracing is active.
    tier: ExecTier,
    /// Per-flat-block dispatch counts of trace heads, driving the AOT
    /// threshold.
    exec_counts: Vec<u32>,
}

impl<'a> Machine<'a> {
    /// Prepares a machine for one run of `im`, predecoding it
    /// internally. To amortize the lowering across many runs of the same
    /// program, predecode once and use [`Machine::with_decoded`].
    pub fn new(im: &'a InstrumentedModule, table: &'a CostTable, config: RunConfig) -> Self {
        let decoded = DecodedModule::new(im, table);
        Self::build(im, table, DecodedSource::Owned(decoded), config)
    }

    /// Prepares a machine for one run of an already-decoded program,
    /// sharing the lowering with other runs.
    pub fn with_decoded(decoded: &'a DecodedModule<'a>, config: RunConfig) -> Self {
        Self::build(
            decoded.instrumented(),
            decoded.cost_table(),
            DecodedSource::Shared(decoded),
            config,
        )
    }

    fn build(
        im: &'a InstrumentedModule,
        table: &'a CostTable,
        decoded: DecodedSource<'a>,
        config: RunConfig,
    ) -> Self {
        let mem = Memory::new(&im.module, config.svm_bytes);
        let power = PowerState::new(config.power);
        let shadow_on =
            config.shadow_war || std::env::var_os("SCHEMATIC_SHADOW_WAR").is_some_and(|v| v == "1");
        let shadow = shadow_on.then(|| ShadowRecorder::new(im.module.vars.iter().map(|v| v.words)));
        let tracing = config.trace
            || crate::trace::forced()
            || std::env::var_os("SCHEMATIC_TRACE").is_some_and(|v| v == "1");
        // Shadowing and tracing must observe every access/step
        // individually, so they force the per-instruction tier (metrics
        // stay bit-identical either way).
        let tier = if shadow_on || tracing {
            ExecTier::Interp
        } else {
            config.tier
        };
        let n_blocks = decoded.get().blocks.len();
        Machine {
            im,
            table,
            costs: CostCache::new(table),
            decoded,
            config,
            mem,
            frames: Vec::new(),
            power,
            metrics: Metrics::default(),
            cond_counters: vec![0; im.checkpoints.len()],
            image: None,
            cur_flat: 0,
            reg_pool: Vec::new(),
            flush_scratch: Vec::new(),
            epoch_insts: 0,
            furthest: 0,
            committed_since_failure: false,
            consecutive_no_progress: 0,
            pending_failure: false,
            trace: Vec::new(),
            shadow,
            tracing,
            tier,
            exec_counts: vec![0; n_blocks],
        }
    }

    /// The execution tier this run actually uses: [`RunConfig::tier`],
    /// dropped to [`ExecTier::Interp`] when WAR shadowing or lifecycle
    /// tracing is active (those modes must observe every access/step
    /// individually; metrics are bit-identical at every tier).
    pub fn effective_tier(&self) -> ExecTier {
        self.tier
    }

    /// Emits one lifecycle trace event, appending the cumulative Fig. 6
    /// energy snapshot (see [`crate::trace`]). Call sites gate on
    /// `self.tracing`.
    fn emit(&self, kind: &'static str, mut fields: Vec<(&'static str, schematic_obs::Value)>) {
        fields.extend(crate::trace::snapshot_fields(&self.metrics));
        schematic_obs::event(kind, fields);
    }

    /// Runs the program to an outcome.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on a runtime trap (division by zero, index
    /// out of bounds, stack overflow) or if the VM capacity is exceeded —
    /// both indicate an invalid program or instrumentation, not an
    /// intermittency effect.
    pub fn run(mut self) -> Result<RunOutcome, EmuError> {
        if self.tracing {
            let tbpf = match self.config.power {
                PowerModel::Continuous => 0,
                model => model.min_window_cycles(),
            };
            self.emit(
                "run_start",
                vec![
                    ("tbpf", tbpf.into()),
                    ("scenario", self.config.power.label().into()),
                ],
            );
        }
        self.boot()?;
        loop {
            if self.metrics.active_cycles > self.config.max_active_cycles {
                return Ok(self.finish(RunStatus::CycleLimit, None));
            }
            if self.metrics.power_failures > self.config.max_failures {
                return Ok(self.finish(RunStatus::FailureLimit, None));
            }
            match self.step()? {
                Step::Continue => {}
                Step::Finished(v) => return Ok(self.finish(RunStatus::Completed, v)),
                Step::Failure => {
                    if !self.handle_failure()? {
                        return Ok(self.finish(RunStatus::Livelock, None));
                    }
                }
            }
        }
    }

    fn finish(self, status: RunStatus, result: Option<i32>) -> RunOutcome {
        if self.tracing {
            self.emit(
                "run_end",
                vec![("status", crate::trace::status_label(status).into())],
            );
        }
        RunOutcome {
            status,
            result,
            metrics: self.metrics,
            trace: self.trace,
            shadow: self.shadow.map(ShadowRecorder::into_report),
        }
    }

    // ----- power & energy accounting ------------------------------------

    fn charge(&mut self, cost: Cost, cat: ChargeCat) {
        self.metrics.active_cycles += cost.cycles;
        match cat {
            ChargeCat::Exec => {
                if self.epoch_insts < self.furthest {
                    self.metrics.reexecution += cost.energy;
                } else {
                    self.metrics.computation += cost.energy;
                }
            }
            ChargeCat::Save => self.metrics.save += cost.energy,
            ChargeCat::Restore => self.metrics.restore += cost.energy,
        }
        if self.power.advance(cost.cycles) {
            self.pending_failure = true;
        }
    }

    fn charge_exec_cpu(&mut self, cost: Cost) {
        self.metrics.cpu_energy += cost.energy;
        self.charge(cost, ChargeCat::Exec);
    }

    /// Charges a memory instruction's CPU and access parts together:
    /// one power advance and one category branch instead of two. All
    /// accounting is additive and both parts land inside the same step
    /// (failure detection is a sticky flag checked at step end), so the
    /// totals and failure points are identical to two separate charges.
    fn charge_exec_mem(&mut self, cpu: Cost, access: Cost, class: MemClass) {
        self.metrics.cpu_energy += cpu.energy;
        match class {
            MemClass::Vm => self.metrics.vm_access_energy += access.energy,
            MemClass::Nvm => self.metrics.nvm_access_energy += access.energy,
        }
        self.charge(cpu + access, ChargeCat::Exec);
    }

    // ----- boot & failure handling ---------------------------------------

    fn boot(&mut self) -> Result<(), EmuError> {
        let entry = self.im.module.entry_func();
        let func = self.im.module.func(entry);
        self.frames = vec![Frame {
            func: entry,
            block: func.entry,
            ip: 0,
            regs: vec![0; func.n_regs.max(1)],
            ret_dst: None,
        }];
        self.sync_flat();
        self.record_block(entry, func.entry);
        // Load the boot set into VM (charged as restore: it is the data
        // staging the platform performs before the program runs).
        let mut words = 0;
        for &v in &self.im.boot_restore {
            words += self.load_with_evict(v)?;
        }
        if words > 0 {
            let cost = self.table.restore_words_cost(words);
            self.charge(cost, ChargeCat::Restore);
        }
        if self.tracing {
            self.emit("boot", vec![("words", (words as u64).into())]);
        }
        self.update_peak_vm();
        // Rollback techniques have an implicit pre-deployment checkpoint
        // at program start so a failure before the first checkpoint
        // restarts the program rather than wedging.
        if self.im.policy == FailurePolicy::Rollback {
            self.image = Some(Image {
                frames: self.frames.clone(),
                restore_vars: self.im.boot_restore.clone(),
                restore_words: self
                    .im
                    .boot_restore
                    .iter()
                    .map(|v| self.im.module.var(*v).words)
                    .sum(),
                cp_id: None,
            });
        }
        Ok(())
    }

    /// Handles a power failure; returns `false` on livelock.
    fn handle_failure(&mut self) -> Result<bool, EmuError> {
        self.pending_failure = false;
        self.metrics.power_failures += 1;
        if self.tracing {
            self.emit(
                "power_failure",
                vec![
                    ("lost_insts", self.epoch_insts.into()),
                    ("window_cycles", self.power.window_cycles().into()),
                ],
            );
        }
        if self.im.policy == FailurePolicy::WaitRecharge {
            // Wait-mode placement guarantees failures only strike during
            // standby; one here means EB/WCEC was violated.
            self.metrics.unexpected_failures += 1;
        }
        if self.committed_since_failure {
            self.consecutive_no_progress = 0;
        } else {
            self.consecutive_no_progress += 1;
        }
        self.committed_since_failure = false;
        if self.consecutive_no_progress >= self.config.livelock_threshold {
            return Ok(false);
        }

        self.mem.lose_volatile();
        self.power.reboot();
        self.furthest = self.furthest.max(self.epoch_insts);
        self.epoch_insts = 0;

        // Wait-mode programs have no implicit start image: a failure
        // before the first checkpoint restarts the program from scratch
        // (the NVM state is still pristine because wait-mode code never
        // writes NVM before its first checkpoint interval completes...
        // conservatively, we restart and count on placement soundness).
        // Take the image out instead of cloning it whole; only the
        // frames need a working copy.
        let image = match self.image.take() {
            Some(img) => img,
            None => {
                let entry = self.im.module.entry_func();
                let func = self.im.module.func(entry);
                Image {
                    frames: vec![Frame {
                        func: entry,
                        block: func.entry,
                        ip: 0,
                        regs: vec![0; func.n_regs.max(1)],
                        ret_dst: None,
                    }],
                    restore_vars: self.im.boot_restore.clone(),
                    restore_words: self
                        .im
                        .boot_restore
                        .iter()
                        .map(|v| self.im.module.var(*v).words)
                        .sum(),
                    cp_id: None,
                }
            }
        };
        // Rolling back restarts the epoch: the aborted attempt's reads
        // can no longer pair with the retry's writes.
        if let Some(sh) = self.shadow.as_mut() {
            sh.begin_epoch(match image.cp_id {
                Some(id) => EpochStart::Checkpoint(id),
                None => EpochStart::Boot,
            });
        }
        self.frames.clone_from(&image.frames);
        self.sync_flat();
        let cost = self.table.checkpoint_resume_cost(image.restore_words);
        self.charge(cost, ChargeCat::Restore);
        self.metrics.restores += 1;
        for &v in &image.restore_vars {
            self.load_with_evict(v)?;
        }
        if self.tracing {
            let epoch = match image.cp_id {
                Some(id) => format!("cp{}", id.0),
                None => "boot".to_string(),
            };
            self.emit(
                "restore",
                vec![
                    ("epoch", epoch.into()),
                    ("words", (image.restore_words as u64).into()),
                ],
            );
        }
        self.image = Some(image);
        self.update_peak_vm();
        if let Some(top) = self.frames.last() {
            let (f, b) = (top.func, top.block);
            self.record_block(f, b);
        }
        Ok(true)
    }

    fn update_peak_vm(&mut self) {
        self.metrics.peak_vm_bytes = self.metrics.peak_vm_bytes.max(self.mem.resident_bytes());
    }

    /// Reconciles VM residency with the current block's allocation plan:
    /// a *dirty* variable no longer planned for VM is written back, so
    /// later NVM accesses can never observe stale data. Clean copies
    /// stay resident (they agree with NVM) and are evicted lazily only
    /// under capacity pressure — dropping them eagerly would thrash on
    /// caller/callee plan differences. The write-back energy is charged
    /// to the *save* category and counted in `implicit_saves`.
    fn reconcile_residency(&mut self) {
        if self.frames.is_empty() || self.mem.dirty_vars().is_empty() {
            return;
        }
        let plan = self.cur_plan();
        // Common case on dynamic (return) edges: everything dirty is
        // still planned for VM — probe before touching the scratch list.
        if self
            .mem
            .dirty_vars()
            .iter()
            .all(|&v| plan.is_some_and(|p| p.contains(v)))
        {
            return;
        }
        let mut scratch = std::mem::take(&mut self.flush_scratch);
        scratch.clear();
        scratch.extend(
            self.mem
                .dirty_vars()
                .iter()
                .copied()
                .filter(|&v| !plan.is_some_and(|p| p.contains(v))),
        );
        for &v in &scratch {
            let words = self.mem.flush_to_nvm(v);
            let cost = self.table.save_words_cost(words);
            self.charge(cost, ChargeCat::Save);
            self.metrics.implicit_saves += 1;
            if let Some(sh) = self.shadow.as_mut() {
                sh.record_write(v);
            }
        }
        self.flush_scratch = scratch;
    }

    /// Loads `var` into VM, evicting clean copies of variables outside
    /// the current block's plan when the capacity would overflow.
    fn load_with_evict(&mut self, var: VarId) -> Result<usize, EmuError> {
        let words = match self.mem.load_to_vm(var) {
            Err(EmuError::VmOverflow { .. }) => {
                self.evict_clean_outside_plan(var);
                self.mem.load_to_vm(var)
            }
            other => other,
        }?;
        // `words > 0` means real NVM traffic: an already-valid copy is
        // served from VM and touches no NVM home.
        if words > 0 {
            if let Some(sh) = self.shadow.as_mut() {
                sh.record_read(var);
            }
        }
        Ok(words)
    }

    fn evict_clean_outside_plan(&mut self, keep: VarId) {
        let plan = if self.frames.is_empty() {
            None
        } else {
            self.cur_plan()
        };
        for vi in 0..self.im.module.vars.len() {
            let v = VarId::from_usize(vi);
            if v == keep || !self.mem.is_vm_valid(v) || plan.is_some_and(|p| p.contains(v)) {
                continue;
            }
            if !self.mem.is_dirty(v) {
                self.mem.drop_vm(v);
            }
        }
    }

    /// Re-derives the flat index of the top frame's block. Must be
    /// called whenever the top frame's `(func, block)` changes through a
    /// path without a precomputed flat target (return, boot, failure
    /// restore); jumps and calls assign `cur_flat` directly from the
    /// decoded target.
    fn sync_flat(&mut self) {
        if let Some(top) = self.frames.last() {
            self.cur_flat = self.decoded.get().flat_index(top.func, top.block);
        }
    }

    /// The VM allocation set of the block currently executing, as
    /// pre-resolved at decode time (`None` = empty fallback set).
    #[inline]
    fn cur_plan(&self) -> Option<&'a VarSet> {
        self.decoded.get().blocks[self.cur_flat as usize].plan
    }

    fn record_block(&mut self, func: FuncId, block: BlockId) {
        if self.config.record_trace && self.trace.len() < self.config.max_trace {
            self.trace.push((func, block));
        }
    }

    // ----- checkpoint runtime ---------------------------------------------

    fn do_checkpoint(&mut self, id: CheckpointId) -> Result<(), EmuError> {
        let im = self.im;
        let spec: &'a CheckpointSpec = match im.spec(id) {
            Some(s) => s,
            None => {
                return Err(self.trap(TrapKind::MissingCheckpointSpec { id: id.0 }));
            }
        };

        if let CheckpointKind::Guarded { threshold } = spec.kind {
            // Voltage measurement (MEMENTOS).
            self.charge(self.table.cond_check, ChargeCat::Exec);
            let frac = self.power.remaining_fraction();
            if frac >= threshold {
                self.metrics.checkpoints_skipped += 1;
                if self.tracing {
                    self.emit(
                        "checkpoint_skip",
                        vec![
                            ("cp", u64::from(id.0).into()),
                            ("charge_permille", ((frac * 1000.0) as u64).into()),
                        ],
                    );
                }
                return Ok(());
            }
        }

        // Commit: flush data, then snapshot volatile state. If the window
        // expires during the commit, the checkpoint is torn and does not
        // take effect (handled by the caller seeing `pending_failure`).
        let save_words = spec.save_words(&self.im.module);
        let cost = self.table.checkpoint_commit_cost(save_words);
        self.charge(cost, ChargeCat::Save);
        if self.pending_failure {
            if self.tracing {
                self.emit(
                    "checkpoint_torn",
                    vec![
                        ("cp", u64::from(id.0).into()),
                        ("words", (save_words as u64).into()),
                    ],
                );
            }
            return Ok(()); // torn commit: old image stays authoritative
        }
        for &v in &spec.save_vars {
            self.mem.flush_to_nvm(v);
        }
        self.image = Some(Image {
            frames: self.frames.clone(),
            restore_vars: spec.restore_vars.clone(),
            restore_words: spec.restore_words(&self.im.module),
            cp_id: Some(id),
        });
        self.metrics.checkpoints_committed += 1;
        if self.tracing {
            self.emit(
                "checkpoint_commit",
                vec![
                    ("cp", u64::from(id.0).into()),
                    ("words", (save_words as u64).into()),
                ],
            );
        }
        self.committed_since_failure = true;
        self.furthest = 0;
        self.epoch_insts = 0;
        // The commit's own flushes land atomically with the image (a
        // torn commit took effect above as no-op), so they belong to no
        // epoch; the new epoch opens here.
        if let Some(sh) = self.shadow.as_mut() {
            sh.begin_epoch(EpochStart::Checkpoint(id));
        }

        match self.im.policy {
            FailurePolicy::WaitRecharge => {
                self.metrics.sleep_events += 1;
                if self.tracing {
                    self.emit("sleep", vec![("cp", u64::from(id.0).into())]);
                }
                self.power.replenish();
                self.pending_failure = false;
                if self.config.retentive_sleep {
                    // §VII future work: a retentive sleep mode (LPM with
                    // SRAM retention) keeps volatile state alive through
                    // the standby, so nothing is restored on wake-up.
                } else {
                    // Fig. 3: deep sleep loses VM, so everything needed
                    // is restored on wake-up.
                    self.mem.lose_volatile();
                    let cost = self.table.checkpoint_resume_cost(
                        self.image.as_ref().expect("just set").restore_words,
                    );
                    self.charge(cost, ChargeCat::Restore);
                    self.metrics.restores += 1;
                    for &v in &spec.restore_vars {
                        self.load_with_evict(v)?;
                    }
                    if self.tracing {
                        let words = spec.restore_words(&self.im.module) as u64;
                        self.emit(
                            "wakeup",
                            vec![("cp", u64::from(id.0).into()), ("words", words.into())],
                        );
                    }
                }
            }
            FailurePolicy::Rollback => {
                // Execution continues; the checkpoint is also where the
                // allocation may change: drop what leaves VM, load what
                // enters.
                for &v in &spec.save_vars {
                    if !spec.restore_vars.contains(&v) {
                        self.mem.drop_vm(v);
                    }
                }
                let mut migrate_words = 0;
                for &v in &spec.restore_vars {
                    migrate_words += self.load_with_evict(v)?;
                }
                if migrate_words > 0 {
                    let cost = self.table.restore_words_cost(migrate_words);
                    self.charge(cost, ChargeCat::Restore);
                    if self.tracing {
                        self.emit(
                            "migrate",
                            vec![
                                ("cp", u64::from(id.0).into()),
                                ("words", (migrate_words as u64).into()),
                            ],
                        );
                    }
                }
            }
        }
        self.update_peak_vm();
        Ok(())
    }

    // ----- instruction execution -------------------------------------------

    fn trap(&self, kind: TrapKind) -> EmuError {
        let top = self.frames.last().expect("active frame");
        EmuError::Trap {
            kind,
            func: top.func,
            block: top.block,
        }
    }

    fn eval(&self, op: Operand) -> i32 {
        match op {
            Operand::Imm(v) => v,
            Operand::Reg(r) => self.frames.last().expect("active frame").regs[r.index()],
        }
    }

    fn set_reg(&mut self, r: Reg, v: i32) {
        self.frames.last_mut().expect("active frame").regs[r.index()] = v;
    }

    fn ensure_vm_for_read(&mut self, var: VarId) -> Result<(), EmuError> {
        if !self.mem.is_vm_valid(var) {
            let words = self.load_with_evict(var)?;
            let cost = self.table.restore_words_cost(words);
            self.charge(cost, ChargeCat::Restore);
            self.metrics.implicit_restores += 1;
            self.update_peak_vm();
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        dst: Reg,
        var: VarId,
        idx: Option<Operand>,
        class: MemClass,
        base: u32,
        words: u32,
        cpu: Cost,
    ) -> Result<(), EmuError> {
        let value = match class {
            MemClass::Vm => {
                self.ensure_vm_for_read(var)?;
                self.metrics.vm_reads += 1;
                self.charge_exec_mem(cpu, self.costs.vm_read, MemClass::Vm);
                let regs = &self.frames.last().expect("active frame").regs;
                let at = resolve_at(regs, idx, base, words, var).map_err(|k| self.trap(k))?;
                self.mem.vm_read_at(at)
            }
            MemClass::Nvm => {
                self.metrics.nvm_reads += 1;
                self.charge_exec_mem(cpu, self.costs.nvm_read, MemClass::Nvm);
                let regs = &self.frames.last().expect("active frame").regs;
                let at = resolve_at(regs, idx, base, words, var).map_err(|k| self.trap(k))?;
                if let Some(sh) = self.shadow.as_mut() {
                    // Resolved first: an out-of-bounds index traps before
                    // any NVM word is touched.
                    sh.record_read_at(var, at - base as usize);
                }
                self.mem.nvm_read_at(at)
            }
        };
        self.set_reg(dst, value);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store(
        &mut self,
        var: VarId,
        idx: Option<Operand>,
        src: Operand,
        class: MemClass,
        base: u32,
        words: u32,
        cpu: Cost,
    ) -> Result<(), EmuError> {
        let top = self.frames.last().expect("active frame");
        let value = top.eval(src);
        match class {
            MemClass::Vm => {
                if !self.mem.is_vm_valid(var) {
                    if idx.is_none() {
                        // Full scalar overwrite: no restore needed.
                        if let Err(EmuError::VmOverflow { .. }) = self.mem.alloc_vm_uninit(var) {
                            self.evict_clean_outside_plan(var);
                            self.mem.alloc_vm_uninit(var)?;
                        }
                        self.update_peak_vm();
                    } else {
                        self.ensure_vm_for_read(var)?;
                    }
                }
                self.metrics.vm_writes += 1;
                self.charge_exec_mem(cpu, self.costs.vm_write, MemClass::Vm);
                let regs = &self.frames.last().expect("active frame").regs;
                let at = resolve_at(regs, idx, base, words, var).map_err(|k| self.trap(k))?;
                self.mem.vm_write_at(var, at, value);
            }
            MemClass::Nvm => {
                if self.mem.nvm_write_would_clobber(var) {
                    self.metrics.coherence_violations += 1;
                }
                self.metrics.nvm_writes += 1;
                self.charge_exec_mem(cpu, self.costs.nvm_write, MemClass::Nvm);
                let regs = &self.frames.last().expect("active frame").regs;
                let at = resolve_at(regs, idx, base, words, var).map_err(|k| self.trap(k))?;
                if let Some(sh) = self.shadow.as_mut() {
                    // Resolved first: an out-of-bounds index traps before
                    // any NVM word is touched.
                    sh.record_write_at(var, at - base as usize);
                }
                self.mem.nvm_write_at(var, at, value);
            }
        }
        Ok(())
    }
}

#[inline]
fn eval_bin(op: BinOp, lhs: i32, rhs: i32) -> Result<i32, TrapKind> {
    Ok(match op {
        BinOp::Add => lhs.wrapping_add(rhs),
        BinOp::Sub => lhs.wrapping_sub(rhs),
        BinOp::Mul => lhs.wrapping_mul(rhs),
        BinOp::DivS => {
            if rhs == 0 || (lhs == i32::MIN && rhs == -1) {
                return Err(TrapKind::DivisionByZero);
            }
            lhs / rhs
        }
        BinOp::DivU => {
            if rhs == 0 {
                return Err(TrapKind::DivisionByZero);
            }
            ((lhs as u32) / (rhs as u32)) as i32
        }
        BinOp::RemS => {
            if rhs == 0 || (lhs == i32::MIN && rhs == -1) {
                return Err(TrapKind::DivisionByZero);
            }
            lhs % rhs
        }
        BinOp::RemU => {
            if rhs == 0 {
                return Err(TrapKind::DivisionByZero);
            }
            ((lhs as u32) % (rhs as u32)) as i32
        }
        BinOp::And => lhs & rhs,
        BinOp::Or => lhs | rhs,
        BinOp::Xor => lhs ^ rhs,
        BinOp::Shl => lhs.wrapping_shl(rhs as u32),
        BinOp::LShr => ((lhs as u32).wrapping_shr(rhs as u32)) as i32,
        BinOp::AShr => lhs.wrapping_shr(rhs as u32),
    })
}

/// Evaluates an operand against a register file.
#[inline(always)]
pub(crate) fn ev(regs: &[i32], op: Operand) -> i32 {
    match op {
        Operand::Imm(v) => v,
        Operand::Reg(r) => regs[r.index()],
    }
}

/// Resolves a pre-decoded memory access to its flat arena word address:
/// one bounds check against the decode-time variable size, then
/// `base + idx` (see `DInst::Load`).
#[inline(always)]
pub(crate) fn resolve_at(
    regs: &[i32],
    idx: Option<Operand>,
    base: u32,
    words: u32,
    var: VarId,
) -> Result<usize, TrapKind> {
    let i = match idx {
        None => 0i64,
        Some(o) => i64::from(ev(regs, o)),
    };
    if i < 0 || i as u64 >= u64::from(words) {
        return Err(TrapKind::IndexOutOfBounds {
            var,
            index: i,
            words: words as usize,
        });
    }
    Ok(base as usize + i as usize)
}

/// Executes one fused (pure, trap-impossible) instruction directly on a
/// register file. Only the five register-op variants can appear inside a
/// superblock (see `DInst::is_fusable`). `inline(always)` keeps the
/// dispatch match inside the superblock run loops — as a standalone call
/// it showed up at ~25% of emulator CPU time in profiles.
#[inline(always)]
pub(crate) fn exec_pure(di: &DInst, regs: &mut [i32]) {
    match *di {
        DInst::Bin { dst, op, lhs, rhs } => {
            let (l, r) = (ev(regs, lhs), ev(regs, rhs));
            regs[dst.index()] = eval_bin(op, l, r).expect("fused ops cannot trap");
        }
        DInst::Cmp { dst, op, lhs, rhs } => {
            regs[dst.index()] = i32::from(op.eval(ev(regs, lhs), ev(regs, rhs)));
        }
        DInst::Un { dst, op, src } => {
            let s = ev(regs, src);
            regs[dst.index()] = match op {
                UnOp::Neg => s.wrapping_neg(),
                UnOp::Not => !s,
            };
        }
        DInst::Copy { dst, src } => regs[dst.index()] = ev(regs, src),
        DInst::Select {
            dst,
            cond,
            then_val,
            else_val,
        } => {
            regs[dst.index()] = if ev(regs, cond) != 0 {
                ev(regs, then_val)
            } else {
                ev(regs, else_val)
            };
        }
        _ => unreachable!("non-fusable instruction inside a superblock"),
    }
}

/// Executes the body of one fusable block whose VM residency has been
/// established by the prep pass: pure arena data movement with no
/// residency checks, no per-access frame re-acquisition and no charging
/// (all Exec accounting for the enclosing trace is a decode-time
/// constant committed by the caller). `clobbers` receives NVM writes
/// that would discard dirty VM data (`Metrics::coherence_violations`).
fn run_body(
    db: &crate::decoded::DecodedBlock<'_>,
    regs: &mut [i32],
    mem: &mut Memory,
    clobbers: &mut u64,
) -> Result<(), TrapKind> {
    let insts = &db.insts;
    let n = insts.len();
    let mut ip = 0usize;
    while ip < n {
        let run = db.fuse_len[ip] as usize;
        if run > 0 {
            for di in &insts[ip..ip + run] {
                exec_pure(di, regs);
            }
            ip += run;
            continue;
        }
        match insts[ip] {
            DInst::Load {
                dst,
                var,
                idx,
                class,
                base,
                words,
            } => {
                let at = resolve_at(regs, idx, base, words, var)?;
                regs[dst.index()] = match class {
                    MemClass::Vm => mem.vm_read_at(at),
                    MemClass::Nvm => mem.nvm_read_at(at),
                };
            }
            DInst::Store {
                var,
                idx,
                src,
                class,
                base,
                words,
            } => {
                let at = resolve_at(regs, idx, base, words, var)?;
                let value = ev(regs, src);
                match class {
                    MemClass::Vm => mem.vm_write_at(var, at, value),
                    MemClass::Nvm => {
                        if mem.nvm_write_would_clobber(var) {
                            *clobbers += 1;
                        }
                        mem.nvm_write_at(var, at, value);
                    }
                }
            }
            _ => unreachable!("non-fusable instruction in a fusable block"),
        }
        ip += 1;
    }
    Ok(())
}

impl<'a> Machine<'a> {
    fn step(&mut self) -> Result<Step, EmuError> {
        // Fused dispatch: execute a whole trace superblock — or at least
        // the current block — plus its final terminator as one step,
        // when every instruction is pure or a plain load/store and the
        // worst-case bound `ub_cost` proves that no power failure,
        // cycle-limit edge, or re-execution category flip can land
        // inside it. `ub_cost` covers the largest implicit-restore
        // charge every VM access could trigger, so the proof holds for
        // any dynamic memory state; the strict `<` on the re-execution
        // side keeps the last terminator's charge in the same category
        // as the instructions'. Near a failure the trace guard fails
        // first, then the single-block guard, then execution falls back
        // to per-instruction stepping — the fall-back-near-failure
        // ladder that keeps metrics bit-identical across tiers.
        // Shadow/trace modes run at `ExecTier::Interp` so the recorder
        // sees the true access order.
        //
        // The loop keeps execution *resident*: when a fused step lands
        // on another fusable head (the common case — a hot loop whose
        // back edge re-enters its own trace), the next trace dispatches
        // immediately instead of bouncing through `run`'s outer loop.
        // Staying resident is invisible to the outcome: the run-loop
        // limit checks cannot fire between fused steps (the guard
        // already bounds `active_cycles`, and failures exit the loop).
        if self.tier >= ExecTier::Fused {
            while self.frames.last().expect("active frame").ip == 0 {
                let db = &self.decoded.get().blocks[self.cur_flat as usize];
                if !db.fusable {
                    break;
                }
                // Multi-block traces skip intermediate `jump`s, so path
                // recording falls back to single-block units — and a
                // non-resident dispatch never consults the trace at
                // all, so it skips straight to the lean block path.
                let resident = self.tier >= ExecTier::Trace && !self.config.record_trace;
                let s = if resident {
                    let ti = db
                        .trace_info
                        .as_ref()
                        .expect("fusable blocks carry a trace");
                    let multi = ti.blocks.len() > 1;
                    if multi && self.fused_guard(ti.fused.ub_cost.cycles, ti.insts) {
                        self.step_trace(ti.blocks.len())?
                    } else if self.fused_guard(db.fused.ub_cost.cycles, db.insts.len() as u64) {
                        // A single-block dispatch at Trace+ can still
                        // stay resident (superloop back edges, trace
                        // transitions), so it takes the general path.
                        self.step_trace(1)?
                    } else {
                        break;
                    }
                } else if self.fused_guard(db.fused.ub_cost.cycles, db.insts.len() as u64) {
                    self.step_block_unit()?
                } else {
                    break;
                };
                if matches!(s, Step::Finished(_)) {
                    return Ok(s);
                }
                // Edge reconciliation after the final jump may cross the
                // power window (it is not covered by `ub_cost`, and need
                // not be: it lands at the step boundary in both modes).
                if self.pending_failure {
                    self.pending_failure = false;
                    return Ok(Step::Failure);
                }
            }
        }

        let ip = self.frames.last().expect("active frame").ip;
        let db = &self.decoded.get().blocks[self.cur_flat as usize];
        if ip < db.insts.len() {
            // Superblock fast path: retire the whole fusable run with a
            // single charge when nothing observable can land inside it —
            // no power failure (headroom), no cycle-limit edge, and no
            // computation/re-execution category flip. Each guard is a
            // monotone-prefix argument: if the total fits, so does every
            // prefix, so per-instruction stepping would behave
            // identically (same failure points, same metrics, bit for
            // bit) — just with n times the bookkeeping.
            let n = db.fuse_len[ip] as usize;
            if n >= 2 {
                let total = db.fuse_cost[ip];
                if self.power.headroom(total.cycles)
                    && self.metrics.active_cycles + total.cycles <= self.config.max_active_cycles
                    && (self.epoch_insts >= self.furthest
                        || self.epoch_insts + n as u64 <= self.furthest)
                {
                    let frame = self.frames.last_mut().expect("active frame");
                    for di in &db.insts[ip..ip + n] {
                        exec_pure(di, &mut frame.regs);
                    }
                    frame.ip = ip + n;
                    // One aggregate charge (integer sums equal the
                    // per-instruction sums exactly).
                    self.metrics.active_cycles += total.cycles;
                    self.metrics.cpu_energy += total.energy;
                    if self.epoch_insts < self.furthest {
                        self.metrics.reexecution += total.energy;
                    } else {
                        self.metrics.computation += total.energy;
                    }
                    self.metrics.insts_retired += n as u64;
                    self.epoch_insts += n as u64;
                    let failed = self.power.advance(total.cycles);
                    debug_assert!(!failed, "fused superblock must fit the power window");
                    return Ok(Step::Continue);
                }
            }
            // Direct-threaded dispatch: the decode-time-selected handler
            // for this instruction, no opcode re-match.
            let di = db.insts[ip];
            let cost = db.costs[ip];
            let op = db.ops[ip];
            self.frames.last_mut().expect("active frame").ip += 1;
            op(self, di, cost)?;
            self.metrics.insts_retired += 1;
            self.epoch_insts += 1;
        } else {
            let term = db.term;
            let cost = db.term_cost;
            self.charge_exec_cpu(cost);
            if let Step::Finished(v) = self.apply_term(term) {
                return Ok(Step::Finished(v));
            }
        }

        if self.pending_failure {
            self.pending_failure = false;
            return Ok(Step::Failure);
        }
        Ok(Step::Continue)
    }

    /// The fall-back-near-failure guard for a fused unit (single block
    /// or whole trace) with worst-case cycle bound `ub_cycles` and `n`
    /// instructions: dispatch fused only when no power failure, no
    /// cycle-limit edge and no computation/re-execution category flip
    /// can land inside. Each condition is a monotone-prefix argument —
    /// if the total fits, so does every prefix — so per-instruction
    /// stepping would behave bit-identically.
    #[inline]
    fn fused_guard(&self, ub_cycles: u64, n: u64) -> bool {
        self.power.headroom(ub_cycles)
            && self.metrics.active_cycles + ub_cycles <= self.config.max_active_cycles
            && (self.epoch_insts >= self.furthest || self.epoch_insts + n < self.furthest)
    }

    /// Handles a VM-residency miss found by a trace's prep pass, with
    /// full `&mut self` available (the body loops pin disjoint field
    /// borrows and cannot call back in). The charge order matches
    /// per-instruction execution: the restore lands before the access's
    /// exec charge either way, and all sums commute within the step.
    fn run_cold(&mut self, p: crate::decoded::PrepOp) -> Result<(), EmuError> {
        match p.kind {
            crate::decoded::PrepKind::Restore => self.ensure_vm_for_read(p.var),
            crate::decoded::PrepKind::AllocScalar => {
                if let Err(EmuError::VmOverflow { .. }) = self.mem.alloc_vm_uninit(p.var) {
                    self.evict_clean_outside_plan(p.var);
                    self.mem.alloc_vm_uninit(p.var)?;
                }
                self.update_peak_vm();
                Ok(())
            }
        }
    }

    /// Executes the terminator of the current block: transfers control
    /// (the cost has already been charged, standalone or as part of a
    /// fused bundle) and reports completion on a final `ret`.
    fn apply_term(&mut self, term: DTerm) -> Step {
        match term {
            DTerm::Br {
                target,
                flat,
                reconcile,
            } => self.jump(target, flat, reconcile),
            DTerm::CondBr {
                cond,
                then_bb,
                then_flat,
                then_reconcile,
                else_bb,
                else_flat,
                else_reconcile,
            } => {
                if self.eval(cond) != 0 {
                    self.jump(then_bb, then_flat, then_reconcile);
                } else {
                    self.jump(else_bb, else_flat, else_reconcile);
                }
            }
            DTerm::Ret(v) => {
                let value = v.map(|o| self.eval(o));
                if self.frames.len() == 1 {
                    self.frames.last_mut().expect("frame").ip = usize::MAX; // defensive
                    return Step::Finished(value);
                }
                let done = self.frames.pop().expect("frame");
                if let (Some(dst), Some(val)) = (done.ret_dst, value) {
                    self.set_reg(dst, val);
                }
                self.reg_pool.push(done.regs);
                self.sync_flat();
                self.reconcile_residency();
            }
        }
        Step::Continue
    }

    /// Executes one fusable block — prep pass, checkless body, final
    /// terminator — as a single step and commits its decode-time
    /// [`FusedCosts`](crate::decoded::FusedCosts) bundle directly.
    ///
    /// Semantically identical to `step_trace(1)` for a dispatch that
    /// cannot stay resident (`ExecTier::Fused`, or path recording at
    /// any tier): with no superloop round, no trace transition and no
    /// tape to consult, the general machinery's per-dispatch setup —
    /// trace facts, back-edge inspection, the unit tally and its
    /// `Σ count × bundle` commit — collapses to a single bundle add,
    /// and paying it anyway is pure overhead. Profiling runs record
    /// paths and therefore dispatch single blocks millions of times;
    /// this lean path is what keeps them at block-dispatch speed.
    fn step_block_unit(&mut self) -> Result<Step, EmuError> {
        let flat = self.cur_flat as usize;
        let mut prep_pos = 0usize;
        loop {
            let mut cold: Option<crate::decoded::PrepOp> = None;
            let mut trapped: Option<TrapKind> = None;
            {
                let d = self.decoded.get();
                let db = &d.blocks[flat];
                let frame = self.frames.last_mut().expect("active frame");
                let mem = &mut self.mem;
                let clobbers = &mut self.metrics.coherence_violations;
                // Prep: establish VM residency for the block's accesses,
                // charging implicit restores exactly where
                // per-instruction execution would (at first access).
                while prep_pos < db.prep.len() {
                    let p = db.prep[prep_pos];
                    if mem.is_vm_valid(p.var) {
                        prep_pos += 1;
                        continue;
                    }
                    cold = Some(p);
                    break;
                }
                if cold.is_none() {
                    if let Err(k) = run_body(db, &mut frame.regs, mem, clobbers) {
                        trapped = Some(k);
                    }
                }
            }
            if let Some(k) = trapped {
                return Err(self.trap(k));
            }
            match cold {
                None => break,
                Some(p) => {
                    self.run_cold(p)?;
                    prep_pos += 1;
                }
            }
        }
        let d = self.decoded.get();
        let db = &d.blocks[flat];
        let f = db.fused;
        let n = db.insts.len() as u64;
        let term = db.term;
        self.metrics.active_cycles += f.exec_cost.cycles;
        if self.epoch_insts < self.furthest {
            self.metrics.reexecution += f.exec_cost.energy;
        } else {
            self.metrics.computation += f.exec_cost.energy;
        }
        self.metrics.cpu_energy += f.cpu_energy;
        self.metrics.vm_access_energy += f.vm_energy;
        self.metrics.nvm_access_energy += f.nvm_energy;
        self.metrics.vm_reads += u64::from(f.vm_reads);
        self.metrics.vm_writes += u64::from(f.vm_writes);
        self.metrics.nvm_reads += u64::from(f.nvm_reads);
        self.metrics.nvm_writes += u64::from(f.nvm_writes);
        self.metrics.insts_retired += n;
        self.epoch_insts += n;
        let failed = self.power.advance(f.exec_cost.cycles);
        debug_assert!(!failed, "fused block must fit the power window");
        Ok(self.apply_term(term))
    }

    /// Executes the first `len` blocks of the trace headed at the
    /// current block — every instruction and terminator — as a single
    /// step. The caller has already proven (via the trace's aggregate
    /// `ub_cost`) that nothing observable can land mid-trace, so all
    /// Exec-category accounting is a decode-time constant committed
    /// once: one power advance, one category add. Per block, a prep
    /// pass establishes VM residency for every variable the body
    /// touches (charging implicit restores exactly where per-instruction
    /// execution would, at first access), after which the body loop is
    /// checkless; interior `Br` edges are fall-throughs whose
    /// bookkeeping reduces to advancing the frame's block. A mid-trace
    /// trap aborts the whole run, so per-instruction stepping would
    /// produce bit-identical results.
    ///
    /// At [`ExecTier::Trace`] and above the dispatch is *resident*: it
    /// stays inside this call across loop rounds (the trace's final
    /// `CondBr` re-entering the trace, priced by suffix bundles) and
    /// across trace transitions (a reconcile-free exit edge landing on
    /// another fusable trace head), re-applying the same guard `step`
    /// would before each unit. Completed units are tallied per
    /// `(head, entry position)` and committed as `Σ count × bundle` at
    /// the end — bit-identical to committing each unit separately,
    /// because every accounting field is an integer, the category is
    /// uniform across the tally (the strict re-execution guard refuses
    /// any unit that would cross `furthest`), and each unit's prep pass
    /// re-checks VM residency so no restore charge is skipped. Path
    /// recording needs the per-edge `jump`, so `record_trace` keeps
    /// single-unit dispatch.
    ///
    /// At [`ExecTier::Aot`], a full-length trace whose head has been
    /// dispatched [`RunConfig::aot_threshold`] times is lowered once to
    /// a micro-op tape and executed from that thereafter (see
    /// [`crate::aot`]).
    fn step_trace(&mut self, init_len: usize) -> Result<Step, EmuError> {
        let mut head = self.cur_flat as usize;
        let mut len = init_len;
        let superloop = self.tier >= ExecTier::Trace && !self.config.record_trace;
        /// Tally entries stop growing past this; a commit is forced
        /// instead (re-dispatch continues the work). Keeps the
        /// per-round tally bump O(small) on pathological CFGs, and
        /// small enough that the tally lives on the stack — short
        /// dispatches (a single block under periodic power or path
        /// recording) must not pay a heap allocation per step.
        const TALLY_CAP: usize = 16;
        /// `pos` tally value for a downgraded single-block dispatch of
        /// a longer trace (priced by the head block's own bundle, not a
        /// trace suffix).
        const POS_SINGLE: u32 = u32::MAX;

        // One usable re-entry edge of the current trace's final
        // terminator, with the decode-time facts the round guard needs.
        #[derive(Clone, Copy)]
        struct ReEntry {
            bb: BlockId,
            flat: u32,
            pos: usize,
            exec: u64,
            ub: u64,
            n: u64,
        }

        // Exec cycles / instructions of all completed units (committed
        // after the loops), the per-key unit counts, and the unit in
        // progress. All of it persists across cold-retry iterations.
        let mut v_cycles: u64 = 0;
        let mut v_insts: u64 = 0;
        let mut tally = [(0u32, 0u32, 0u64); TALLY_CAP]; // (head, pos, count)
        let mut tally_len = 0usize;
        let (mut cur_exec, mut cur_n, mut cur_key) = {
            let d = self.decoded.get();
            let ti = d.blocks[head]
                .trace_info
                .as_ref()
                .expect("dispatched head carries a trace");
            if len == ti.blocks.len() {
                (ti.fused.exec_cost.cycles, ti.insts, (head as u32, 0u32))
            } else {
                let db = &d.blocks[head];
                (
                    db.fused.exec_cost.cycles,
                    db.insts.len() as u64,
                    (head as u32, POS_SINGLE),
                )
            }
        };
        let mut pos = 0usize; // block position within the trace
        let mut prep_pos = 0usize; // prep progress within current block
                                   // Set once a full round over a prep-stable trace completes:
                                   // nothing in such a trace can drop a prepped VM copy, so later
                                   // rounds skip the per-block residency rescan entirely.
        let mut prepped = false;
        loop {
            let mut cold: Option<crate::decoded::PrepOp> = None;
            let mut trapped: Option<TrapKind> = None;
            {
                // Disjoint field borrows pinned for the whole hot scope:
                // the decoded program (shared), the top frame's
                // registers, the memory arenas and the clobber counter.
                let d = self.decoded.get();
                let frame = self.frames.last_mut().expect("active frame");
                let mem = &mut self.mem;
                let clobbers = &mut self.metrics.coherence_violations;
                'heads: loop {
                    let ti = d.blocks[head]
                        .trace_info
                        .as_ref()
                        .expect("dispatched head carries a trace");
                    let full = len == ti.blocks.len();
                    // Once the lowering exists, dispatch through it
                    // without any count bookkeeping; until then, count
                    // dispatches of the full trace toward the AOT
                    // threshold.
                    let aot = if self.tier == ExecTier::Aot && full {
                        match d.blocks[head].aot.get() {
                            Some(a) => Some(a),
                            None => {
                                let count = self.exec_counts[head].saturating_add(1);
                                self.exec_counts[head] = count;
                                (count >= self.config.aot_threshold).then(|| {
                                    d.blocks[head]
                                        .aot
                                        .get_or_init(|| crate::aot::lower_trace(d, ti))
                                })
                            }
                        }
                    } else {
                        None
                    };
                    // Conditional back edges usable by the superloop. A
                    // downgraded dispatch ends at the head, whose
                    // terminator is the trace's interior `Br` — never a
                    // `CondBr` — so it gets no back edges.
                    let back = if superloop && full {
                        match d.blocks[ti.blocks[len - 1] as usize].term {
                            DTerm::CondBr {
                                cond,
                                then_bb,
                                then_flat,
                                else_bb,
                                else_flat,
                                ..
                            } => {
                                let mk = |re: Option<u32>, bb: BlockId, flat: u32| {
                                    let p = re? as usize;
                                    let s = &ti.suffix[p];
                                    Some(ReEntry {
                                        bb,
                                        flat,
                                        pos: p,
                                        exec: s.exec_cost.cycles,
                                        ub: s.ub_cost.cycles,
                                        n: ti.suffix_insts[p],
                                    })
                                };
                                Some((
                                    cond,
                                    mk(ti.re_then, then_bb, then_flat),
                                    mk(ti.re_else, else_bb, else_flat),
                                ))
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    'rounds: loop {
                        while pos < len {
                            let flat = ti.blocks[pos] as usize;
                            let db = &d.blocks[flat];
                            // Prep: establish VM residency for the
                            // block's accesses; a miss defers to the
                            // cold handler below. Skipped after the
                            // first round of a prep-stable trace.
                            if !prepped {
                                while prep_pos < db.prep.len() {
                                    let p = db.prep[prep_pos];
                                    if mem.is_vm_valid(p.var) {
                                        prep_pos += 1;
                                        continue;
                                    }
                                    cold = Some(p);
                                    break;
                                }
                                if cold.is_some() {
                                    break 'heads;
                                }
                            }
                            let body = match aot {
                                Some(at) => at.segs[pos].run(&mut frame.regs, mem, clobbers),
                                None => run_body(db, &mut frame.regs, mem, clobbers),
                            };
                            if let Err(k) = body {
                                trapped = Some(k);
                                break 'heads;
                            }
                            pos += 1;
                            prep_pos = 0;
                            if pos < len {
                                // Interior edge: an unconditional,
                                // reconcile-free branch — fall through
                                // to the next member.
                                let DTerm::Br { target, flat, .. } = db.term else {
                                    unreachable!(
                                        "interior trace edge must be an unconditional branch"
                                    );
                                };
                                frame.block = target;
                                frame.ip = 0;
                                self.cur_flat = flat;
                            }
                        }
                        // Unit completed: tally it under its key.
                        v_cycles += cur_exec;
                        v_insts += cur_n;
                        match tally[..tally_len]
                            .iter_mut()
                            .find(|t| (t.0, t.1) == cur_key)
                        {
                            Some(t) => t.2 += 1,
                            None => {
                                tally[tally_len] = (cur_key.0, cur_key.1, 1);
                                tally_len += 1;
                            }
                        }
                        if tally_len >= TALLY_CAP {
                            break 'heads;
                        }
                        // A completed full round establishes residency
                        // for every member; stability keeps it.
                        prepped = full && ti.prep_stable;
                        // Does the final terminator re-enter this trace?
                        if let Some((cond, re_then, re_else)) = back {
                            let edge = if ev(&frame.regs, cond) != 0 {
                                re_then
                            } else {
                                re_else
                            };
                            if let Some(r) = edge {
                                // Guard for the next round: exactly the
                                // check `step` would apply after
                                // committing the units so far.
                                let v_epoch = self.epoch_insts + v_insts;
                                if self.power.headroom(v_cycles + r.ub)
                                    && self.metrics.active_cycles + v_cycles + r.ub
                                        <= self.config.max_active_cycles
                                    && (v_epoch >= self.furthest || v_epoch + r.n < self.furthest)
                                {
                                    // Take the back edge (reconcile-free
                                    // by decode-time construction) and
                                    // run the suffix round.
                                    frame.block = r.bb;
                                    frame.ip = 0;
                                    self.cur_flat = r.flat;
                                    pos = r.pos;
                                    prep_pos = 0;
                                    cur_exec = r.exec;
                                    cur_n = r.n;
                                    cur_key = (head as u32, r.pos as u32);
                                    // Resident rounds count toward the
                                    // AOT threshold too: without this, a
                                    // trace entered once that loops via
                                    // its own back edge (the common case
                                    // for a single hot fusable block
                                    // behind a conditional branch) would
                                    // never get lowered. Crossing the
                                    // threshold re-enters `'heads`, which
                                    // builds the tape and dispatches the
                                    // remaining rounds through it —
                                    // bit-identical by construction, so
                                    // the switch point is unobservable.
                                    if aot.is_none() && self.tier == ExecTier::Aot {
                                        let count = self.exec_counts[head].saturating_add(1);
                                        self.exec_counts[head] = count;
                                        if count >= self.config.aot_threshold {
                                            continue 'heads;
                                        }
                                    }
                                    continue 'rounds;
                                }
                            }
                        }
                        // Trace transition: a reconcile-free exit edge
                        // onto another fusable trace head stays
                        // resident, re-applying the dispatch guard with
                        // the target's full-trace bundle.
                        if !superloop {
                            break 'heads;
                        }
                        let last = if full {
                            ti.blocks[len - 1] as usize
                        } else {
                            head
                        };
                        let (t_bb, t_flat) = match d.blocks[last].term {
                            DTerm::Br {
                                target,
                                flat,
                                reconcile: false,
                            } => (target, flat),
                            DTerm::CondBr {
                                cond,
                                then_bb,
                                then_flat,
                                then_reconcile,
                                else_bb,
                                else_flat,
                                else_reconcile,
                            } => {
                                let (bb, flat, rec) = if ev(&frame.regs, cond) != 0 {
                                    (then_bb, then_flat, then_reconcile)
                                } else {
                                    (else_bb, else_flat, else_reconcile)
                                };
                                if rec {
                                    break 'heads;
                                }
                                (bb, flat)
                            }
                            _ => break 'heads,
                        };
                        let db2 = &d.blocks[t_flat as usize];
                        if !db2.fusable {
                            break 'heads;
                        }
                        let ti2 = db2.trace_info.as_ref().expect("fusable head has a trace");
                        let v_epoch = self.epoch_insts + v_insts;
                        let ub2 = ti2.fused.ub_cost.cycles;
                        if !(self.power.headroom(v_cycles + ub2)
                            && self.metrics.active_cycles + v_cycles + ub2
                                <= self.config.max_active_cycles
                            && (v_epoch >= self.furthest || v_epoch + ti2.insts < self.furthest))
                        {
                            break 'heads;
                        }
                        frame.block = t_bb;
                        frame.ip = 0;
                        self.cur_flat = t_flat;
                        head = t_flat as usize;
                        len = ti2.blocks.len();
                        pos = 0;
                        prep_pos = 0;
                        prepped = false;
                        cur_exec = ti2.fused.exec_cost.cycles;
                        cur_n = ti2.insts;
                        cur_key = (head as u32, 0);
                        continue 'heads;
                    }
                }
            }
            if let Some(k) = trapped {
                return Err(self.trap(k));
            }
            match cold {
                None => break,
                Some(p) => {
                    // cur_flat already tracks the faulting block, so the
                    // eviction policy consults the right plan.
                    self.run_cold(p)?;
                    prep_pos += 1;
                }
            }
        }

        // Commit the precomputed Exec accounting, `Σ count × bundle`
        // over the tally (identical sums to per-instruction charges;
        // the category is constant by the guard in `step` and uniform
        // across units by the resident guards).
        struct Tot {
            exec_e: u64,
            cpu: u64,
            vm: u64,
            nvm: u64,
            vr: u64,
            vw: u64,
            nr: u64,
            nw: u64,
        }
        impl Tot {
            fn add(&mut self, f: &crate::decoded::FusedCosts, k: u64) {
                self.exec_e += k * f.exec_cost.energy.0;
                self.cpu += k * f.cpu_energy.0;
                self.vm += k * f.vm_energy.0;
                self.nvm += k * f.nvm_energy.0;
                self.vr += k * u64::from(f.vm_reads);
                self.vw += k * u64::from(f.vm_writes);
                self.nr += k * u64::from(f.nvm_reads);
                self.nw += k * u64::from(f.nvm_writes);
            }
        }
        let d = self.decoded.get();
        let mut tot = Tot {
            exec_e: 0,
            cpu: 0,
            vm: 0,
            nvm: 0,
            vr: 0,
            vw: 0,
            nr: 0,
            nw: 0,
        };
        for &(h, p, count) in &tally[..tally_len] {
            let bundle = if p == POS_SINGLE {
                &d.blocks[h as usize].fused
            } else {
                &d.blocks[h as usize]
                    .trace_info
                    .as_ref()
                    .expect("tallied head carries a trace")
                    .suffix[p as usize]
            };
            tot.add(bundle, count);
        }
        let ti = d.blocks[head].trace_info.as_ref().expect("trace head");
        let last_flat = if len == ti.blocks.len() {
            ti.blocks[len - 1] as usize
        } else {
            head
        };
        let term = d.blocks[last_flat].term;
        self.metrics.active_cycles += v_cycles;
        if self.epoch_insts < self.furthest {
            self.metrics.reexecution += Energy(tot.exec_e);
        } else {
            self.metrics.computation += Energy(tot.exec_e);
        }
        self.metrics.cpu_energy += Energy(tot.cpu);
        self.metrics.vm_access_energy += Energy(tot.vm);
        self.metrics.nvm_access_energy += Energy(tot.nvm);
        self.metrics.vm_reads += tot.vr;
        self.metrics.vm_writes += tot.vw;
        self.metrics.nvm_reads += tot.nr;
        self.metrics.nvm_writes += tot.nw;
        self.metrics.insts_retired += v_insts;
        self.epoch_insts += v_insts;
        let failed = self.power.advance(v_cycles);
        debug_assert!(!failed, "fused trace must fit the power window");
        Ok(self.apply_term(term))
    }

    /// Transfers control to `target` (flat index `flat`). `reconcile`
    /// is the edge's precomputed flag (see [`DTerm`]): `false` proves
    /// the residency flush set is empty, so the walk is skipped.
    fn jump(&mut self, target: BlockId, flat: u32, reconcile: bool) {
        let top = self.frames.last_mut().expect("active frame");
        top.block = target;
        top.ip = 0;
        let (f, b) = (top.func, top.block);
        self.cur_flat = flat;
        self.record_block(f, b);
        if reconcile {
            self.reconcile_residency();
        }
    }
}

// ----- direct-threaded instruction handlers -----------------------------
//
// One free function per `DInst` variant, selected once at decode time
// (`op_for`) and stored per instruction in `DecodedBlock::ops`. The
// per-instruction step path calls straight through the function pointer —
// the big opcode match runs once per program, not once per step.

/// A direct-threaded instruction handler (see [`op_for`]).
pub(crate) type OpFn = for<'m, 'a> fn(&'m mut Machine<'a>, DInst, Cost) -> Result<(), EmuError>;

/// Selects the handler for one decoded instruction.
pub(crate) fn op_for(di: &DInst) -> OpFn {
    match di {
        DInst::Bin { .. } => op_bin,
        DInst::Cmp { .. } => op_cmp,
        DInst::Un { .. } => op_un,
        DInst::Copy { .. } => op_copy,
        DInst::Select { .. } => op_select,
        DInst::Load { .. } => op_load,
        DInst::Store { .. } => op_store,
        DInst::Call { .. } => op_call,
        DInst::Checkpoint { .. } => op_checkpoint,
        DInst::CondCheckpoint { .. } => op_cond_checkpoint,
        DInst::SaveVar { .. } => op_savevar,
        DInst::RestoreVar { .. } => op_restorevar,
    }
}

fn op_bin(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::Bin { dst, op, lhs, rhs } = di else {
        unreachable!("op_bin dispatched on a non-Bin instruction")
    };
    m.charge_exec_cpu(cost);
    let top = m.frames.last().expect("active frame");
    let (l, r) = (top.eval(lhs), top.eval(rhs));
    let v = eval_bin(op, l, r).map_err(|k| m.trap(k))?;
    m.set_reg(dst, v);
    Ok(())
}

fn op_cmp(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::Cmp { dst, op, lhs, rhs } = di else {
        unreachable!("op_cmp dispatched on a non-Cmp instruction")
    };
    m.charge_exec_cpu(cost);
    let top = m.frames.last_mut().expect("active frame");
    let v = op.eval(top.eval(lhs), top.eval(rhs));
    top.regs[dst.index()] = i32::from(v);
    Ok(())
}

fn op_un(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::Un { dst, op, src } = di else {
        unreachable!("op_un dispatched on a non-Un instruction")
    };
    m.charge_exec_cpu(cost);
    let top = m.frames.last_mut().expect("active frame");
    let s = top.eval(src);
    let v = match op {
        UnOp::Neg => s.wrapping_neg(),
        UnOp::Not => !s,
    };
    top.regs[dst.index()] = v;
    Ok(())
}

fn op_copy(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::Copy { dst, src } = di else {
        unreachable!("op_copy dispatched on a non-Copy instruction")
    };
    m.charge_exec_cpu(cost);
    let top = m.frames.last_mut().expect("active frame");
    let v = top.eval(src);
    top.regs[dst.index()] = v;
    Ok(())
}

fn op_select(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::Select {
        dst,
        cond,
        then_val,
        else_val,
    } = di
    else {
        unreachable!("op_select dispatched on a non-Select instruction")
    };
    m.charge_exec_cpu(cost);
    let top = m.frames.last_mut().expect("active frame");
    let v = if top.eval(cond) != 0 {
        top.eval(then_val)
    } else {
        top.eval(else_val)
    };
    top.regs[dst.index()] = v;
    Ok(())
}

fn op_load(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::Load {
        dst,
        var,
        idx,
        class,
        base,
        words,
    } = di
    else {
        unreachable!("op_load dispatched on a non-Load instruction")
    };
    m.exec_load(dst, var, idx, class, base, words, cost)
}

fn op_store(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::Store {
        var,
        idx,
        src,
        class,
        base,
        words,
    } = di
    else {
        unreachable!("op_store dispatched on a non-Store instruction")
    };
    m.exec_store(var, idx, src, class, base, words, cost)
}

fn op_call(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::Call {
        dst,
        func,
        args_start,
        args_end,
        n_regs,
        entry,
        entry_flat,
        reconcile,
    } = di
    else {
        unreachable!("op_call dispatched on a non-Call instruction")
    };
    m.charge_exec_cpu(cost);
    if m.frames.len() >= m.config.max_stack {
        return Err(m.trap(TrapKind::StackOverflow {
            limit: m.config.max_stack,
        }));
    }
    let mut regs = m.reg_pool.pop().unwrap_or_default();
    regs.clear();
    regs.resize(n_regs as usize, 0);
    {
        let d = m.decoded.get();
        let args = &d.call_args[args_start as usize..args_end as usize];
        for (i, a) in args.iter().enumerate() {
            regs[i] = m.eval(*a);
        }
    }
    m.frames.push(Frame {
        func,
        block: entry,
        ip: 0,
        regs,
        ret_dst: dst,
    });
    m.cur_flat = entry_flat;
    m.record_block(func, entry);
    if reconcile {
        m.reconcile_residency();
    }
    Ok(())
}

fn op_checkpoint(m: &mut Machine<'_>, di: DInst, _cost: Cost) -> Result<(), EmuError> {
    let DInst::Checkpoint { id } = di else {
        unreachable!("op_checkpoint dispatched on a non-Checkpoint instruction")
    };
    m.do_checkpoint(id)
}

fn op_cond_checkpoint(m: &mut Machine<'_>, di: DInst, cost: Cost) -> Result<(), EmuError> {
    let DInst::CondCheckpoint { id, period } = di else {
        unreachable!("op_cond_checkpoint dispatched on a non-CondCheckpoint instruction")
    };
    // NVM iteration counter: increments survive failures.
    let ctr = &mut m.cond_counters[id.index()];
    *ctr += 1;
    let fire = (*ctr).is_multiple_of(period as u64);
    m.charge(cost, ChargeCat::Exec);
    if fire {
        m.do_checkpoint(id)?;
    }
    Ok(())
}

fn op_savevar(m: &mut Machine<'_>, di: DInst, _cost: Cost) -> Result<(), EmuError> {
    let DInst::SaveVar { var } = di else {
        unreachable!("op_savevar dispatched on a non-SaveVar instruction")
    };
    if m.mem.is_vm_valid(var) && m.mem.is_dirty(var) {
        let words = m.mem.flush_to_nvm(var);
        let cost = m.table.save_words_cost(words);
        m.charge(cost, ChargeCat::Save);
        if let Some(sh) = m.shadow.as_mut() {
            sh.record_write(var);
        }
    }
    Ok(())
}

fn op_restorevar(m: &mut Machine<'_>, di: DInst, _cost: Cost) -> Result<(), EmuError> {
    let DInst::RestoreVar { var } = di else {
        unreachable!("op_restorevar dispatched on a non-RestoreVar instruction")
    };
    if m.mem.is_vm_valid(var) {
        // Validity guard only.
        m.charge(m.table.cond_check, ChargeCat::Exec);
    } else {
        let words = m.load_with_evict(var)?;
        let cost = m.table.restore_words_cost(words);
        m.charge(cost, ChargeCat::Restore);
        m.metrics.restores += 1;
        m.update_peak_vm();
    }
    Ok(())
}

/// Convenience: runs `im` once under `config` with the default cost
/// table.
///
/// # Errors
///
/// Propagates any [`EmuError`] from the run.
pub fn run(im: &InstrumentedModule, config: RunConfig) -> Result<RunOutcome, EmuError> {
    Machine::new(im, &CostTable::msp430fr5969(), config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrumented::AllocationPlan;
    use schematic_ir::{CmpOp, FunctionBuilder, Inst, ModuleBuilder, Terminator, Variable};

    fn sum_module() -> schematic_ir::Module {
        let mut mb = ModuleBuilder::new("sum");
        let arr = mb.var(Variable::array("array", 8).with_init((1..=8).collect()));
        let sum = mb.var(Variable::scalar("sum"));
        let mut f = FunctionBuilder::new("main", 0);
        let loop_bb = f.new_block("loop");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.store_scalar(sum, 0);
        f.br(loop_bb);
        f.switch_to(loop_bb);
        let done = f.cmp(CmpOp::SGe, i, 8);
        f.cond_br(done, exit, body);
        f.set_max_iters(loop_bb, 9);
        f.switch_to(body);
        let x = f.load_idx(arr, i);
        let acc = f.load_scalar(sum);
        let acc2 = f.bin(BinOp::Add, acc, x);
        f.store_scalar(sum, acc2);
        let i2 = f.bin(BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(loop_bb);
        f.switch_to(exit);
        let r = f.load_scalar(sum);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn computes_sum_continuously() {
        let im = InstrumentedModule::bare(sum_module());
        let out = run(&im, RunConfig::default()).unwrap();
        assert!(out.completed());
        assert_eq!(out.result, Some(36));
        assert!(out.metrics.total_energy() > schematic_energy::Energy::ZERO);
        assert_eq!(out.metrics.power_failures, 0);
        assert!(out.metrics.nvm_reads > 0);
        assert_eq!(out.metrics.vm_reads, 0); // all-NVM plan
    }

    #[test]
    fn all_vm_plan_uses_vm() {
        let im = InstrumentedModule::bare_all_vm(sum_module());
        let out = run(&im, RunConfig::default()).unwrap();
        assert_eq!(out.result, Some(36));
        assert_eq!(out.metrics.nvm_reads, 0);
        assert!(out.metrics.vm_reads > 0);
        assert!(out.metrics.peak_vm_bytes >= 9 * 4);
    }

    #[test]
    fn vm_is_cheaper_than_nvm() {
        let nvm = run(
            &InstrumentedModule::bare(sum_module()),
            RunConfig::default(),
        )
        .unwrap();
        let vm = run(
            &InstrumentedModule::bare_all_vm(sum_module()),
            RunConfig::default(),
        )
        .unwrap();
        assert!(vm.metrics.computation < nvm.metrics.computation);
    }

    #[test]
    fn trace_records_blocks() {
        let im = InstrumentedModule::bare(sum_module());
        let out = run(&im, RunConfig::profiling()).unwrap();
        assert!(!out.trace.is_empty());
        // 1 entry + 9 loop headers + 8 bodies + 1 exit = 19 visits.
        assert_eq!(out.trace.len(), 19);
        assert_eq!(out.trace[0], (FuncId(0), BlockId(0)));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        let z = f.copy(0);
        let _ = f.bin(BinOp::DivS, 1, z);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let err = run(&im, RunConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            EmuError::Trap {
                kind: TrapKind::DivisionByZero,
                ..
            }
        ));
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut mb = ModuleBuilder::new("m");
        let a = mb.var(Variable::array("a", 2));
        let mut f = FunctionBuilder::new("main", 0);
        let i = f.copy(5);
        let _ = f.load_idx(a, i);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let err = run(&im, RunConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            EmuError::Trap {
                kind: TrapKind::IndexOutOfBounds { .. },
                ..
            }
        ));
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut mb = ModuleBuilder::new("m");
        let mut add = FunctionBuilder::new("add", 2);
        let s = add.bin(BinOp::Add, Reg(0), Reg(1));
        add.ret(Some(s.into()));
        let add = mb.func(add.finish());
        let mut f = FunctionBuilder::new("main", 0);
        let r = f.call(add, vec![Operand::Imm(30), Operand::Imm(12)]);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let out = run(&im, RunConfig::default()).unwrap();
        assert_eq!(out.result, Some(42));
    }

    #[test]
    fn stack_overflow_traps() {
        // main -> f1 -> f2 -> ... deep chain via config limit 2.
        let mut mb = ModuleBuilder::new("m");
        let mut leaf = FunctionBuilder::new("leaf", 0);
        leaf.ret(None);
        let leaf = mb.func(leaf.finish());
        let mut mid = FunctionBuilder::new("mid", 0);
        mid.call_void(leaf, vec![]);
        mid.ret(None);
        let mid = mb.func(mid.finish());
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(mid, vec![]);
        f.ret(None);
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let cfg = RunConfig {
            max_stack: 2,
            ..RunConfig::default()
        };
        let err = run(&im, cfg).unwrap_err();
        assert!(matches!(
            err,
            EmuError::Trap {
                kind: TrapKind::StackOverflow { .. },
                ..
            }
        ));
    }

    #[test]
    fn periodic_failures_without_checkpoints_livelock() {
        // The sum program takes far more than 50 cycles; with rollback to
        // the implicit start checkpoint it can never finish.
        let im = InstrumentedModule::bare(sum_module());
        let out = run(&im, RunConfig::periodic(50)).unwrap();
        assert_eq!(out.status, RunStatus::Livelock);
        assert!(out.metrics.power_failures >= 8);
        assert!(out.metrics.reexecution > schematic_energy::Energy::ZERO);
    }

    #[test]
    fn periodic_failures_with_large_tbpf_complete() {
        let im = InstrumentedModule::bare(sum_module());
        let out = run(&im, RunConfig::periodic(10_000_000)).unwrap();
        assert!(out.completed());
        assert_eq!(out.result, Some(36));
        assert_eq!(out.metrics.power_failures, 0);
    }

    #[test]
    fn checkpoints_enable_progress_under_failures() {
        // Insert a plain checkpoint between the loads of `sum` and the
        // store back to it (breaking the WAR dependency, as RATCHET
        // would); every iteration commits, so even a tiny TBPF makes
        // progress and re-execution is idempotent.
        let mut m = sum_module();
        let body = BlockId(2);
        m.funcs[0].blocks[body.index()].insts.insert(
            3,
            Inst::Checkpoint {
                id: CheckpointId(0),
            },
        );
        let plan = AllocationPlan::all_nvm(&m);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![CheckpointSpec::registers_only()],
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: vec![],
        };
        let out = run(&im, RunConfig::periodic(400)).unwrap();
        assert!(out.completed(), "status = {:?}", out.status);
        assert_eq!(out.result, Some(36));
        assert!(out.metrics.power_failures > 0);
        assert!(out.metrics.checkpoints_committed >= 8);
    }

    #[test]
    fn war_unsafe_checkpoint_reproduces_memory_anomaly() {
        // The emulator faithfully reproduces the NVM memory-anomaly
        // problem (§V, "nonvolatile memory is a broken time machine"):
        // a checkpoint placed *before* the read of `sum` makes the
        // read-modify-write non-idempotent, so rollback re-execution
        // can double-add. This is exactly what RATCHET's WAR-breaking
        // placement exists to prevent.
        let mut m = sum_module();
        let body = BlockId(2);
        m.funcs[0].blocks[body.index()].insts.insert(
            0,
            Inst::Checkpoint {
                id: CheckpointId(0),
            },
        );
        let plan = AllocationPlan::all_nvm(&m);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![CheckpointSpec::registers_only()],
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: vec![],
        };
        // Scan TBPF values: at least one failure point must land between
        // the NVM read-modify-write and the next checkpoint commit,
        // re-applying an addition.
        let overcounted = (200..2_000).step_by(37).any(|tbpf| {
            let out = run(&im, RunConfig::periodic(tbpf)).unwrap();
            out.completed() && out.result.unwrap() > 36
        });
        assert!(overcounted, "no TBPF reproduced the WAR anomaly");

        // The shadow recorder observes the same hazard — `sum` is read
        // then written within one inter-checkpoint epoch — and its
        // presence leaves status, result and metrics bit-identical.
        let plain = run(&im, RunConfig::periodic(400)).unwrap();
        let shadowed = run(
            &im,
            RunConfig {
                shadow_war: true,
                ..RunConfig::periodic(400)
            },
        )
        .unwrap();
        assert_eq!(shadowed.status, plain.status);
        assert_eq!(shadowed.result, plain.result);
        assert_eq!(shadowed.metrics, plain.metrics);
        let report = shadowed.shadow.expect("shadow report requested");
        let sum = VarId(1);
        assert!(
            report.war_vars().contains(&sum),
            "shadow missed the WAR on sum: {report:?}"
        );
    }

    #[test]
    fn shadow_recorder_sees_no_war_when_checkpoint_breaks_it() {
        // With the checkpoint placed between `sum`'s read and write (as
        // in `checkpoints_enable_progress_under_failures`), every
        // read/write pair spans an epoch boundary: no WAR is observed.
        let mut m = sum_module();
        let body = BlockId(2);
        m.funcs[0].blocks[body.index()].insts.insert(
            3,
            Inst::Checkpoint {
                id: CheckpointId(0),
            },
        );
        let plan = AllocationPlan::all_nvm(&m);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![CheckpointSpec::registers_only()],
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: vec![],
        };
        for tbpf in [400, 700, 1_300] {
            let out = run(
                &im,
                RunConfig {
                    shadow_war: true,
                    ..RunConfig::periodic(tbpf)
                },
            )
            .unwrap();
            assert!(out.completed());
            let report = out.shadow.expect("shadow report requested");
            assert!(
                report.wars.is_empty(),
                "tbpf {tbpf}: unexpected observed WARs: {report:?}"
            );
            assert!(report.epochs > 1);
            assert!(report.nvm_reads > 0 && report.nvm_writes > 0);
        }
    }

    #[test]
    fn shadow_records_exact_element_and_stays_metric_invisible() {
        // Same-element read-modify-write on `a[4]` inside one epoch is a
        // per-element WAR; the disjoint read of `a[0]` / write of `a[1]`
        // is not. The recorder must report exactly offset 4, and its
        // presence must leave status, result and metrics bit-identical.
        let mut mb = ModuleBuilder::new("m");
        let a = mb.var(Variable::array("a", 6).with_init(vec![7; 6]));
        let mut f = FunctionBuilder::new("main", 0);
        let x = f.load_idx(a, 4);
        let y = f.bin(BinOp::Add, x, 1);
        f.store_idx(a, 4, y);
        let r0 = f.load_idx(a, 0);
        f.store_idx(a, 1, r0);
        f.ret(Some(y.into()));
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let plain = run(&im, RunConfig::default()).unwrap();
        let shadowed = run(
            &im,
            RunConfig {
                shadow_war: true,
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(shadowed.status, plain.status);
        assert_eq!(shadowed.result, plain.result);
        assert_eq!(shadowed.metrics, plain.metrics);
        let report = shadowed.shadow.expect("shadow report requested");
        assert_eq!(report.war_elems(), vec![(a, 4)]);
    }

    #[test]
    fn wait_recharge_sleeps_and_restores() {
        let mut m = sum_module();
        let body = BlockId(2);
        m.funcs[0].blocks[body.index()].insts.insert(
            0,
            Inst::Checkpoint {
                id: CheckpointId(0),
            },
        );
        let plan = AllocationPlan::all_nvm(&m);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![CheckpointSpec::registers_only()],
            plan,
            policy: FailurePolicy::WaitRecharge,
            boot_restore: vec![],
        };
        let out = run(&im, RunConfig::periodic(5_000)).unwrap();
        assert!(out.completed());
        assert_eq!(out.result, Some(36));
        // Wait-mode: every checkpoint sleeps; no failures should strike
        // mid-interval because each inter-checkpoint stretch is short.
        assert_eq!(out.metrics.power_failures, 0);
        assert_eq!(out.metrics.unexpected_failures, 0);
        assert_eq!(out.metrics.sleep_events, 8);
        assert_eq!(out.metrics.reexecution, schematic_energy::Energy::ZERO);
        assert!(out.metrics.restore > schematic_energy::Energy::ZERO);
    }

    #[test]
    fn retentive_sleep_skips_restores() {
        let mut m = sum_module();
        let body = BlockId(2);
        m.funcs[0].blocks[body.index()].insts.insert(
            0,
            Inst::Checkpoint {
                id: CheckpointId(0),
            },
        );
        let plan = AllocationPlan::all_nvm(&m);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![CheckpointSpec::registers_only()],
            plan,
            policy: FailurePolicy::WaitRecharge,
            boot_restore: vec![],
        };
        let deep = run(&im, RunConfig::periodic(5_000)).unwrap();
        let cfg = RunConfig {
            retentive_sleep: true,
            ..RunConfig::periodic(5_000)
        };
        let retentive = Machine::new(&im, &CostTable::msp430fr5969(), cfg)
            .run()
            .unwrap();
        assert_eq!(retentive.result, deep.result);
        assert_eq!(retentive.metrics.restores, 0);
        assert!(retentive.metrics.restore < deep.metrics.restore);
        assert_eq!(retentive.metrics.save, deep.metrics.save);
    }

    #[test]
    fn guarded_checkpoint_skips_when_charged() {
        let mut m = sum_module();
        let body = BlockId(2);
        m.funcs[0].blocks[body.index()].insts.insert(
            0,
            Inst::Checkpoint {
                id: CheckpointId(0),
            },
        );
        let plan = AllocationPlan::all_nvm(&m);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![CheckpointSpec {
                save_vars: vec![],
                restore_vars: vec![],
                kind: CheckpointKind::Guarded { threshold: 0.5 },
            }],
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: vec![],
        };
        // Continuous power: fraction is always 1.0 >= 0.5, so every
        // checkpoint is skipped.
        let out = run(&im, RunConfig::default()).unwrap();
        assert!(out.completed());
        assert_eq!(out.metrics.checkpoints_committed, 0);
        assert_eq!(out.metrics.checkpoints_skipped, 8);
    }

    #[test]
    fn cond_checkpoint_fires_periodically() {
        let mut m = sum_module();
        let body = BlockId(2);
        m.funcs[0].blocks[body.index()].insts.insert(
            0,
            Inst::CondCheckpoint {
                id: CheckpointId(0),
                period: 3,
            },
        );
        let plan = AllocationPlan::all_nvm(&m);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![CheckpointSpec::registers_only()],
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: vec![],
        };
        let out = run(&im, RunConfig::default()).unwrap();
        assert!(out.completed());
        // 8 executions, fires at 3 and 6.
        assert_eq!(out.metrics.checkpoints_committed, 2);
    }

    #[test]
    fn cycle_limit_halts_runaway() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        let l = f.new_block("l");
        f.br(l);
        f.switch_to(l);
        f.set_max_iters(l, u64::MAX);
        f.br(l); // infinite loop
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let cfg = RunConfig {
            max_active_cycles: 10_000,
            ..RunConfig::default()
        };
        let out = run(&im, cfg).unwrap();
        assert_eq!(out.status, RunStatus::CycleLimit);
    }

    #[test]
    fn savevar_restorevar_roundtrip() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x").with_init(vec![5]));
        let mut f = FunctionBuilder::new("main", 0);
        f.ret(None);
        let main = mb.func(f.finish());
        let mut m = mb.finish(main);
        m.funcs[0].blocks[0].insts = vec![
            Inst::RestoreVar { var: x },
            Inst::Load {
                dst: Reg(0),
                var: x,
                idx: None,
            },
            Inst::Store {
                var: x,
                idx: None,
                src: Operand::Imm(9),
            },
            Inst::SaveVar { var: x },
        ];
        m.funcs[0].blocks[0].term = Terminator::Ret(Some(Operand::Reg(Reg(0))));
        m.funcs[0].n_regs = 1;
        let mut plan = AllocationPlan::all_nvm(&m);
        let mut set = schematic_ir::VarSet::new(1);
        set.insert(x);
        plan.set(FuncId(0), BlockId(0), set);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![],
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: vec![],
        };
        let out = run(&im, RunConfig::default()).unwrap();
        assert_eq!(out.result, Some(5));
        assert!(out.metrics.save > schematic_energy::Energy::ZERO);
        assert!(out.metrics.restore > schematic_energy::Energy::ZERO);
        assert_eq!(out.metrics.restores, 1);
        assert_eq!(out.metrics.coherence_violations, 0);
    }

    /// A hot single fusable block that never chains into a longer trace
    /// (every predecessor edge is conditional, its own terminator is a
    /// `CondBr` back to itself) must still cross the AOT threshold: the
    /// resident superloop's back-edge rounds count toward it. Metrics
    /// stay bit-identical to the interpreter.
    #[test]
    fn resident_single_block_loop_lowers_to_aot() {
        let mut mb = ModuleBuilder::new("m");
        let s = mb.var(Variable::scalar("s"));
        let mut f = FunctionBuilder::new("main", 0);
        let lp = f.new_block("lp");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        // Conditional entry edge: nothing chains into `lp`, so its
        // trace is the single block itself.
        let enter = f.cmp(CmpOp::SGe, i, 0);
        f.cond_br(enter, lp, exit);
        f.switch_to(lp);
        let x = f.load_scalar(s);
        let x2 = f.bin(BinOp::Add, x, 1);
        f.store_scalar(s, x2);
        let i2 = f.bin(BinOp::Add, i, 1);
        f.copy_to(i, i2);
        let done = f.cmp(CmpOp::SGe, i, 1000);
        f.cond_br(done, exit, lp);
        f.set_max_iters(lp, 1001);
        f.switch_to(exit);
        let r = f.load_scalar(s);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        let im = InstrumentedModule::bare(mb.finish(main));
        let table = CostTable::msp430fr5969();
        let d = crate::decoded::DecodedModule::new(&im, &table);
        let lp_flat = d.flat_index(FuncId(0), lp) as usize;
        assert!(d.blocks[lp_flat].fusable);
        assert_eq!(
            d.blocks[lp_flat]
                .trace_info
                .as_ref()
                .expect("fusable head has a trace")
                .blocks
                .len(),
            1
        );
        let cfg = RunConfig {
            aot_threshold: 4,
            ..RunConfig::default()
        };
        let out = Machine::with_decoded(&d, cfg).run().unwrap();
        assert_eq!(out.result, Some(1000));
        assert!(
            d.blocks[lp_flat].aot.get().is_some(),
            "resident back-edge rounds must count toward the AOT threshold"
        );
        let interp = run(
            &im,
            RunConfig {
                tier: ExecTier::Interp,
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.metrics, interp.metrics);
    }
}
