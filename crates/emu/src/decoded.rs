//! Predecoded programs: the emulator's execution format.
//!
//! [`Machine`](crate::Machine) does not interpret [`schematic_ir::Inst`]
//! directly. An [`InstrumentedModule`] is lowered once, by
//! [`DecodedModule::new`], into flat per-block arrays in which every
//! per-instruction decision that is invariant for a whole run has already
//! been made:
//!
//! - every instruction's execution [`Cost`] is resolved from the
//!   [`CostTable`] (no per-step opcode match against raw cycle fields);
//! - every `load`/`store` carries its [`MemClass`], resolved from the
//!   active [`AllocationPlan`](crate::AllocationPlan) and the variable's
//!   `pinned_nvm` flag — the per-access plan lookup is gone entirely;
//! - every branch and call target carries the *flat* index of its
//!   destination block, so dispatch never walks `funcs[f].blocks[b]`,
//!   and every edge knows statically whether crossing it can require
//!   residency reconciliation (see [`DTerm`]);
//! - **superblocks**: for every instruction position, the length and
//!   aggregate worst-case cost of the maximal straight-line run of pure,
//!   trap-impossible register instructions starting there. When the power
//!   window has headroom for the whole run, the machine retires it with a
//!   single charge instead of per-instruction bookkeeping (see
//!   `Machine::step`), falling back to per-instruction stepping whenever
//!   a failure, a cycle-limit edge, or a re-execution boundary could land
//!   mid-run — so metrics, failure points and traces stay bit-identical.
//!
//! A decoded module borrows the instrumented module and cost table it was
//! built from; build one with [`DecodedModule::new`] and reuse it across
//! runs via `Machine::with_decoded` to amortize the lowering (the
//! convenience `Machine::new` decodes internally for one-shot runs).

use crate::instrumented::InstrumentedModule;
use schematic_energy::{Cost, CostTable, Energy, MemClass};
use schematic_ir::{
    AccessKind, BinOp, BlockId, CheckpointId, CmpOp, FuncId, Inst, Operand, Reg, Terminator, UnOp,
    VarId, VarSet,
};

/// A predecoded instruction. Mirrors [`Inst`] with run-invariant
/// decisions (memory class, callee entry points) baked in; all variants
/// are `Copy` so the interpreter can lift one out of the decoded arrays
/// without borrowing the machine.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DInst {
    /// `dst = op lhs, rhs`
    Bin {
        dst: Reg,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cmp.pred lhs, rhs`
    Cmp {
        dst: Reg,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = op src`
    Un { dst: Reg, op: UnOp, src: Operand },
    /// `dst = src`
    Copy { dst: Reg, src: Operand },
    /// `dst = select cond, a, b`
    Select {
        dst: Reg,
        cond: Operand,
        then_val: Operand,
        else_val: Operand,
    },
    /// `dst = load var[idx]` with the memory class pre-resolved from the
    /// allocation plan of the enclosing block, and the variable's arena
    /// word offset (`base`) and size (`words`) resolved so the access is
    /// a single bounds check plus one arena index at run time.
    Load {
        dst: Reg,
        var: VarId,
        idx: Option<Operand>,
        class: MemClass,
        base: u32,
        words: u32,
    },
    /// `store var[idx], src` with the memory class and arena addressing
    /// pre-resolved (see [`DInst::Load`]).
    Store {
        var: VarId,
        idx: Option<Operand>,
        src: Operand,
        class: MemClass,
        base: u32,
        words: u32,
    },
    /// Direct call; arguments live in [`DecodedModule::call_args`]
    /// (`args` is a range into it) and the callee's register-file size
    /// and flat entry-block index are pre-resolved.
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args_start: u32,
        args_end: u32,
        n_regs: u32,
        entry: BlockId,
        entry_flat: u32,
        /// Whether the caller→callee-entry edge needs residency
        /// reconciliation (see [`DTerm`]).
        reconcile: bool,
    },
    /// Checkpoint intrinsic (runtime semantics from the checkpoint spec).
    Checkpoint { id: CheckpointId },
    /// Conditional checkpoint on a loop back-edge.
    CondCheckpoint { id: CheckpointId, period: u32 },
    /// ALFRED-style anticipated save.
    SaveVar { var: VarId },
    /// ALFRED-style deferred restore.
    RestoreVar { var: VarId },
}

impl DInst {
    /// Whether this instruction may join a superblock: a pure register
    /// operation that cannot trap, touch memory, or transfer control.
    /// Division/remainder qualify only when the divisor is an immediate
    /// that provably cannot trap (non-zero, and not `-1` for the signed
    /// forms, which would trap on `i32::MIN`).
    fn is_fusable(&self) -> bool {
        match self {
            DInst::Cmp { .. } | DInst::Un { .. } | DInst::Copy { .. } | DInst::Select { .. } => {
                true
            }
            DInst::Bin { op, rhs, .. } => match op {
                BinOp::DivS | BinOp::RemS => {
                    matches!(rhs, Operand::Imm(v) if *v != 0 && *v != -1)
                }
                BinOp::DivU | BinOp::RemU => matches!(rhs, Operand::Imm(v) if *v != 0),
                _ => true,
            },
            _ => false,
        }
    }
}

/// A predecoded terminator with flat successor indices.
///
/// Each edge also carries a precomputed `reconcile` flag: whether
/// residency reconciliation can have any effect when crossing it. Dirty
/// VM copies only arise from VM-class stores, and a store's class is VM
/// only when the variable is in the *current* block's plan — so at any
/// point the dirty set is a subset of the current plan. When the source
/// plan is a subset of the target plan the flush set is provably empty
/// and the edge skips reconciliation entirely. Return edges cannot be
/// resolved statically (one `ret` serves every call site) and always
/// reconcile.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DTerm {
    /// Unconditional branch.
    Br {
        target: BlockId,
        flat: u32,
        reconcile: bool,
    },
    /// Two-way conditional branch.
    CondBr {
        cond: Operand,
        then_bb: BlockId,
        then_flat: u32,
        then_reconcile: bool,
        else_bb: BlockId,
        else_flat: u32,
        else_reconcile: bool,
    },
    /// Function return.
    Ret(Option<Operand>),
}

/// Whether the edge from a block with VM set `src` to one with VM set
/// `tgt` needs residency reconciliation (see [`DTerm`]): only when some
/// variable of `src` — the superset of everything that can be dirty —
/// leaves the plan.
fn needs_reconcile(src: Option<&VarSet>, tgt: Option<&VarSet>) -> bool {
    match (src, tgt) {
        (None, _) => false,
        (Some(s), None) => !s.is_empty(),
        (Some(s), Some(t)) => !s.is_subset(t),
    }
}

/// What a fusable block's prep pass must establish for one variable
/// before the checkless body loop runs (see [`DecodedBlock::prep`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PrepKind {
    /// The first access reads (a load, or an indexed store): fault-load
    /// the variable into VM, charged as an implicit restore.
    Restore,
    /// The first access is a full scalar overwrite: materialize an
    /// uninitialized VM copy for free.
    AllocScalar,
}

/// One entry of a fusable block's VM-residency prep list: the block's
/// first access to `var` (VM class only), in program order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrepOp {
    pub(crate) var: VarId,
    pub(crate) kind: PrepKind,
}

/// A *trace* superblock: the maximal chain of fusable blocks reachable
/// from a head block by following unconditional `Br` edges that need no
/// residency reconciliation. The final block's terminator (which may be
/// a `CondBr` closing a loop, or a `Ret`) executes dynamically after the
/// trace body; every interior edge is a plain fall-through. Aggregate
/// accounting is the field-wise sum of each member's [`FusedCosts`]
/// (each bundle already includes its own terminator), so the machine
/// commits a whole trace with a single charge once the worst-case bound
/// proves nothing observable can land inside it — the same
/// fall-back-near-failure argument as single-block fusion, applied to
/// the longer unit.
pub(crate) struct TraceInfo {
    /// Flat indices of the member blocks; `blocks[0]` is the head. A
    /// single-element trace is a plain fusable block.
    pub(crate) blocks: Box<[u32]>,
    /// Field-wise sum of every member's accounting bundle.
    pub(crate) fused: FusedCosts,
    /// Total instruction count across the trace.
    pub(crate) insts: u64,
    /// Suffix bundles: `suffix[p]` aggregates members `p..len` (so
    /// `suffix[0] == fused`). These price the *partial* rounds the
    /// superloop runs when the trace's final terminator re-enters the
    /// trace mid-chain rather than at the head.
    pub(crate) suffix: Box<[FusedCosts]>,
    /// Instruction counts parallel to `suffix`.
    pub(crate) suffix_insts: Box<[u64]>,
    /// Position in `blocks` that the final member's `CondBr` then-edge
    /// re-enters, when that edge is reconcile-free and targets a
    /// member (`None` otherwise, or when the final terminator is not a
    /// `CondBr`). Decode-time input to the superloop's back-edge test.
    pub(crate) re_then: Option<u32>,
    /// Same for the else-edge.
    pub(crate) re_else: Option<u32>,
    /// Whether VM residency established by the members' prep passes can
    /// survive the whole trace: true when no member NVM-writes a
    /// variable that appears in any member's prep list (an NVM write
    /// drops the variable's VM copy). When set, superloop rounds after
    /// the first skip the per-block residency rescan.
    pub(crate) prep_stable: bool,
}

/// Longest chain a trace may span. Caps the worst-case bound (an overly
/// long trace would fail its power-headroom guard and fall back anyway)
/// and keeps the decode pass linear.
const TRACE_CAP: usize = 16;

/// One basic block in decoded form. The instruction-indexed arrays
/// are parallel: `insts[ip]` executes with exec-CPU cost `costs[ip]`
/// via the direct-threaded handler `ops[ip]`, and
/// `fuse_len[ip]`/`fuse_cost[ip]` describe the superblock (maximal
/// fusable run) starting at `ip` — zero length when `insts[ip]` itself
/// is not fusable, so any resume point (checkpoint restores land at
/// arbitrary `ip`) sees a correct, possibly shorter, run.
pub(crate) struct DecodedBlock<'a> {
    pub(crate) insts: Box<[DInst]>,
    pub(crate) costs: Box<[Cost]>,
    /// Direct-threaded dispatch table: `ops[ip]` is the handler function
    /// for `insts[ip]`, selected once at decode time so the
    /// per-instruction path jumps straight to the variant's code instead
    /// of re-matching the opcode every step.
    pub(crate) ops: Box<[crate::machine::OpFn]>,
    pub(crate) fuse_len: Box<[u32]>,
    pub(crate) fuse_cost: Box<[Cost]>,
    /// VM-residency prep list (fusable blocks only): the block's first
    /// VM-class access per variable, in program order. Establishing
    /// these up front makes every access in the body provably valid —
    /// the class of a (variable, block) pair is unique, so nothing
    /// inside the block can invalidate a prepped copy — letting the
    /// fused body loop run without any residency checks.
    pub(crate) prep: Box<[PrepOp]>,
    /// The block's VM allocation set (`None` = empty fallback set), as
    /// [`AllocationPlan::get_ref`](crate::AllocationPlan::get_ref) would
    /// resolve it — residency reconciliation reads this instead of
    /// re-querying the plan.
    pub(crate) plan: Option<&'a VarSet>,
    pub(crate) term: DTerm,
    pub(crate) term_cost: Cost,
    /// Whether the whole block qualifies for block-level fused dispatch:
    /// every instruction is either superblock-fusable or a plain
    /// load/store. Checkpoints, calls, save/restore intrinsics and
    /// possibly-trapping divisions disqualify the block.
    pub(crate) fusable: bool,
    /// Aggregate accounting for block-level dispatch. Meaningful only
    /// when `fusable`.
    pub(crate) fused: FusedCosts,
    /// The trace superblock headed by this block (`Some` iff `fusable`;
    /// a chain of length 1 when no successor can be fused).
    pub(crate) trace_info: Option<TraceInfo>,
    /// Lazily-built AOT lowering of the full trace headed here — closed
    /// Rust closures over resolved operands, compiled by the machine
    /// once the head's execution count crosses the AOT threshold (see
    /// [`crate::aot`]). Shared across runs of the same decoded program.
    pub(crate) aot: std::sync::OnceLock<crate::aot::AotTrace>,
}

/// Precomputed whole-block accounting for a fusable block.
///
/// Once the guard in `Machine::step` proves the entire block executes as
/// one fused step, everything the emulator charges for it — Exec-category
/// cost, the CPU/VM/NVM energy split, and the access counters — is a
/// compile-time constant of the block: every instruction runs exactly
/// once and every access class was resolved at decode time. The hot loop
/// therefore only moves data; the machine commits this bundle once at
/// the end. Only implicit restores remain dynamic (they depend on VM
/// residency) and are charged separately as they occur.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedCosts {
    /// Worst-case total cost of executing the entire block — every
    /// instruction's CPU and access cost, the largest implicit-restore
    /// charge each VM access could trigger, and the terminator — used to
    /// prove that no power failure or cycle-limit edge can land inside a
    /// block-level dispatch.
    pub(crate) ub_cost: Cost,
    /// Exact Exec-category total: CPU + access costs of every
    /// instruction plus the terminator (excludes implicit restores).
    pub(crate) exec_cost: Cost,
    /// CPU-only energy share of `exec_cost` (instructions + terminator).
    pub(crate) cpu_energy: Energy,
    /// VM access-energy share of `exec_cost`.
    pub(crate) vm_energy: Energy,
    /// NVM access-energy share of `exec_cost`.
    pub(crate) nvm_energy: Energy,
    pub(crate) vm_reads: u32,
    pub(crate) vm_writes: u32,
    pub(crate) nvm_reads: u32,
    pub(crate) nvm_writes: u32,
}

impl FusedCosts {
    /// Field-wise sum — aggregates member blocks into a trace bundle.
    fn merge(&self, o: &FusedCosts) -> FusedCosts {
        FusedCosts {
            ub_cost: self.ub_cost + o.ub_cost,
            exec_cost: self.exec_cost + o.exec_cost,
            cpu_energy: self.cpu_energy + o.cpu_energy,
            vm_energy: self.vm_energy + o.vm_energy,
            nvm_energy: self.nvm_energy + o.nvm_energy,
            vm_reads: self.vm_reads + o.vm_reads,
            vm_writes: self.vm_writes + o.vm_writes,
            nvm_reads: self.nvm_reads + o.nvm_reads,
            nvm_writes: self.nvm_writes + o.nvm_writes,
        }
    }

    const ZERO: FusedCosts = FusedCosts {
        ub_cost: Cost::ZERO,
        exec_cost: Cost::ZERO,
        cpu_energy: Energy::ZERO,
        vm_energy: Energy::ZERO,
        nvm_energy: Energy::ZERO,
        vm_reads: 0,
        vm_writes: 0,
        nvm_reads: 0,
        nvm_writes: 0,
    };
}

/// An [`InstrumentedModule`] lowered to the emulator's execution format.
///
/// Build once per `(module, cost table)` pair and share across runs:
///
/// ```
/// use schematic_emu::{DecodedModule, InstrumentedModule, Machine, RunConfig};
/// use schematic_energy::CostTable;
/// use schematic_ir::parse_module;
///
/// let m = parse_module("func @main(0) {\nentry:\n  r0 = mov 42\n  ret r0\n}").unwrap();
/// let im = InstrumentedModule::bare(m);
/// let table = CostTable::msp430fr5969();
/// let decoded = DecodedModule::new(&im, &table);
/// for _ in 0..3 {
///     let out = Machine::with_decoded(&decoded, RunConfig::default()).run()?;
///     assert_eq!(out.result, Some(42));
/// }
/// # Ok::<(), schematic_emu::EmuError>(())
/// ```
pub struct DecodedModule<'a> {
    pub(crate) im: &'a InstrumentedModule,
    pub(crate) table: &'a CostTable,
    pub(crate) blocks: Vec<DecodedBlock<'a>>,
    /// Flat index of each function's block 0.
    func_base: Vec<u32>,
    /// Flattened argument lists of every call instruction.
    pub(crate) call_args: Vec<Operand>,
}

impl<'a> DecodedModule<'a> {
    /// Lowers `im` into flat execution arrays under `table`'s costs.
    pub fn new(im: &'a InstrumentedModule, table: &'a CostTable) -> Self {
        let module = &im.module;
        let mut func_base = Vec::with_capacity(module.funcs.len());
        let mut total_blocks = 0usize;
        for f in &module.funcs {
            func_base.push(u32::try_from(total_blocks).expect("block count fits u32"));
            total_blocks += f.blocks.len();
        }
        let mut blocks = Vec::with_capacity(total_blocks);
        let mut call_args = Vec::new();
        let (arena_off, _) = crate::memory::word_offsets(module);
        for (fi, func) in module.funcs.iter().enumerate() {
            let fid = FuncId::from_usize(fi);
            for (bi, block) in func.blocks.iter().enumerate() {
                let bid = BlockId::from_usize(bi);
                let plan = im.plan.get_ref(fid, bid);
                let n = block.insts.len();
                let mut insts = Vec::with_capacity(n);
                let mut costs = Vec::with_capacity(n);
                for inst in &block.insts {
                    let di = decode_inst(inst, im, plan, &func_base, &arena_off, &mut call_args);
                    // The decoded cost is the exec-CPU part only; memory
                    // access energy is charged separately at run time from
                    // the pre-resolved class, exactly as the interpreter
                    // always has.
                    costs.push(exec_cpu_cost(inst, table));
                    insts.push(di);
                }
                // Superblocks: suffix-scan the fusable run length and
                // aggregate cost at each position.
                let mut fuse_len = vec![0u32; n];
                let mut fuse_cost = vec![Cost::ZERO; n];
                for ip in (0..n).rev() {
                    if insts[ip].is_fusable() {
                        let (len, cost) = if ip + 1 < n {
                            (fuse_len[ip + 1], fuse_cost[ip + 1])
                        } else {
                            (0, Cost::ZERO)
                        };
                        fuse_len[ip] = len + 1;
                        fuse_cost[ip] = costs[ip] + cost;
                    }
                }
                let term_cost = table.term_cost(&block.term);
                let (fusable, fused) = block_bound(&insts, &costs, term_cost, im, table);
                let prep = if fusable {
                    prep_ops(&insts)
                } else {
                    Box::default()
                };
                blocks.push(DecodedBlock {
                    ops: insts.iter().map(crate::machine::op_for).collect(),
                    insts: insts.into_boxed_slice(),
                    costs: costs.into_boxed_slice(),
                    fuse_len: fuse_len.into_boxed_slice(),
                    fuse_cost: fuse_cost.into_boxed_slice(),
                    prep,
                    plan,
                    term: decode_term(&block.term, im, plan, &func_base, fid),
                    term_cost,
                    fusable,
                    fused,
                    trace_info: None,
                    aot: std::sync::OnceLock::new(),
                });
            }
        }
        // Trace construction: from every fusable head, follow
        // unconditional reconcile-free branches through further fusable
        // blocks. A revisit (loop back edge into the chain) ends the
        // trace — the final terminator re-enters it dynamically.
        let mut infos = Vec::with_capacity(blocks.len());
        for (i, db) in blocks.iter().enumerate() {
            if !db.fusable {
                infos.push(None);
                continue;
            }
            let mut chain = vec![u32::try_from(i).expect("flat index fits u32")];
            let mut cur = i;
            while chain.len() < TRACE_CAP {
                let DTerm::Br {
                    flat,
                    reconcile: false,
                    ..
                } = blocks[cur].term
                else {
                    break;
                };
                let next = flat as usize;
                if !blocks[next].fusable || chain.contains(&flat) {
                    break;
                }
                chain.push(flat);
                cur = next;
            }
            // Suffix accounting (reverse scan; field-wise integer sums,
            // so `suffix[0]` equals the forward merge).
            let mut suffix = vec![FusedCosts::ZERO; chain.len()];
            let mut suffix_insts = vec![0u64; chain.len()];
            let mut acc = FusedCosts::ZERO;
            let mut acc_insts = 0u64;
            for p in (0..chain.len()).rev() {
                let member = &blocks[chain[p] as usize];
                acc = member.fused.merge(&acc);
                acc_insts += member.insts.len() as u64;
                suffix[p] = acc;
                suffix_insts[p] = acc_insts;
            }
            // Re-entry positions of the final member's conditional
            // back edges, for mid-trace superloop rounds.
            let pos_of = |flat: u32, rec: bool| {
                (!rec)
                    .then(|| chain.iter().position(|&f| f == flat))
                    .flatten()
                    .map(|p| p as u32)
            };
            // Prep stability: an NVM store drops the written variable's
            // VM copy, so residency prepped by one member survives
            // later rounds only if no member NVM-writes a prepped var.
            let prep_stable = {
                let prepped = |v: schematic_ir::VarId| {
                    chain
                        .iter()
                        .any(|&f| blocks[f as usize].prep.iter().any(|p| p.var == v))
                };
                !chain.iter().any(|&f| {
                    blocks[f as usize].insts.iter().any(|di| {
                        matches!(
                            *di,
                            DInst::Store {
                                var,
                                class: MemClass::Nvm,
                                ..
                            } if prepped(var)
                        )
                    })
                })
            };
            let (re_then, re_else) = match blocks[cur].term {
                DTerm::CondBr {
                    then_flat,
                    then_reconcile,
                    else_flat,
                    else_reconcile,
                    ..
                } => (
                    pos_of(then_flat, then_reconcile),
                    pos_of(else_flat, else_reconcile),
                ),
                _ => (None, None),
            };
            infos.push(Some(TraceInfo {
                blocks: chain.into_boxed_slice(),
                fused: acc,
                insts: acc_insts,
                suffix: suffix.into_boxed_slice(),
                suffix_insts: suffix_insts.into_boxed_slice(),
                re_then,
                re_else,
                prep_stable,
            }));
        }
        for (db, info) in blocks.iter_mut().zip(infos) {
            db.trace_info = info;
        }
        DecodedModule {
            im,
            table,
            blocks,
            func_base,
            call_args,
        }
    }

    /// The instrumented module this was decoded from.
    pub fn instrumented(&self) -> &'a InstrumentedModule {
        self.im
    }

    /// The cost table this was decoded under.
    pub fn cost_table(&self) -> &'a CostTable {
        self.table
    }

    /// Flat block index of `(f, b)`.
    #[inline]
    pub(crate) fn flat_index(&self, f: FuncId, b: BlockId) -> u32 {
        self.func_base[f.index()] + b.0
    }
}

/// The exec-CPU cost the interpreter charges for `inst` (excluding
/// memory-access energy, checkpoint runtime effects and callee bodies).
fn exec_cpu_cost(inst: &Inst, table: &CostTable) -> Cost {
    match inst {
        Inst::Bin { op, .. } => match op {
            BinOp::Mul => table.cycles_cost(table.mul_cycles),
            BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU => {
                table.cycles_cost(table.div_cycles)
            }
            _ => table.cycles_cost(table.alu_cycles),
        },
        Inst::Cmp { .. } => table.cycles_cost(table.cmp_cycles),
        Inst::Un { .. } => table.cycles_cost(table.alu_cycles),
        Inst::Copy { .. } => table.cycles_cost(table.copy_cycles),
        Inst::Select { .. } => table.cycles_cost(table.select_cycles),
        Inst::Load { .. } => table.cycles_cost(table.load_cycles),
        Inst::Store { .. } => table.cycles_cost(table.store_cycles),
        Inst::Call { args, .. } => {
            table.cycles_cost(table.call_cycles + table.copy_cycles * args.len() as u64)
        }
        Inst::Checkpoint { .. } | Inst::SaveVar { .. } | Inst::RestoreVar { .. } => Cost::ZERO,
        Inst::CondCheckpoint { .. } => table.cond_check,
    }
}

/// Computes the block-level fusion eligibility and the aggregate
/// accounting bundle (see [`FusedCosts`]). For the worst-case bound, a
/// VM access may find the copy invalid and trigger an implicit restore
/// of the whole variable, so each one contributes `restore_words_cost`
/// on top of its access cost; a full-scalar VM store materializes an
/// uninitialized copy for free and contributes none.
fn block_bound(
    insts: &[DInst],
    costs: &[Cost],
    term_cost: Cost,
    im: &InstrumentedModule,
    table: &CostTable,
) -> (bool, FusedCosts) {
    let mut f = FusedCosts {
        ub_cost: term_cost,
        exec_cost: term_cost,
        cpu_energy: term_cost.energy,
        ..FusedCosts::ZERO
    };
    for (di, &cost) in insts.iter().zip(costs) {
        match di {
            DInst::Load { var, class, .. } => {
                let access = table.access_cost(*class, AccessKind::Read);
                f.exec_cost = f.exec_cost + cost + access;
                f.cpu_energy += cost.energy;
                match class {
                    MemClass::Vm => {
                        f.vm_reads += 1;
                        f.vm_energy += access.energy;
                        f.ub_cost = f.ub_cost
                            + cost
                            + access
                            + table.restore_words_cost(im.module.var(*var).words);
                    }
                    MemClass::Nvm => {
                        f.nvm_reads += 1;
                        f.nvm_energy += access.energy;
                        f.ub_cost = f.ub_cost + cost + access;
                    }
                }
            }
            DInst::Store {
                var, idx, class, ..
            } => {
                let access = table.access_cost(*class, AccessKind::Write);
                f.exec_cost = f.exec_cost + cost + access;
                f.cpu_energy += cost.energy;
                match class {
                    MemClass::Vm => {
                        f.vm_writes += 1;
                        f.vm_energy += access.energy;
                        f.ub_cost = f.ub_cost + cost + access;
                        if idx.is_some() {
                            f.ub_cost += table.restore_words_cost(im.module.var(*var).words);
                        }
                    }
                    MemClass::Nvm => {
                        f.nvm_writes += 1;
                        f.nvm_energy += access.energy;
                        f.ub_cost = f.ub_cost + cost + access;
                    }
                }
            }
            _ if di.is_fusable() => {
                f.exec_cost += cost;
                f.cpu_energy += cost.energy;
                f.ub_cost += cost;
            }
            _ => return (false, FusedCosts::ZERO),
        }
    }
    (true, f)
}

/// Computes a fusable block's VM-residency prep list: its first VM-class
/// access per variable, in program order (see [`DecodedBlock::prep`]).
fn prep_ops(insts: &[DInst]) -> Box<[PrepOp]> {
    let mut seen: Vec<VarId> = Vec::new();
    let mut prep = Vec::new();
    for di in insts {
        let (var, kind) = match di {
            DInst::Load {
                var,
                class: MemClass::Vm,
                ..
            } => (*var, PrepKind::Restore),
            DInst::Store {
                var,
                idx,
                class: MemClass::Vm,
                ..
            } => (
                *var,
                if idx.is_none() {
                    PrepKind::AllocScalar
                } else {
                    PrepKind::Restore
                },
            ),
            _ => continue,
        };
        if !seen.contains(&var) {
            seen.push(var);
            prep.push(PrepOp { var, kind });
        }
    }
    prep.into_boxed_slice()
}

/// Resolves the memory class of an access to `var` inside a block whose
/// VM set is `plan` — the decision `Machine::var_class` used to make per
/// access.
fn resolve_class(im: &InstrumentedModule, plan: Option<&VarSet>, var: VarId) -> MemClass {
    if im.module.var(var).pinned_nvm {
        MemClass::Nvm
    } else if plan.is_some_and(|p| p.contains(var)) {
        MemClass::Vm
    } else {
        MemClass::Nvm
    }
}

fn decode_inst(
    inst: &Inst,
    im: &InstrumentedModule,
    plan: Option<&VarSet>,
    func_base: &[u32],
    arena_off: &[u32],
    call_args: &mut Vec<Operand>,
) -> DInst {
    match inst {
        Inst::Bin { dst, op, lhs, rhs } => DInst::Bin {
            dst: *dst,
            op: *op,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Cmp { dst, op, lhs, rhs } => DInst::Cmp {
            dst: *dst,
            op: *op,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Un { dst, op, src } => DInst::Un {
            dst: *dst,
            op: *op,
            src: *src,
        },
        Inst::Copy { dst, src } => DInst::Copy {
            dst: *dst,
            src: *src,
        },
        Inst::Select {
            dst,
            cond,
            then_val,
            else_val,
        } => DInst::Select {
            dst: *dst,
            cond: *cond,
            then_val: *then_val,
            else_val: *else_val,
        },
        Inst::Load { dst, var, idx } => DInst::Load {
            dst: *dst,
            var: *var,
            idx: *idx,
            class: resolve_class(im, plan, *var),
            base: arena_off[var.index()],
            words: u32::try_from(im.module.var(*var).words).expect("var size fits u32"),
        },
        Inst::Store { var, idx, src } => DInst::Store {
            var: *var,
            idx: *idx,
            src: *src,
            class: resolve_class(im, plan, *var),
            base: arena_off[var.index()],
            words: u32::try_from(im.module.var(*var).words).expect("var size fits u32"),
        },
        Inst::Call { dst, func, args } => {
            let start = u32::try_from(call_args.len()).expect("call args fit u32");
            call_args.extend(args.iter().copied());
            let end = u32::try_from(call_args.len()).expect("call args fit u32");
            let callee = im.module.func(*func);
            DInst::Call {
                dst: *dst,
                func: *func,
                args_start: start,
                args_end: end,
                n_regs: u32::try_from(callee.n_regs.max(1)).expect("register count fits u32"),
                entry: callee.entry,
                entry_flat: func_base[func.index()] + callee.entry.0,
                reconcile: needs_reconcile(plan, im.plan.get_ref(*func, callee.entry)),
            }
        }
        Inst::Checkpoint { id } => DInst::Checkpoint { id: *id },
        Inst::CondCheckpoint { id, period } => DInst::CondCheckpoint {
            id: *id,
            period: *period,
        },
        Inst::SaveVar { var } => DInst::SaveVar { var: *var },
        Inst::RestoreVar { var } => DInst::RestoreVar { var: *var },
    }
}

fn decode_term(
    term: &Terminator,
    im: &InstrumentedModule,
    plan: Option<&VarSet>,
    func_base: &[u32],
    func: FuncId,
) -> DTerm {
    let flat_of = |b: BlockId| func_base[func.index()] + b.0;
    let edge = |b: BlockId| needs_reconcile(plan, im.plan.get_ref(func, b));
    match term {
        Terminator::Br(t) => DTerm::Br {
            target: *t,
            flat: flat_of(*t),
            reconcile: edge(*t),
        },
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => DTerm::CondBr {
            cond: *cond,
            then_bb: *then_bb,
            then_flat: flat_of(*then_bb),
            then_reconcile: edge(*then_bb),
            else_bb: *else_bb,
            else_flat: flat_of(*else_bb),
            else_reconcile: edge(*else_bb),
        },
        Terminator::Ret(v) => DTerm::Ret(*v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrumented::AllocationPlan;
    use schematic_ir::{FunctionBuilder, ModuleBuilder, Variable};

    fn decoded_fixture(m: schematic_ir::Module) -> (InstrumentedModule, CostTable) {
        (InstrumentedModule::bare(m), CostTable::msp430fr5969())
    }

    #[test]
    fn pure_runs_fuse_with_summed_costs() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.copy(1);
        let b = f.bin(BinOp::Add, a, 2);
        let c = f.bin(BinOp::Mul, b, 3);
        f.ret(Some(c.into()));
        let main = mb.func(f.finish());
        let (im, table) = decoded_fixture(mb.finish(main));
        let d = DecodedModule::new(&im, &table);
        let db = &d.blocks[0];
        assert_eq!(db.fuse_len.as_ref(), &[3, 2, 1]);
        let expected = table.cycles_cost(table.copy_cycles)
            + table.cycles_cost(table.alu_cycles)
            + table.cycles_cost(table.mul_cycles);
        assert_eq!(db.fuse_cost[0], expected);
        assert_eq!(
            db.fuse_cost[0].cycles,
            db.costs.iter().map(|c| c.cycles).sum()
        );
    }

    #[test]
    fn loads_and_unsafe_divisions_break_superblocks() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x").with_init(vec![4]));
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.copy(8);
        let b = f.load_scalar(x); // memory: not fusable
        let c = f.bin(BinOp::DivS, a, b); // register divisor: may trap
        let d_ = f.bin(BinOp::DivS, c, 2); // safe immediate divisor
        let e = f.bin(BinOp::Add, d_, 1);
        f.ret(Some(e.into()));
        let main = mb.func(f.finish());
        let (im, table) = decoded_fixture(mb.finish(main));
        let d = DecodedModule::new(&im, &table);
        let db = &d.blocks[0];
        assert_eq!(db.fuse_len.as_ref(), &[1, 0, 0, 2, 1]);
        // The trailing safe-div + add run aggregates div + alu cycles.
        assert_eq!(db.fuse_cost[3].cycles, table.div_cycles + table.alu_cycles);
    }

    #[test]
    fn signed_division_by_minus_one_is_not_fused() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.copy(8);
        let b = f.bin(BinOp::DivS, a, -1); // i32::MIN / -1 would trap
        let c = f.bin(BinOp::DivU, b, -1); // unsigned: -1 is u32::MAX, safe
        f.ret(Some(c.into()));
        let main = mb.func(f.finish());
        let (im, table) = decoded_fixture(mb.finish(main));
        let d = DecodedModule::new(&im, &table);
        assert_eq!(d.blocks[0].fuse_len.as_ref(), &[1, 0, 1]);
    }

    #[test]
    fn classes_resolve_from_plan_and_pinning() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let p = mb.var(Variable::scalar("p").pinned());
        let mut f = FunctionBuilder::new("main", 0);
        let _ = f.load_scalar(x);
        let _ = f.load_scalar(p);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let mut plan = AllocationPlan::all_nvm(&m);
        let mut set = VarSet::new(2);
        set.insert(x);
        set.insert(p); // pinning must override plan membership
        plan.set(FuncId(0), BlockId(0), set);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![],
            plan,
            policy: crate::FailurePolicy::Rollback,
            boot_restore: vec![],
        };
        let table = CostTable::msp430fr5969();
        let d = DecodedModule::new(&im, &table);
        let classes: Vec<MemClass> = d.blocks[0]
            .insts
            .iter()
            .filter_map(|di| match di {
                DInst::Load { class, .. } => Some(*class),
                _ => None,
            })
            .collect();
        assert_eq!(classes, vec![MemClass::Vm, MemClass::Nvm]);
    }

    #[test]
    fn flat_indices_span_functions() {
        let mut mb = ModuleBuilder::new("m");
        let mut g = FunctionBuilder::new("g", 0);
        let extra = g.new_block("extra");
        g.br(extra);
        g.switch_to(extra);
        g.ret(None);
        let g = mb.func(g.finish());
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(g, vec![]);
        f.ret(None);
        let main = mb.func(f.finish());
        let (im, table) = decoded_fixture(mb.finish(main));
        let d = DecodedModule::new(&im, &table);
        assert_eq!(d.blocks.len(), 3);
        assert_eq!(d.flat_index(FuncId(0), BlockId(1)), 1);
        assert_eq!(d.flat_index(FuncId(1), BlockId(0)), 2);
        // The call's decoded entry points at g's flat entry block.
        let call = d.blocks[2]
            .insts
            .iter()
            .find_map(|di| match di {
                DInst::Call { entry_flat, .. } => Some(*entry_flat),
                _ => None,
            })
            .expect("main calls g");
        assert_eq!(call, 0);
    }
}
