//! Predecoded programs: the emulator's execution format.
//!
//! [`Machine`](crate::Machine) does not interpret [`schematic_ir::Inst`]
//! directly. An [`InstrumentedModule`] is lowered once, by
//! [`DecodedModule::new`], into flat per-block arrays in which every
//! per-instruction decision that is invariant for a whole run has already
//! been made:
//!
//! - every instruction's execution [`Cost`] is resolved from the
//!   [`CostTable`] (no per-step opcode match against raw cycle fields);
//! - every `load`/`store` carries its [`MemClass`], resolved from the
//!   active [`AllocationPlan`](crate::AllocationPlan) and the variable's
//!   `pinned_nvm` flag — the per-access plan lookup is gone entirely;
//! - every branch and call target carries the *flat* index of its
//!   destination block, so dispatch never walks `funcs[f].blocks[b]`,
//!   and every edge knows statically whether crossing it can require
//!   residency reconciliation (see [`DTerm`]);
//! - **superblocks**: for every instruction position, the length and
//!   aggregate worst-case cost of the maximal straight-line run of pure,
//!   trap-impossible register instructions starting there. When the power
//!   window has headroom for the whole run, the machine retires it with a
//!   single charge instead of per-instruction bookkeeping (see
//!   `Machine::step`), falling back to per-instruction stepping whenever
//!   a failure, a cycle-limit edge, or a re-execution boundary could land
//!   mid-run — so metrics, failure points and traces stay bit-identical.
//!
//! A decoded module borrows the instrumented module and cost table it was
//! built from; build one with [`DecodedModule::new`] and reuse it across
//! runs via `Machine::with_decoded` to amortize the lowering (the
//! convenience `Machine::new` decodes internally for one-shot runs).

use crate::instrumented::InstrumentedModule;
use schematic_energy::{Cost, CostTable, Energy, MemClass};
use schematic_ir::{
    AccessKind, BinOp, BlockId, CheckpointId, CmpOp, FuncId, Inst, Operand, Reg, Terminator, UnOp,
    VarId, VarSet,
};

/// A predecoded instruction. Mirrors [`Inst`] with run-invariant
/// decisions (memory class, callee entry points) baked in; all variants
/// are `Copy` so the interpreter can lift one out of the decoded arrays
/// without borrowing the machine.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DInst {
    /// `dst = op lhs, rhs`
    Bin {
        dst: Reg,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cmp.pred lhs, rhs`
    Cmp {
        dst: Reg,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = op src`
    Un { dst: Reg, op: UnOp, src: Operand },
    /// `dst = src`
    Copy { dst: Reg, src: Operand },
    /// `dst = select cond, a, b`
    Select {
        dst: Reg,
        cond: Operand,
        then_val: Operand,
        else_val: Operand,
    },
    /// `dst = load var[idx]` with the memory class pre-resolved from the
    /// allocation plan of the enclosing block.
    Load {
        dst: Reg,
        var: VarId,
        idx: Option<Operand>,
        class: MemClass,
    },
    /// `store var[idx], src` with the memory class pre-resolved.
    Store {
        var: VarId,
        idx: Option<Operand>,
        src: Operand,
        class: MemClass,
    },
    /// Direct call; arguments live in [`DecodedModule::call_args`]
    /// (`args` is a range into it) and the callee's register-file size
    /// and flat entry-block index are pre-resolved.
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args_start: u32,
        args_end: u32,
        n_regs: u32,
        entry: BlockId,
        entry_flat: u32,
        /// Whether the caller→callee-entry edge needs residency
        /// reconciliation (see [`DTerm`]).
        reconcile: bool,
    },
    /// Checkpoint intrinsic (runtime semantics from the checkpoint spec).
    Checkpoint { id: CheckpointId },
    /// Conditional checkpoint on a loop back-edge.
    CondCheckpoint { id: CheckpointId, period: u32 },
    /// ALFRED-style anticipated save.
    SaveVar { var: VarId },
    /// ALFRED-style deferred restore.
    RestoreVar { var: VarId },
}

impl DInst {
    /// Whether this instruction may join a superblock: a pure register
    /// operation that cannot trap, touch memory, or transfer control.
    /// Division/remainder qualify only when the divisor is an immediate
    /// that provably cannot trap (non-zero, and not `-1` for the signed
    /// forms, which would trap on `i32::MIN`).
    fn is_fusable(&self) -> bool {
        match self {
            DInst::Cmp { .. } | DInst::Un { .. } | DInst::Copy { .. } | DInst::Select { .. } => {
                true
            }
            DInst::Bin { op, rhs, .. } => match op {
                BinOp::DivS | BinOp::RemS => {
                    matches!(rhs, Operand::Imm(v) if *v != 0 && *v != -1)
                }
                BinOp::DivU | BinOp::RemU => matches!(rhs, Operand::Imm(v) if *v != 0),
                _ => true,
            },
            _ => false,
        }
    }
}

/// A predecoded terminator with flat successor indices.
///
/// Each edge also carries a precomputed `reconcile` flag: whether
/// residency reconciliation can have any effect when crossing it. Dirty
/// VM copies only arise from VM-class stores, and a store's class is VM
/// only when the variable is in the *current* block's plan — so at any
/// point the dirty set is a subset of the current plan. When the source
/// plan is a subset of the target plan the flush set is provably empty
/// and the edge skips reconciliation entirely. Return edges cannot be
/// resolved statically (one `ret` serves every call site) and always
/// reconcile.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DTerm {
    /// Unconditional branch.
    Br {
        target: BlockId,
        flat: u32,
        reconcile: bool,
    },
    /// Two-way conditional branch.
    CondBr {
        cond: Operand,
        then_bb: BlockId,
        then_flat: u32,
        then_reconcile: bool,
        else_bb: BlockId,
        else_flat: u32,
        else_reconcile: bool,
    },
    /// Function return.
    Ret(Option<Operand>),
}

/// Whether the edge from a block with VM set `src` to one with VM set
/// `tgt` needs residency reconciliation (see [`DTerm`]): only when some
/// variable of `src` — the superset of everything that can be dirty —
/// leaves the plan.
fn needs_reconcile(src: Option<&VarSet>, tgt: Option<&VarSet>) -> bool {
    match (src, tgt) {
        (None, _) => false,
        (Some(s), None) => !s.is_empty(),
        (Some(s), Some(t)) => !s.is_subset(t),
    }
}

/// One basic block in decoded form. The four instruction-indexed arrays
/// are parallel: `insts[ip]` executes with exec-CPU cost `costs[ip]`,
/// and `fuse_len[ip]`/`fuse_cost[ip]` describe the superblock (maximal
/// fusable run) starting at `ip` — zero length when `insts[ip]` itself
/// is not fusable, so any resume point (checkpoint restores land at
/// arbitrary `ip`) sees a correct, possibly shorter, run.
pub(crate) struct DecodedBlock<'a> {
    pub(crate) insts: Box<[DInst]>,
    pub(crate) costs: Box<[Cost]>,
    pub(crate) fuse_len: Box<[u32]>,
    pub(crate) fuse_cost: Box<[Cost]>,
    /// The block's VM allocation set (`None` = empty fallback set), as
    /// [`AllocationPlan::get_ref`](crate::AllocationPlan::get_ref) would
    /// resolve it — residency reconciliation reads this instead of
    /// re-querying the plan.
    pub(crate) plan: Option<&'a VarSet>,
    pub(crate) term: DTerm,
    pub(crate) term_cost: Cost,
    /// Whether the whole block qualifies for block-level fused dispatch:
    /// every instruction is either superblock-fusable or a plain
    /// load/store. Checkpoints, calls, save/restore intrinsics and
    /// possibly-trapping divisions disqualify the block.
    pub(crate) fusable: bool,
    /// Aggregate accounting for block-level dispatch. Meaningful only
    /// when `fusable`.
    pub(crate) fused: FusedCosts,
}

/// Precomputed whole-block accounting for a fusable block.
///
/// Once the guard in `Machine::step` proves the entire block executes as
/// one fused step, everything the emulator charges for it — Exec-category
/// cost, the CPU/VM/NVM energy split, and the access counters — is a
/// compile-time constant of the block: every instruction runs exactly
/// once and every access class was resolved at decode time. The hot loop
/// therefore only moves data; the machine commits this bundle once at
/// the end. Only implicit restores remain dynamic (they depend on VM
/// residency) and are charged separately as they occur.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedCosts {
    /// Worst-case total cost of executing the entire block — every
    /// instruction's CPU and access cost, the largest implicit-restore
    /// charge each VM access could trigger, and the terminator — used to
    /// prove that no power failure or cycle-limit edge can land inside a
    /// block-level dispatch.
    pub(crate) ub_cost: Cost,
    /// Exact Exec-category total: CPU + access costs of every
    /// instruction plus the terminator (excludes implicit restores).
    pub(crate) exec_cost: Cost,
    /// CPU-only energy share of `exec_cost` (instructions + terminator).
    pub(crate) cpu_energy: Energy,
    /// VM access-energy share of `exec_cost`.
    pub(crate) vm_energy: Energy,
    /// NVM access-energy share of `exec_cost`.
    pub(crate) nvm_energy: Energy,
    pub(crate) vm_reads: u32,
    pub(crate) vm_writes: u32,
    pub(crate) nvm_reads: u32,
    pub(crate) nvm_writes: u32,
}

impl FusedCosts {
    const ZERO: FusedCosts = FusedCosts {
        ub_cost: Cost::ZERO,
        exec_cost: Cost::ZERO,
        cpu_energy: Energy::ZERO,
        vm_energy: Energy::ZERO,
        nvm_energy: Energy::ZERO,
        vm_reads: 0,
        vm_writes: 0,
        nvm_reads: 0,
        nvm_writes: 0,
    };
}

/// An [`InstrumentedModule`] lowered to the emulator's execution format.
///
/// Build once per `(module, cost table)` pair and share across runs:
///
/// ```
/// use schematic_emu::{DecodedModule, InstrumentedModule, Machine, RunConfig};
/// use schematic_energy::CostTable;
/// use schematic_ir::parse_module;
///
/// let m = parse_module("func @main(0) {\nentry:\n  r0 = mov 42\n  ret r0\n}").unwrap();
/// let im = InstrumentedModule::bare(m);
/// let table = CostTable::msp430fr5969();
/// let decoded = DecodedModule::new(&im, &table);
/// for _ in 0..3 {
///     let out = Machine::with_decoded(&decoded, RunConfig::default()).run()?;
///     assert_eq!(out.result, Some(42));
/// }
/// # Ok::<(), schematic_emu::EmuError>(())
/// ```
pub struct DecodedModule<'a> {
    pub(crate) im: &'a InstrumentedModule,
    pub(crate) table: &'a CostTable,
    pub(crate) blocks: Vec<DecodedBlock<'a>>,
    /// Flat index of each function's block 0.
    func_base: Vec<u32>,
    /// Flattened argument lists of every call instruction.
    pub(crate) call_args: Vec<Operand>,
}

impl<'a> DecodedModule<'a> {
    /// Lowers `im` into flat execution arrays under `table`'s costs.
    pub fn new(im: &'a InstrumentedModule, table: &'a CostTable) -> Self {
        let module = &im.module;
        let mut func_base = Vec::with_capacity(module.funcs.len());
        let mut total_blocks = 0usize;
        for f in &module.funcs {
            func_base.push(u32::try_from(total_blocks).expect("block count fits u32"));
            total_blocks += f.blocks.len();
        }
        let mut blocks = Vec::with_capacity(total_blocks);
        let mut call_args = Vec::new();
        for (fi, func) in module.funcs.iter().enumerate() {
            let fid = FuncId::from_usize(fi);
            for (bi, block) in func.blocks.iter().enumerate() {
                let bid = BlockId::from_usize(bi);
                let plan = im.plan.get_ref(fid, bid);
                let n = block.insts.len();
                let mut insts = Vec::with_capacity(n);
                let mut costs = Vec::with_capacity(n);
                for inst in &block.insts {
                    let di = decode_inst(inst, im, plan, &func_base, &mut call_args);
                    // The decoded cost is the exec-CPU part only; memory
                    // access energy is charged separately at run time from
                    // the pre-resolved class, exactly as the interpreter
                    // always has.
                    costs.push(exec_cpu_cost(inst, table));
                    insts.push(di);
                }
                // Superblocks: suffix-scan the fusable run length and
                // aggregate cost at each position.
                let mut fuse_len = vec![0u32; n];
                let mut fuse_cost = vec![Cost::ZERO; n];
                for ip in (0..n).rev() {
                    if insts[ip].is_fusable() {
                        let (len, cost) = if ip + 1 < n {
                            (fuse_len[ip + 1], fuse_cost[ip + 1])
                        } else {
                            (0, Cost::ZERO)
                        };
                        fuse_len[ip] = len + 1;
                        fuse_cost[ip] = costs[ip] + cost;
                    }
                }
                let term_cost = table.term_cost(&block.term);
                let (fusable, fused) = block_bound(&insts, &costs, term_cost, im, table);
                blocks.push(DecodedBlock {
                    insts: insts.into_boxed_slice(),
                    costs: costs.into_boxed_slice(),
                    fuse_len: fuse_len.into_boxed_slice(),
                    fuse_cost: fuse_cost.into_boxed_slice(),
                    plan,
                    term: decode_term(&block.term, im, plan, &func_base, fid),
                    term_cost,
                    fusable,
                    fused,
                });
            }
        }
        DecodedModule {
            im,
            table,
            blocks,
            func_base,
            call_args,
        }
    }

    /// The instrumented module this was decoded from.
    pub fn instrumented(&self) -> &'a InstrumentedModule {
        self.im
    }

    /// The cost table this was decoded under.
    pub fn cost_table(&self) -> &'a CostTable {
        self.table
    }

    /// Flat block index of `(f, b)`.
    #[inline]
    pub(crate) fn flat_index(&self, f: FuncId, b: BlockId) -> u32 {
        self.func_base[f.index()] + b.0
    }
}

/// The exec-CPU cost the interpreter charges for `inst` (excluding
/// memory-access energy, checkpoint runtime effects and callee bodies).
fn exec_cpu_cost(inst: &Inst, table: &CostTable) -> Cost {
    match inst {
        Inst::Bin { op, .. } => match op {
            BinOp::Mul => table.cycles_cost(table.mul_cycles),
            BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU => {
                table.cycles_cost(table.div_cycles)
            }
            _ => table.cycles_cost(table.alu_cycles),
        },
        Inst::Cmp { .. } => table.cycles_cost(table.cmp_cycles),
        Inst::Un { .. } => table.cycles_cost(table.alu_cycles),
        Inst::Copy { .. } => table.cycles_cost(table.copy_cycles),
        Inst::Select { .. } => table.cycles_cost(table.select_cycles),
        Inst::Load { .. } => table.cycles_cost(table.load_cycles),
        Inst::Store { .. } => table.cycles_cost(table.store_cycles),
        Inst::Call { args, .. } => {
            table.cycles_cost(table.call_cycles + table.copy_cycles * args.len() as u64)
        }
        Inst::Checkpoint { .. } | Inst::SaveVar { .. } | Inst::RestoreVar { .. } => Cost::ZERO,
        Inst::CondCheckpoint { .. } => table.cond_check,
    }
}

/// Computes the block-level fusion eligibility and the aggregate
/// accounting bundle (see [`FusedCosts`]). For the worst-case bound, a
/// VM access may find the copy invalid and trigger an implicit restore
/// of the whole variable, so each one contributes `restore_words_cost`
/// on top of its access cost; a full-scalar VM store materializes an
/// uninitialized copy for free and contributes none.
fn block_bound(
    insts: &[DInst],
    costs: &[Cost],
    term_cost: Cost,
    im: &InstrumentedModule,
    table: &CostTable,
) -> (bool, FusedCosts) {
    let mut f = FusedCosts {
        ub_cost: term_cost,
        exec_cost: term_cost,
        cpu_energy: term_cost.energy,
        ..FusedCosts::ZERO
    };
    for (di, &cost) in insts.iter().zip(costs) {
        match di {
            DInst::Load { var, class, .. } => {
                let access = table.access_cost(*class, AccessKind::Read);
                f.exec_cost = f.exec_cost + cost + access;
                f.cpu_energy += cost.energy;
                match class {
                    MemClass::Vm => {
                        f.vm_reads += 1;
                        f.vm_energy += access.energy;
                        f.ub_cost = f.ub_cost
                            + cost
                            + access
                            + table.restore_words_cost(im.module.var(*var).words);
                    }
                    MemClass::Nvm => {
                        f.nvm_reads += 1;
                        f.nvm_energy += access.energy;
                        f.ub_cost = f.ub_cost + cost + access;
                    }
                }
            }
            DInst::Store {
                var, idx, class, ..
            } => {
                let access = table.access_cost(*class, AccessKind::Write);
                f.exec_cost = f.exec_cost + cost + access;
                f.cpu_energy += cost.energy;
                match class {
                    MemClass::Vm => {
                        f.vm_writes += 1;
                        f.vm_energy += access.energy;
                        f.ub_cost = f.ub_cost + cost + access;
                        if idx.is_some() {
                            f.ub_cost += table.restore_words_cost(im.module.var(*var).words);
                        }
                    }
                    MemClass::Nvm => {
                        f.nvm_writes += 1;
                        f.nvm_energy += access.energy;
                        f.ub_cost = f.ub_cost + cost + access;
                    }
                }
            }
            _ if di.is_fusable() => {
                f.exec_cost += cost;
                f.cpu_energy += cost.energy;
                f.ub_cost += cost;
            }
            _ => return (false, FusedCosts::ZERO),
        }
    }
    (true, f)
}

/// Resolves the memory class of an access to `var` inside a block whose
/// VM set is `plan` — the decision `Machine::var_class` used to make per
/// access.
fn resolve_class(im: &InstrumentedModule, plan: Option<&VarSet>, var: VarId) -> MemClass {
    if im.module.var(var).pinned_nvm {
        MemClass::Nvm
    } else if plan.is_some_and(|p| p.contains(var)) {
        MemClass::Vm
    } else {
        MemClass::Nvm
    }
}

fn decode_inst(
    inst: &Inst,
    im: &InstrumentedModule,
    plan: Option<&VarSet>,
    func_base: &[u32],
    call_args: &mut Vec<Operand>,
) -> DInst {
    match inst {
        Inst::Bin { dst, op, lhs, rhs } => DInst::Bin {
            dst: *dst,
            op: *op,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Cmp { dst, op, lhs, rhs } => DInst::Cmp {
            dst: *dst,
            op: *op,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Un { dst, op, src } => DInst::Un {
            dst: *dst,
            op: *op,
            src: *src,
        },
        Inst::Copy { dst, src } => DInst::Copy {
            dst: *dst,
            src: *src,
        },
        Inst::Select {
            dst,
            cond,
            then_val,
            else_val,
        } => DInst::Select {
            dst: *dst,
            cond: *cond,
            then_val: *then_val,
            else_val: *else_val,
        },
        Inst::Load { dst, var, idx } => DInst::Load {
            dst: *dst,
            var: *var,
            idx: *idx,
            class: resolve_class(im, plan, *var),
        },
        Inst::Store { var, idx, src } => DInst::Store {
            var: *var,
            idx: *idx,
            src: *src,
            class: resolve_class(im, plan, *var),
        },
        Inst::Call { dst, func, args } => {
            let start = u32::try_from(call_args.len()).expect("call args fit u32");
            call_args.extend(args.iter().copied());
            let end = u32::try_from(call_args.len()).expect("call args fit u32");
            let callee = im.module.func(*func);
            DInst::Call {
                dst: *dst,
                func: *func,
                args_start: start,
                args_end: end,
                n_regs: u32::try_from(callee.n_regs.max(1)).expect("register count fits u32"),
                entry: callee.entry,
                entry_flat: func_base[func.index()] + callee.entry.0,
                reconcile: needs_reconcile(plan, im.plan.get_ref(*func, callee.entry)),
            }
        }
        Inst::Checkpoint { id } => DInst::Checkpoint { id: *id },
        Inst::CondCheckpoint { id, period } => DInst::CondCheckpoint {
            id: *id,
            period: *period,
        },
        Inst::SaveVar { var } => DInst::SaveVar { var: *var },
        Inst::RestoreVar { var } => DInst::RestoreVar { var: *var },
    }
}

fn decode_term(
    term: &Terminator,
    im: &InstrumentedModule,
    plan: Option<&VarSet>,
    func_base: &[u32],
    func: FuncId,
) -> DTerm {
    let flat_of = |b: BlockId| func_base[func.index()] + b.0;
    let edge = |b: BlockId| needs_reconcile(plan, im.plan.get_ref(func, b));
    match term {
        Terminator::Br(t) => DTerm::Br {
            target: *t,
            flat: flat_of(*t),
            reconcile: edge(*t),
        },
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => DTerm::CondBr {
            cond: *cond,
            then_bb: *then_bb,
            then_flat: flat_of(*then_bb),
            then_reconcile: edge(*then_bb),
            else_bb: *else_bb,
            else_flat: flat_of(*else_bb),
            else_reconcile: edge(*else_bb),
        },
        Terminator::Ret(v) => DTerm::Ret(*v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrumented::AllocationPlan;
    use schematic_ir::{FunctionBuilder, ModuleBuilder, Variable};

    fn decoded_fixture(m: schematic_ir::Module) -> (InstrumentedModule, CostTable) {
        (InstrumentedModule::bare(m), CostTable::msp430fr5969())
    }

    #[test]
    fn pure_runs_fuse_with_summed_costs() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.copy(1);
        let b = f.bin(BinOp::Add, a, 2);
        let c = f.bin(BinOp::Mul, b, 3);
        f.ret(Some(c.into()));
        let main = mb.func(f.finish());
        let (im, table) = decoded_fixture(mb.finish(main));
        let d = DecodedModule::new(&im, &table);
        let db = &d.blocks[0];
        assert_eq!(db.fuse_len.as_ref(), &[3, 2, 1]);
        let expected = table.cycles_cost(table.copy_cycles)
            + table.cycles_cost(table.alu_cycles)
            + table.cycles_cost(table.mul_cycles);
        assert_eq!(db.fuse_cost[0], expected);
        assert_eq!(
            db.fuse_cost[0].cycles,
            db.costs.iter().map(|c| c.cycles).sum()
        );
    }

    #[test]
    fn loads_and_unsafe_divisions_break_superblocks() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x").with_init(vec![4]));
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.copy(8);
        let b = f.load_scalar(x); // memory: not fusable
        let c = f.bin(BinOp::DivS, a, b); // register divisor: may trap
        let d_ = f.bin(BinOp::DivS, c, 2); // safe immediate divisor
        let e = f.bin(BinOp::Add, d_, 1);
        f.ret(Some(e.into()));
        let main = mb.func(f.finish());
        let (im, table) = decoded_fixture(mb.finish(main));
        let d = DecodedModule::new(&im, &table);
        let db = &d.blocks[0];
        assert_eq!(db.fuse_len.as_ref(), &[1, 0, 0, 2, 1]);
        // The trailing safe-div + add run aggregates div + alu cycles.
        assert_eq!(db.fuse_cost[3].cycles, table.div_cycles + table.alu_cycles);
    }

    #[test]
    fn signed_division_by_minus_one_is_not_fused() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = FunctionBuilder::new("main", 0);
        let a = f.copy(8);
        let b = f.bin(BinOp::DivS, a, -1); // i32::MIN / -1 would trap
        let c = f.bin(BinOp::DivU, b, -1); // unsigned: -1 is u32::MAX, safe
        f.ret(Some(c.into()));
        let main = mb.func(f.finish());
        let (im, table) = decoded_fixture(mb.finish(main));
        let d = DecodedModule::new(&im, &table);
        assert_eq!(d.blocks[0].fuse_len.as_ref(), &[1, 0, 1]);
    }

    #[test]
    fn classes_resolve_from_plan_and_pinning() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let p = mb.var(Variable::scalar("p").pinned());
        let mut f = FunctionBuilder::new("main", 0);
        let _ = f.load_scalar(x);
        let _ = f.load_scalar(p);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let mut plan = AllocationPlan::all_nvm(&m);
        let mut set = VarSet::new(2);
        set.insert(x);
        set.insert(p); // pinning must override plan membership
        plan.set(FuncId(0), BlockId(0), set);
        let im = InstrumentedModule {
            technique: "test".into(),
            module: m,
            checkpoints: vec![],
            plan,
            policy: crate::FailurePolicy::Rollback,
            boot_restore: vec![],
        };
        let table = CostTable::msp430fr5969();
        let d = DecodedModule::new(&im, &table);
        let classes: Vec<MemClass> = d.blocks[0]
            .insts
            .iter()
            .filter_map(|di| match di {
                DInst::Load { class, .. } => Some(*class),
                _ => None,
            })
            .collect();
        assert_eq!(classes, vec![MemClass::Vm, MemClass::Nvm]);
    }

    #[test]
    fn flat_indices_span_functions() {
        let mut mb = ModuleBuilder::new("m");
        let mut g = FunctionBuilder::new("g", 0);
        let extra = g.new_block("extra");
        g.br(extra);
        g.switch_to(extra);
        g.ret(None);
        let g = mb.func(g.finish());
        let mut f = FunctionBuilder::new("main", 0);
        f.call_void(g, vec![]);
        f.ret(None);
        let main = mb.func(f.finish());
        let (im, table) = decoded_fixture(mb.finish(main));
        let d = DecodedModule::new(&im, &table);
        assert_eq!(d.blocks.len(), 3);
        assert_eq!(d.flat_index(FuncId(0), BlockId(1)), 1);
        assert_eq!(d.flat_index(FuncId(1), BlockId(0)), 2);
        // The call's decoded entry points at g's flat entry block.
        let call = d.blocks[2]
            .insts
            .iter()
            .find_map(|di| match di {
                DInst::Call { entry_flat, .. } => Some(*entry_flat),
                _ => None,
            })
            .expect("main calls g");
        assert_eq!(call, 0);
    }
}
