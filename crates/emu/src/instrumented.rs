//! Instrumented programs: a module plus everything the intermittent
//! runtime needs — checkpoint specs, per-block memory allocation, and the
//! failure-handling policy.
//!
//! Every technique (SCHEMATIC and the four baselines) compiles a plain
//! [`Module`] into an [`InstrumentedModule`]; the emulator executes the
//! latter.

use schematic_ir::hash::{hash_module_into, Digest, StableHasher};
use schematic_ir::{BlockId, CheckpointId, FuncId, Module, VarId, VarSet, WORD_BYTES};

/// What happens when power fails between checkpoints (§IV-A.b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// SCHEMATIC / ROCKCLIMB: checkpoints also *sleep until the capacitor
    /// is full*, so placement guarantees no failure mid-interval; if one
    /// nevertheless occurs the runtime restores the last checkpoint.
    WaitRecharge,
    /// RATCHET / MEMENTOS / ALFRED: execution continues past checkpoints;
    /// a power failure rolls back to the most recent committed checkpoint
    /// and re-executes (re-execution energy is tracked separately).
    Rollback,
}

/// When a checkpoint instruction actually commits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointKind {
    /// Always commits.
    Plain,
    /// MEMENTOS-style: measures the capacitor and commits only when the
    /// remaining charge fraction is below `threshold` (0.0–1.0).
    Guarded {
        /// State-of-charge fraction below which the checkpoint commits.
        threshold: f64,
    },
}

/// Compile-time description of one checkpoint location.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// VM-resident variables flushed to NVM when the checkpoint commits
    /// (the registers/stack are always saved in addition).
    pub save_vars: Vec<VarId>,
    /// Variables loaded into VM when execution resumes from this
    /// checkpoint (after the sleep, or after a power failure).
    pub restore_vars: Vec<VarId>,
    /// Commit behaviour.
    pub kind: CheckpointKind,
}

impl CheckpointSpec {
    /// A checkpoint saving and restoring nothing beyond registers.
    pub fn registers_only() -> Self {
        CheckpointSpec {
            save_vars: Vec::new(),
            restore_vars: Vec::new(),
            kind: CheckpointKind::Plain,
        }
    }

    /// Total data words saved (excluding the register file).
    pub fn save_words(&self, module: &Module) -> usize {
        self.save_vars.iter().map(|v| module.var(*v).words).sum()
    }

    /// Total data words restored (excluding the register file).
    pub fn restore_words(&self, module: &Module) -> usize {
        self.restore_vars.iter().map(|v| module.var(*v).words).sum()
    }
}

/// Per-block VM/NVM placement of every variable.
///
/// `get(f, b)` is the set of variables resident in VM while block `b` of
/// function `f` executes; everything else is accessed in NVM. SCHEMATIC
/// computes a different set per inter-checkpoint region; the baselines
/// use the two trivial plans [`AllocationPlan::all_nvm`] and
/// [`AllocationPlan::all_vm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationPlan {
    per_func: Vec<Vec<VarSet>>,
}

impl AllocationPlan {
    /// Every variable in NVM everywhere.
    pub fn all_nvm(module: &Module) -> Self {
        AllocationPlan {
            per_func: module
                .funcs
                .iter()
                .map(|f| vec![VarSet::new(module.vars.len()); f.blocks.len()])
                .collect(),
        }
    }

    /// Every non-pinned variable in VM everywhere (MEMENTOS/ALFRED).
    pub fn all_vm(module: &Module) -> Self {
        let mut set = VarSet::new(module.vars.len());
        for (v, var) in module.iter_vars() {
            if !var.pinned_nvm {
                set.insert(v);
            }
        }
        AllocationPlan {
            per_func: module
                .funcs
                .iter()
                .map(|f| vec![set.clone(); f.blocks.len()])
                .collect(),
        }
    }

    /// The VM set for block `b` of function `f`.
    ///
    /// Blocks added after the plan was built (by instrumentation edge
    /// splits) fall back to an empty set unless recorded via
    /// [`AllocationPlan::set`].
    pub fn get(&self, f: FuncId, b: BlockId) -> VarSet {
        self.get_ref(f, b).cloned().unwrap_or_default()
    }

    /// Borrowing variant of [`AllocationPlan::get`]: `None` stands for
    /// the empty fallback set. The emulator's per-access plan lookups go
    /// through this to avoid cloning a `VarSet` on every memory op.
    pub fn get_ref(&self, f: FuncId, b: BlockId) -> Option<&VarSet> {
        self.per_func
            .get(f.index())
            .and_then(|blocks| blocks.get(b.index()))
    }

    /// Records the VM set for block `b` of function `f`, growing the
    /// table as needed.
    pub fn set(&mut self, f: FuncId, b: BlockId, vars: VarSet) {
        if self.per_func.len() <= f.index() {
            self.per_func.resize(f.index() + 1, Vec::new());
        }
        let blocks = &mut self.per_func[f.index()];
        if blocks.len() <= b.index() {
            blocks.resize(b.index() + 1, VarSet::empty());
        }
        blocks[b.index()] = vars;
    }

    /// Feeds the plan into a stable hasher: per-function, per-block VM
    /// sets in deterministic (index) order, each as sorted member ids.
    pub fn hash_into(&self, h: &mut StableHasher) {
        h.write_u64(self.per_func.len() as u64);
        for blocks in &self.per_func {
            h.write_u64(blocks.len() as u64);
            for set in blocks {
                h.write_varset(set);
            }
        }
    }

    /// Largest VM footprint (bytes) over all blocks — must not exceed
    /// `SVM` for the plan to be executable (Table I's criterion).
    pub fn peak_bytes(&self, module: &Module) -> usize {
        let mut peak = 0;
        for blocks in &self.per_func {
            for set in blocks {
                let bytes: usize = set.iter().map(|v| module.var(v).words * WORD_BYTES).sum();
                peak = peak.max(bytes);
            }
        }
        peak
    }
}

/// A module plus its intermittency instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentedModule {
    /// Technique name, for reports ("Schematic", "Ratchet", ...).
    pub technique: String,
    /// The instrumented program (checkpoint intrinsics inserted).
    pub module: Module,
    /// Checkpoint table, indexed by [`CheckpointId`].
    pub checkpoints: Vec<CheckpointSpec>,
    /// Per-block VM/NVM placement.
    pub plan: AllocationPlan,
    /// Failure handling.
    pub policy: FailurePolicy,
    /// Variables loaded into VM at first boot (before the entry block
    /// runs). Checked against the entry block's plan by the runtime.
    pub boot_restore: Vec<VarId>,
}

impl InstrumentedModule {
    /// Wraps a plain module with no checkpoints, an all-NVM plan and
    /// rollback policy — the "bare" execution used for timing runs and
    /// profiling (Table II).
    pub fn bare(module: Module) -> Self {
        let plan = AllocationPlan::all_nvm(&module);
        InstrumentedModule {
            technique: "bare".into(),
            module,
            checkpoints: Vec::new(),
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: Vec::new(),
        }
    }

    /// Like [`InstrumentedModule::bare`] but with every non-pinned
    /// variable in VM — the configuration the paper uses to measure
    /// baseline execution time "with all data in VM" (Table II).
    pub fn bare_all_vm(module: Module) -> Self {
        let plan = AllocationPlan::all_vm(&module);
        let boot: Vec<VarId> = plan
            .get(module.entry_func(), module.func(module.entry_func()).entry)
            .iter()
            .collect();
        InstrumentedModule {
            technique: "bare-vm".into(),
            module,
            checkpoints: Vec::new(),
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: boot,
        }
    }

    /// Looks up a checkpoint spec.
    pub fn spec(&self, id: CheckpointId) -> Option<&CheckpointSpec> {
        self.checkpoints.get(id.index())
    }

    /// Registers a new checkpoint spec, returning its id.
    pub fn add_spec(&mut self, spec: CheckpointSpec) -> CheckpointId {
        let id = CheckpointId::from_usize(self.checkpoints.len());
        self.checkpoints.push(spec);
        id
    }

    /// Stable structural digest of the whole instrumented program:
    /// module structure, checkpoint table (save/restore lists in stored
    /// order, guard thresholds by bit pattern), the allocation plan,
    /// failure policy, boot-restore list and technique name. Any
    /// instruction edit, checkpoint placement change or allocation
    /// decision change produces a different digest; repeated compiles of
    /// the same source produce the same one (no map-order or pointer
    /// dependence anywhere in the visitation).
    pub fn stable_digest(&self) -> Digest {
        let mut h = StableHasher::new();
        h.write_str(&self.technique);
        hash_module_into(&mut h, &self.module);
        h.write_u64(self.checkpoints.len() as u64);
        for spec in &self.checkpoints {
            h.write_u64(spec.save_vars.len() as u64);
            for v in &spec.save_vars {
                h.write_u64(u64::from(v.0));
            }
            h.write_u64(spec.restore_vars.len() as u64);
            for v in &spec.restore_vars {
                h.write_u64(u64::from(v.0));
            }
            match spec.kind {
                CheckpointKind::Plain => h.write_tag(0xC0),
                CheckpointKind::Guarded { threshold } => {
                    h.write_tag(0xC1);
                    h.write_f64_bits(threshold);
                }
            }
        }
        self.plan.hash_into(&mut h);
        h.write_tag(match self.policy {
            FailurePolicy::WaitRecharge => 0xD0,
            FailurePolicy::Rollback => 0xD1,
        });
        h.write_u64(self.boot_restore.len() as u64);
        for v in &self.boot_restore {
            h.write_u64(u64::from(v.0));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{FunctionBuilder, ModuleBuilder, Variable};

    fn module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.var(Variable::scalar("x"));
        mb.var(Variable::array("a", 16).pinned());
        let mut f = FunctionBuilder::new("main", 0);
        f.ret(None);
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn all_nvm_plan_is_empty() {
        let m = module();
        let plan = AllocationPlan::all_nvm(&m);
        assert!(plan.get(FuncId(0), BlockId(0)).is_empty());
        assert_eq!(plan.peak_bytes(&m), 0);
    }

    #[test]
    fn all_vm_plan_skips_pinned() {
        let m = module();
        let plan = AllocationPlan::all_vm(&m);
        let set = plan.get(FuncId(0), BlockId(0));
        assert!(set.contains(VarId(0)));
        assert!(!set.contains(VarId(1))); // pinned
        assert_eq!(plan.peak_bytes(&m), WORD_BYTES);
    }

    #[test]
    fn plan_set_grows_table() {
        let m = module();
        let mut plan = AllocationPlan::all_nvm(&m);
        let mut set = VarSet::new(2);
        set.insert(VarId(0));
        plan.set(FuncId(0), BlockId(5), set.clone());
        assert_eq!(plan.get(FuncId(0), BlockId(5)), set);
        // Unknown locations fall back to empty.
        assert!(plan.get(FuncId(3), BlockId(0)).is_empty());
    }

    #[test]
    fn spec_word_counts() {
        let m = module();
        let spec = CheckpointSpec {
            save_vars: vec![VarId(0), VarId(1)],
            restore_vars: vec![VarId(1)],
            kind: CheckpointKind::Plain,
        };
        assert_eq!(spec.save_words(&m), 17);
        assert_eq!(spec.restore_words(&m), 16);
        let r = CheckpointSpec::registers_only();
        assert_eq!(r.save_words(&m), 0);
    }

    #[test]
    fn bare_wrappers() {
        let m = module();
        let bare = InstrumentedModule::bare(m.clone());
        assert!(bare.checkpoints.is_empty());
        assert_eq!(bare.policy, FailurePolicy::Rollback);
        let vm = InstrumentedModule::bare_all_vm(m);
        assert_eq!(vm.boot_restore, vec![VarId(0)]);
    }

    #[test]
    fn stable_digest_reacts_to_every_decision_layer() {
        let base = InstrumentedModule::bare(module());
        assert_eq!(base.stable_digest(), base.stable_digest());

        // Checkpoint table.
        let mut ckpt = base.clone();
        ckpt.add_spec(CheckpointSpec::registers_only());
        assert_ne!(ckpt.stable_digest(), base.stable_digest());
        let mut guarded = ckpt.clone();
        guarded.checkpoints[0].kind = CheckpointKind::Guarded { threshold: 0.5 };
        assert_ne!(guarded.stable_digest(), ckpt.stable_digest());

        // Allocation plan.
        let mut alloc = base.clone();
        let mut set = VarSet::new(2);
        set.insert(VarId(0));
        alloc.plan.set(FuncId(0), BlockId(0), set);
        assert_ne!(alloc.stable_digest(), base.stable_digest());

        // Policy, boot list, technique label.
        let mut pol = base.clone();
        pol.policy = FailurePolicy::WaitRecharge;
        assert_ne!(pol.stable_digest(), base.stable_digest());
        let mut boot = base.clone();
        boot.boot_restore.push(VarId(0));
        assert_ne!(boot.stable_digest(), base.stable_digest());
        let mut tech = base.clone();
        tech.technique = "other".into();
        assert_ne!(tech.stable_digest(), base.stable_digest());
    }
}
