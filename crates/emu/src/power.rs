//! Power supply models.
//!
//! The paper's evaluation (§IV-A.c) triggers power failures periodically:
//! the *time between power failures* (TBPF) is a fixed number of active
//! cycles. Wait-mode techniques that sleep at a checkpoint resume at the
//! start of the next period with a full capacitor, so sleeping simply
//! resets the window.

/// How the platform is powered during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerModel {
    /// Stable power: no failures ever (used for timing runs and
    /// profiling).
    Continuous,
    /// A power failure every `tbpf` active cycles.
    Periodic {
        /// Time between power failures, in cycles (> 0).
        tbpf: u64,
    },
}

/// Tracks the position within the current power period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerState {
    model: PowerModel,
    cycles_in_window: u64,
}

impl PowerState {
    /// Creates a fully charged supply.
    ///
    /// # Panics
    ///
    /// Panics if a periodic model has `tbpf == 0`.
    pub fn new(model: PowerModel) -> Self {
        if let PowerModel::Periodic { tbpf } = model {
            assert!(tbpf > 0, "TBPF must be positive");
        }
        PowerState {
            model,
            cycles_in_window: 0,
        }
    }

    /// The model.
    pub fn model(&self) -> PowerModel {
        self.model
    }

    /// Advances by `cycles` of active execution; returns `true` if a
    /// power failure occurs at (or before) the end of those cycles.
    pub fn advance(&mut self, cycles: u64) -> bool {
        match self.model {
            PowerModel::Continuous => false,
            PowerModel::Periodic { tbpf } => {
                self.cycles_in_window += cycles;
                self.cycles_in_window >= tbpf
            }
        }
    }

    /// Whether the window can absorb `cycles` more active cycles
    /// *without* a power failure — i.e. whether `advance(cycles)` would
    /// return `false`. Superblock fusion uses this to prove that no
    /// failure can land inside a fused run.
    pub fn headroom(&self, cycles: u64) -> bool {
        match self.model {
            PowerModel::Continuous => true,
            PowerModel::Periodic { tbpf } => self.cycles_in_window + cycles < tbpf,
        }
    }

    /// Remaining charge fraction in `[0, 1]` — what a MEMENTOS voltage
    /// measurement observes. Continuous power always reads full.
    pub fn remaining_fraction(&self) -> f64 {
        match self.model {
            PowerModel::Continuous => 1.0,
            PowerModel::Periodic { tbpf } => {
                1.0 - (self.cycles_in_window.min(tbpf) as f64 / tbpf as f64)
            }
        }
    }

    /// Restart after a power failure: the capacitor recharged while the
    /// platform was off.
    pub fn reboot(&mut self) {
        self.cycles_in_window = 0;
    }

    /// Wait-mode sleep until fully recharged (Fig. 3 step 2).
    pub fn replenish(&mut self) {
        self.cycles_in_window = 0;
    }

    /// Cycles executed in the current window.
    pub fn window_cycles(&self) -> u64 {
        self.cycles_in_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_never_fails() {
        let mut p = PowerState::new(PowerModel::Continuous);
        assert!(!p.advance(1_000_000_000));
        assert_eq!(p.remaining_fraction(), 1.0);
    }

    #[test]
    fn periodic_fails_at_tbpf() {
        let mut p = PowerState::new(PowerModel::Periodic { tbpf: 100 });
        assert!(p.headroom(99));
        assert!(!p.headroom(100));
        assert!(!p.advance(99));
        assert!(p.headroom(0));
        assert!(!p.headroom(1));
        assert!((p.remaining_fraction() - 0.01).abs() < 1e-9);
        assert!(p.advance(1));
        p.reboot();
        assert_eq!(p.window_cycles(), 0);
        assert_eq!(p.remaining_fraction(), 1.0);
    }

    #[test]
    fn replenish_resets_window() {
        let mut p = PowerState::new(PowerModel::Periodic { tbpf: 100 });
        p.advance(60);
        p.replenish();
        assert!(!p.advance(99));
        assert!(p.advance(1));
    }

    #[test]
    #[should_panic(expected = "TBPF must be positive")]
    fn zero_tbpf_rejected() {
        let _ = PowerState::new(PowerModel::Periodic { tbpf: 0 });
    }
}
