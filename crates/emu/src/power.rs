//! Power supply models.
//!
//! The paper's evaluation (§IV-A.c) triggers power failures periodically:
//! the *time between power failures* (TBPF) is a fixed number of active
//! cycles. Real harvesters are burstier than that, so the supply layer is
//! pluggable: beyond [`PowerModel::Continuous`] and
//! [`PowerModel::Periodic`] there is a seeded [`PowerModel::Stochastic`]
//! model (window lengths drawn uniformly from `mean ± jitter` by an
//! in-tree SplitMix64, deterministic per seed) and a
//! [`PowerModel::Trace`] model replaying recorded harvest traces (window
//! lengths in cycles, interned process-wide so the model stays
//! `Copy`-cheap).
//!
//! Every model exposes the same per-window contract the execution tiers
//! rely on: the length of the *current* window is fixed once the window
//! opens, so [`PowerState::headroom`] remains a sound proof that a fused
//! superblock run cannot be interrupted. Wait-mode techniques that sleep
//! at a checkpoint resume at the start of the next window with a full
//! capacitor, so sleeping advances to a fresh window.

use std::sync::Mutex;

/// SplitMix64 output for stream position `index` from `seed` — the
/// same finalizer as the benchsuite's input generator, evaluated
/// directly at position `index` so window lengths are O(1) to draw and
/// independent of execution order.
fn splitmix64_at(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An interned recorded harvest trace: a process-wide handle to a
/// sequence of power-window lengths (cycles). Interning keeps
/// [`PowerModel`] `Copy` while the window data lives once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u32);

struct TraceEntry {
    name: &'static str,
    windows: &'static [u64],
    min: u64,
}

static TRACES: Mutex<Vec<TraceEntry>> = Mutex::new(Vec::new());

/// Interns a recorded harvest trace under `name` and returns its
/// process-wide id. Re-interning the same name with identical windows
/// returns the existing id.
///
/// # Panics
///
/// Panics if `windows` is empty, contains a zero-length window, or if
/// `name` was already interned with *different* windows.
pub fn intern_trace(name: &str, windows: Vec<u64>) -> TraceId {
    assert!(!windows.is_empty(), "trace {name:?} has no windows");
    assert!(
        windows.iter().all(|&w| w > 0),
        "trace {name:?} has a zero-length window"
    );
    let mut traces = TRACES.lock().unwrap();
    if let Some(idx) = traces.iter().position(|t| t.name == name) {
        assert!(
            traces[idx].windows == windows.as_slice(),
            "trace {name:?} re-interned with different windows"
        );
        return TraceId(idx as u32);
    }
    let min = windows.iter().copied().min().unwrap();
    let entry = TraceEntry {
        name: Box::leak(name.to_owned().into_boxed_str()),
        windows: Box::leak(windows.into_boxed_slice()),
        min,
    };
    traces.push(entry);
    TraceId((traces.len() - 1) as u32)
}

/// Looks up an already-interned trace by name.
pub fn trace_by_name(name: &str) -> Option<TraceId> {
    let traces = TRACES.lock().unwrap();
    traces
        .iter()
        .position(|t| t.name == name)
        .map(|i| TraceId(i as u32))
}

/// The name a trace was interned under.
pub fn trace_name(id: TraceId) -> &'static str {
    TRACES.lock().unwrap()[id.0 as usize].name
}

/// The interned window lengths (cycles) of a trace.
pub fn trace_windows(id: TraceId) -> &'static [u64] {
    TRACES.lock().unwrap()[id.0 as usize].windows
}

/// The shortest window in a trace — the guaranteed budget placement
/// must fit inside.
pub fn trace_min_window(id: TraceId) -> u64 {
    TRACES.lock().unwrap()[id.0 as usize].min
}

/// Parses harvest-trace text: one window length (cycles) per line.
/// Blank lines and `#` comments are skipped. A torn final fragment —
/// a last line not terminated by a newline — is silently dropped,
/// mirroring the cell cache's tolerance for a crashed writer (and
/// unlike the cache's JSON records, a truncated number still parses,
/// so only newline-terminated lines are trusted). Garbage on any
/// trusted line is an error naming the (1-based) line.
pub fn parse_trace(text: &str) -> Result<Vec<u64>, String> {
    let mut lines: Vec<&str> = text.lines().collect();
    if !text.is_empty() && !text.ends_with('\n') {
        lines.pop();
    }
    let mut windows = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.parse::<u64>() {
            Ok(0) => return Err(format!("line {}: zero-length window", idx + 1)),
            Ok(w) => windows.push(w),
            Err(_) => {
                return Err(format!(
                    "line {}: expected a cycle count, got {line:?}",
                    idx + 1
                ))
            }
        }
    }
    if windows.is_empty() {
        return Err("no windows".to_owned());
    }
    Ok(windows)
}

/// How the platform is powered during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerModel {
    /// Stable power: no failures ever (used for timing runs and
    /// profiling).
    Continuous,
    /// A power failure every `tbpf` active cycles.
    Periodic {
        /// Time between power failures, in cycles (> 0).
        tbpf: u64,
    },
    /// Window lengths drawn uniformly from `mean_tbpf ± jitter`,
    /// deterministically per `(seed, window index)` — rerunning with
    /// the same seed replays the exact same failure timings.
    Stochastic {
        /// Mean time between power failures, in cycles.
        mean_tbpf: u64,
        /// Half-width of the uniform window-length distribution
        /// (< `mean_tbpf`, so every window is positive).
        jitter: u64,
        /// SplitMix64 stream seed.
        seed: u64,
    },
    /// Replays an interned recorded harvest trace, cycling when the
    /// recording runs out.
    Trace {
        /// Handle from [`intern_trace`].
        id: TraceId,
    },
}

impl PowerModel {
    /// The guaranteed minimum window length in cycles — the budget a
    /// sound placement must fit between checkpoints. Continuous power
    /// never fails, so its floor is unbounded.
    pub fn min_window_cycles(&self) -> u64 {
        match *self {
            PowerModel::Continuous => u64::MAX,
            PowerModel::Periodic { tbpf } => tbpf,
            PowerModel::Stochastic {
                mean_tbpf, jitter, ..
            } => mean_tbpf - jitter,
            PowerModel::Trace { id } => trace_min_window(id),
        }
    }

    /// A stable human-readable label for trace events and reports.
    /// Matches the grid's scenario spelling: a bare number for periodic
    /// TBPF, `stoch:MEAN:JITTER:SEED`, `trace:NAME`, or `continuous`.
    pub fn label(&self) -> String {
        match *self {
            PowerModel::Continuous => "continuous".to_owned(),
            PowerModel::Periodic { tbpf } => tbpf.to_string(),
            PowerModel::Stochastic {
                mean_tbpf,
                jitter,
                seed,
            } => format!("stoch:{mean_tbpf}:{jitter}:{seed}"),
            PowerModel::Trace { id } => format!("trace:{}", trace_name(id)),
        }
    }

    /// The length of window `index` under this model. Fixed once the
    /// window opens — the per-window contract `headroom` relies on.
    fn window_limit(&self, index: u64) -> u64 {
        match *self {
            PowerModel::Continuous => u64::MAX,
            PowerModel::Periodic { tbpf } => tbpf,
            PowerModel::Stochastic {
                mean_tbpf,
                jitter,
                seed,
            } => {
                let span = 2 * jitter + 1;
                mean_tbpf - jitter + splitmix64_at(seed, index) % span
            }
            PowerModel::Trace { id } => {
                let windows = trace_windows(id);
                windows[(index % windows.len() as u64) as usize]
            }
        }
    }
}

/// Tracks the position within the current power window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerState {
    model: PowerModel,
    cycles_in_window: u64,
    window_index: u64,
    window_limit: u64,
}

impl PowerState {
    /// Creates a fully charged supply at the first window.
    ///
    /// # Panics
    ///
    /// Panics if a periodic model has `tbpf == 0`, or a stochastic
    /// model has `jitter >= mean_tbpf` (a window could be empty).
    pub fn new(model: PowerModel) -> Self {
        match model {
            PowerModel::Periodic { tbpf } => assert!(tbpf > 0, "TBPF must be positive"),
            PowerModel::Stochastic {
                mean_tbpf, jitter, ..
            } => assert!(
                jitter < mean_tbpf,
                "stochastic jitter must be below the mean TBPF"
            ),
            PowerModel::Continuous | PowerModel::Trace { .. } => {}
        }
        PowerState {
            model,
            cycles_in_window: 0,
            window_index: 0,
            window_limit: model.window_limit(0),
        }
    }

    /// The model.
    pub fn model(&self) -> PowerModel {
        self.model
    }

    /// Advances by `cycles` of active execution; returns `true` if a
    /// power failure occurs at (or before) the end of those cycles.
    pub fn advance(&mut self, cycles: u64) -> bool {
        match self.model {
            PowerModel::Continuous => false,
            _ => {
                self.cycles_in_window += cycles;
                self.cycles_in_window >= self.window_limit
            }
        }
    }

    /// Whether the current window can absorb `cycles` more active
    /// cycles *without* a power failure — i.e. whether `advance(cycles)`
    /// would return `false`. Superblock fusion uses this to prove that
    /// no failure can land inside a fused run; the proof is per-window,
    /// so it holds under every model (a window's length is fixed once
    /// it opens).
    pub fn headroom(&self, cycles: u64) -> bool {
        match self.model {
            PowerModel::Continuous => true,
            _ => self.cycles_in_window + cycles < self.window_limit,
        }
    }

    /// Remaining charge fraction in `[0, 1]` — what a MEMENTOS voltage
    /// measurement observes. Continuous power always reads full.
    pub fn remaining_fraction(&self) -> f64 {
        match self.model {
            PowerModel::Continuous => 1.0,
            _ => {
                let limit = self.window_limit;
                1.0 - (self.cycles_in_window.min(limit) as f64 / limit as f64)
            }
        }
    }

    /// Restart after a power failure: the capacitor recharged while the
    /// platform was off, and the next window's length is drawn.
    pub fn reboot(&mut self) {
        self.next_window();
    }

    /// Wait-mode sleep until fully recharged (Fig. 3 step 2) — resumes
    /// at the start of the next window.
    pub fn replenish(&mut self) {
        self.next_window();
    }

    fn next_window(&mut self) {
        self.cycles_in_window = 0;
        self.window_index += 1;
        self.window_limit = self.model.window_limit(self.window_index);
    }

    /// Cycles executed in the current window.
    pub fn window_cycles(&self) -> u64 {
        self.cycles_in_window
    }

    /// The length (cycles) of the current window.
    pub fn window_limit(&self) -> u64 {
        self.window_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_never_fails() {
        let mut p = PowerState::new(PowerModel::Continuous);
        assert!(!p.advance(1_000_000_000));
        assert_eq!(p.remaining_fraction(), 1.0);
    }

    #[test]
    fn periodic_fails_at_tbpf() {
        let mut p = PowerState::new(PowerModel::Periodic { tbpf: 100 });
        assert!(p.headroom(99));
        assert!(!p.headroom(100));
        assert!(!p.advance(99));
        assert!(p.headroom(0));
        assert!(!p.headroom(1));
        assert!((p.remaining_fraction() - 0.01).abs() < 1e-9);
        assert!(p.advance(1));
        p.reboot();
        assert_eq!(p.window_cycles(), 0);
        assert_eq!(p.remaining_fraction(), 1.0);
    }

    #[test]
    fn replenish_resets_window() {
        let mut p = PowerState::new(PowerModel::Periodic { tbpf: 100 });
        p.advance(60);
        p.replenish();
        assert!(!p.advance(99));
        assert!(p.advance(1));
    }

    #[test]
    #[should_panic(expected = "TBPF must be positive")]
    fn zero_tbpf_rejected() {
        let _ = PowerState::new(PowerModel::Periodic { tbpf: 0 });
    }

    #[test]
    #[should_panic(expected = "jitter must be below the mean")]
    fn stochastic_jitter_at_mean_rejected() {
        let _ = PowerState::new(PowerModel::Stochastic {
            mean_tbpf: 100,
            jitter: 100,
            seed: 1,
        });
    }

    #[test]
    fn stochastic_windows_bounded_and_deterministic() {
        let model = PowerModel::Stochastic {
            mean_tbpf: 1_000,
            jitter: 200,
            seed: 42,
        };
        let draw = |_| {
            let mut p = PowerState::new(model);
            let mut limits = Vec::new();
            for _ in 0..64 {
                limits.push(p.window_limit());
                p.reboot();
            }
            limits
        };
        let a = draw(());
        let b = draw(());
        assert_eq!(a, b, "same seed replays the same windows");
        assert!(a.iter().all(|&w| (800..=1_200).contains(&w)));
        assert!(a.windows(2).any(|w| w[0] != w[1]), "windows actually vary");
        assert_eq!(model.min_window_cycles(), 800);
    }

    #[test]
    fn stochastic_zero_jitter_matches_periodic() {
        let stoch = PowerModel::Stochastic {
            mean_tbpf: 500,
            jitter: 0,
            seed: 7,
        };
        let mut s = PowerState::new(stoch);
        let mut p = PowerState::new(PowerModel::Periodic { tbpf: 500 });
        for _ in 0..16 {
            assert_eq!(s.window_limit(), p.window_limit());
            assert_eq!(s.advance(499), p.advance(499));
            assert_eq!(s.advance(1), p.advance(1));
            s.reboot();
            p.reboot();
        }
    }

    #[test]
    fn trace_model_replays_and_cycles() {
        let id = intern_trace("test-replay", vec![100, 250, 70]);
        assert_eq!(trace_min_window(id), 70);
        assert_eq!(PowerModel::Trace { id }.min_window_cycles(), 70);
        assert_eq!(trace_name(id), "test-replay");
        assert_eq!(trace_by_name("test-replay"), Some(id));
        let mut p = PowerState::new(PowerModel::Trace { id });
        for expect in [100, 250, 70, 100, 250] {
            assert_eq!(p.window_limit(), expect);
            assert!(p.headroom(expect - 1));
            assert!(!p.headroom(expect));
            p.reboot();
        }
        // Re-interning the same content is idempotent.
        assert_eq!(intern_trace("test-replay", vec![100, 250, 70]), id);
    }

    #[test]
    fn parse_trace_skips_comments_and_blanks() {
        let text = "# harvest trace\n100\n\n  250 \n# tail comment\n70\n";
        assert_eq!(parse_trace(text).unwrap(), vec![100, 250, 70]);
    }

    #[test]
    fn parse_trace_rejects_garbage_with_line() {
        let err = parse_trace("100\nbogus\n250\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_trace("100\n0\n").unwrap_err();
        assert!(err.contains("zero-length"), "{err}");
        assert_eq!(parse_trace("# only comments\n").unwrap_err(), "no windows");
    }

    #[test]
    fn parse_trace_drops_torn_tail() {
        // A crashed writer leaves a final fragment with no newline:
        // tolerated, like the cell cache's store.
        assert_eq!(parse_trace("100\n250\n7").unwrap(), vec![100, 250]);
        // ... but the same fragment *with* a newline is real garbage.
        assert!(parse_trace("100\n250\nxx\n").is_err());
    }
}
