//! # schematic-emu
//!
//! An intermittent-computing emulator — the reproduction's substitute for
//! the SCEPTIC infrastructure the SCHEMATIC paper evaluates on (§IV-A.c).
//!
//! The emulator executes [`schematic_ir`] programs at IR level under a
//! configurable power supply. The paper's evaluation uses periodic
//! failures (*time between power failures*, TBPF, in active cycles);
//! the supply layer also offers seeded stochastic windows and recorded
//! harvest-trace replay (see [`power`]). Programs are
//! [`InstrumentedModule`]s: a module
//! whose blocks contain checkpoint intrinsics, plus a checkpoint table,
//! a per-block VM/NVM allocation plan and a failure policy
//! (wait-for-recharge or rollback).
//!
//! Measured output is a [`Metrics`] struct whose energy categories map
//! one-to-one onto the paper's Figure 6 (computation / save / restore /
//! re-execution) and Figure 7 (CPU vs VM vs NVM split).
//!
//! ```
//! use schematic_emu::{run, InstrumentedModule, RunConfig};
//! use schematic_ir::parse_module;
//!
//! let m = parse_module(r#"
//! var @x : 1
//! func @main(0) {
//! entry:
//!   r0 = mov 21
//!   r1 = add r0, r0
//!   store @x, r1
//!   ret r1
//! }
//! "#).unwrap();
//! let out = run(&InstrumentedModule::bare(m), RunConfig::default())?;
//! assert_eq!(out.result, Some(42));
//! # Ok::<(), schematic_emu::EmuError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod aot;
pub mod decoded;
pub mod error;
pub mod instrumented;
pub mod machine;
pub mod memory;
pub mod metrics;
pub mod power;
pub mod shadow;
pub mod trace;

pub use decoded::DecodedModule;
pub use error::{EmuError, TrapKind};
pub use instrumented::{
    AllocationPlan, CheckpointKind, CheckpointSpec, FailurePolicy, InstrumentedModule,
};
pub use machine::{run, ExecTier, Machine, RunConfig, RunOutcome, RunStatus};
pub use memory::Memory;
pub use metrics::Metrics;
pub use power::{
    intern_trace, parse_trace, trace_by_name, trace_min_window, trace_name, trace_windows,
    PowerModel, PowerState, TraceId,
};
pub use shadow::{EpochStart, ObservedWar, ShadowReport};
