//! Opt-in intermittent-execution lifecycle tracing.
//!
//! When tracing is on, the [`Machine`](crate::Machine) emits one
//! structured [`schematic_obs`] event per lifecycle transition —
//! power-on, checkpoint commit/skip/tear, sleep and wake-up, allocation
//! migration, power failure and rollback restore — into the calling
//! thread's observation registry. Tracing is enabled per run by
//! [`RunConfig::trace`](crate::RunConfig::trace), process-wide by the
//! `SCHEMATIC_TRACE=1` environment variable, or in-process by
//! [`set_forced`] (which the grid driver uses to avoid environment
//! races between threads). Events only land somewhere when the
//! `schematic_obs` collector is also enabled
//! ([`schematic_obs::set_enabled`]).
//!
//! Like the shadow recorder, tracing disables the fused block dispatch
//! for the run so every lifecycle site is observed individually;
//! metrics stay bit-identical, the run is just slower.
//!
//! ## Event kinds
//!
//! Every event carries the cumulative energy snapshot at emission time
//! (`comp_pj`, `save_pj`, `restore_pj`, `reexec_pj` — the paper's
//! Fig. 6 taxonomy — plus `cycles`), so any prefix of the stream
//! reproduces the Fig. 6 split at that point and the final `run_end`
//! snapshot equals the run's metrics exactly. Kind-specific fields:
//!
//! | kind | fields | meaning |
//! |------|--------|---------|
//! | `run_start` | `tbpf` (guaranteed window floor; 0 = continuous), `scenario` (power-model label, e.g. `10000`, `stoch:10000:2000:3`, `trace:rf-office`) | power scenario of the run |
//! | `boot` | `words` | initial VM staging of the boot set |
//! | `checkpoint_commit` | `cp`, `words` | checkpoint took effect |
//! | `checkpoint_torn` | `cp`, `words` | window expired mid-commit; old image stays |
//! | `checkpoint_skip` | `cp`, `charge_permille` | guarded check found enough charge |
//! | `sleep` | `cp` | wait-mode standby until recharge |
//! | `wakeup` | `cp`, `words` | non-retentive wake-up restore |
//! | `migrate` | `cp`, `words` | rollback allocation change loads |
//! | `power_failure` | `lost_insts`, `window_cycles` | outage; `lost_insts` is the re-execution extent |
//! | `restore` | `epoch`, `words` | rollback into epoch `"boot"` or `"cp<N>"` |
//! | `run_end` | `status` | final status; snapshot = run metrics |
//!
//! Under the periodic power model a failure strikes exactly when the
//! window's cycle budget is exhausted, so the residual energy at
//! failure is zero by construction; the stream instead records the
//! window size (`window_cycles`) and the work rolled back
//! (`lost_insts`). Residual charge *is* meaningful at guarded
//! checkpoints, where `charge_permille` records the measured fraction.

use crate::machine::RunStatus;
use crate::metrics::Metrics;
use schematic_obs::Value;
use std::sync::atomic::{AtomicBool, Ordering};

static FORCED: AtomicBool = AtomicBool::new(false);

/// Forces lifecycle tracing on (or off) for every subsequent run in
/// this process, regardless of [`RunConfig::trace`](crate::RunConfig::trace)
/// or the environment. In-process alternative to `SCHEMATIC_TRACE=1`
/// for multi-threaded drivers, where mutating the environment races.
pub fn set_forced(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// Whether [`set_forced`] tracing is active.
pub fn forced() -> bool {
    FORCED.load(Ordering::Relaxed)
}

/// The stable label used for a [`RunStatus`] in trace events (matches
/// the grid artifact spelling).
pub fn status_label(status: RunStatus) -> &'static str {
    match status {
        RunStatus::Completed => "completed",
        RunStatus::Livelock => "livelock",
        RunStatus::CycleLimit => "cycle_limit",
        RunStatus::FailureLimit => "failure_limit",
    }
}

/// The cumulative Fig. 6 energy snapshot appended to every event.
pub(crate) fn snapshot_fields(metrics: &Metrics) -> [(&'static str, Value); 5] {
    [
        ("comp_pj", Value::U64(metrics.computation.as_pj())),
        ("save_pj", Value::U64(metrics.save.as_pj())),
        ("restore_pj", Value::U64(metrics.restore.as_pj())),
        ("reexec_pj", Value::U64(metrics.reexecution.as_pj())),
        ("cycles", Value::U64(metrics.active_cycles)),
    ]
}
