//! Emulator error types.

use schematic_ir::{BlockId, FuncId, VarId};
use std::fmt;

/// A runtime trap: the program itself misbehaved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// Integer division or remainder by zero (or `i32::MIN / -1`).
    DivisionByZero,
    /// Array index outside the variable's bounds.
    IndexOutOfBounds {
        /// Variable accessed.
        var: VarId,
        /// Offending index value.
        index: i64,
        /// The variable's size in words.
        words: usize,
    },
    /// Call stack exceeded the configured depth limit.
    StackOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// The entry function returned no value where one was required.
    MissingCheckpointSpec {
        /// The unknown checkpoint id.
        id: u32,
    },
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::DivisionByZero => write!(f, "integer division by zero"),
            TrapKind::IndexOutOfBounds { var, index, words } => {
                write!(f, "index {index} out of bounds for {var} ({words} words)")
            }
            TrapKind::StackOverflow { limit } => {
                write!(f, "call stack exceeded {limit} frames")
            }
            TrapKind::MissingCheckpointSpec { id } => {
                write!(f, "checkpoint instruction references unknown spec cp{id}")
            }
        }
    }
}

/// Error aborting an emulator run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// A runtime trap, with its program location.
    Trap {
        /// The trap.
        kind: TrapKind,
        /// Function where the trap occurred.
        func: FuncId,
        /// Block where the trap occurred.
        block: BlockId,
    },
    /// The volatile-memory footprint exceeded the configured `SVM`.
    VmOverflow {
        /// Bytes that would be resident.
        needed: usize,
        /// The configured VM capacity in bytes.
        svm: usize,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Trap { kind, func, block } => {
                write!(f, "trap in {func} at {block}: {kind}")
            }
            EmuError::VmOverflow { needed, svm } => {
                write!(f, "VM overflow: {needed} bytes needed, SVM = {svm} bytes")
            }
        }
    }
}

impl std::error::Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let t = TrapKind::IndexOutOfBounds {
            var: VarId(3),
            index: -1,
            words: 8,
        };
        assert!(t.to_string().contains("out of bounds"));
        let e = EmuError::Trap {
            kind: t,
            func: FuncId(0),
            block: BlockId(2),
        };
        assert!(e.to_string().contains("fn0"));
        let v = EmuError::VmOverflow {
            needed: 4096,
            svm: 2048,
        };
        assert!(v.to_string().contains("2048"));
        assert!(TrapKind::DivisionByZero.to_string().contains("zero"));
        assert!(TrapKind::StackOverflow { limit: 64 }
            .to_string()
            .contains("64"));
        assert!(TrapKind::MissingCheckpointSpec { id: 7 }
            .to_string()
            .contains("cp7"));
    }
}
