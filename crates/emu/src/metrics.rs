//! Execution metrics: the emulator's observable output.
//!
//! The energy breakdown mirrors the four categories of the paper's
//! Figure 6 (computation / save / restore / re-execution) and the finer
//! computation split of Figure 7 (CPU vs VM accesses vs NVM accesses).

use schematic_energy::{Cycles, Energy};

/// Everything measured during one emulator run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    /// Energy of first-time program execution, including memory accesses
    /// (Fig. 6 "Computation").
    pub computation: Energy,
    /// Energy spent committing checkpoints (Fig. 6 "Save").
    pub save: Energy,
    /// Energy spent restoring volatile state (Fig. 6 "Restore"),
    /// including implicit lazy restores.
    pub restore: Energy,
    /// Energy spent re-executing code after rollbacks (Fig. 6
    /// "Re-execution").
    pub reexecution: Energy,

    /// CPU-cycle baseline energy within `computation` + `reexecution`,
    /// excluding memory-access energy (Fig. 7 "No memory accesses").
    pub cpu_energy: Energy,
    /// VM access energy within `computation` + `reexecution` (Fig. 7).
    pub vm_access_energy: Energy,
    /// NVM access energy within `computation` + `reexecution` (Fig. 7).
    pub nvm_access_energy: Energy,

    /// Active CPU cycles (excludes sleep periods).
    pub active_cycles: Cycles,
    /// Power failures experienced.
    pub power_failures: u64,
    /// Checkpoints committed (saves performed).
    pub checkpoints_committed: u64,
    /// Guarded checkpoints evaluated but skipped (MEMENTOS).
    pub checkpoints_skipped: u64,
    /// Wait-mode sleep/replenish events.
    pub sleep_events: u64,
    /// State restorations (after failures or wake-ups).
    pub restores: u64,
    /// Lazy restores triggered by a VM access to an invalid copy.
    pub implicit_restores: u64,
    /// Dirty VM copies written back to NVM because the variable left the
    /// allocation plan without a checkpoint (residency reconciliation).
    pub implicit_saves: u64,
    /// Power failures that hit a wait-mode program mid-interval — a
    /// violated placement guarantee (should be 0 for SCHEMATIC and
    /// ROCKCLIMB under a sound `EB`).
    pub unexpected_failures: u64,

    /// VM word reads.
    pub vm_reads: u64,
    /// VM word writes.
    pub vm_writes: u64,
    /// NVM word reads (program accesses; checkpoint traffic excluded).
    pub nvm_reads: u64,
    /// NVM word writes (program accesses; checkpoint traffic excluded).
    pub nvm_writes: u64,

    /// NVM writes that discarded a dirty VM copy — a coherence bug in
    /// the instrumentation (asserted zero by the test suite).
    pub coherence_violations: u64,
    /// Largest VM residency observed, in bytes.
    pub peak_vm_bytes: usize,
    /// Instructions retired (first executions and re-executions).
    pub insts_retired: u64,
}

impl Metrics {
    /// Total energy across all four categories — the bar height of
    /// Fig. 6.
    pub fn total_energy(&self) -> Energy {
        self.computation + self.save + self.restore + self.reexecution
    }

    /// Fraction of program memory accesses that hit VM (§IV-E reports
    /// 69 % on average for SCHEMATIC).
    pub fn vm_access_fraction(&self) -> f64 {
        let vm = self.vm_reads + self.vm_writes;
        let total = vm + self.nvm_reads + self.nvm_writes;
        if total == 0 {
            0.0
        } else {
            vm as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_categories() {
        let m = Metrics {
            computation: Energy::from_pj(10),
            save: Energy::from_pj(5),
            restore: Energy::from_pj(3),
            reexecution: Energy::from_pj(2),
            ..Metrics::default()
        };
        assert_eq!(m.total_energy(), Energy::from_pj(20));
    }

    #[test]
    fn vm_fraction() {
        let m = Metrics {
            vm_reads: 6,
            vm_writes: 1,
            nvm_reads: 2,
            nvm_writes: 1,
            ..Metrics::default()
        };
        assert!((m.vm_access_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(Metrics::default().vm_access_fraction(), 0.0);
    }
}
