//! `rc4` — RC4 key scheduling and keystream generation (MiBench2 `rc4`).
//!
//! The 256-entry state array plus a 1280-word output buffer put the data
//! footprint at ≈ 6.5 KB — larger than the MSP430FR5969's 2 KB VM, which
//! is why all-VM techniques cannot run this kernel (Table I).

use crate::inputs::SplitMix64;
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable};

/// Keystream words produced per pass.
pub const OUT_WORDS: usize = 1280;
/// PRGA passes (the keystream continues across passes), sizing the
/// kernel toward the paper's ≈ 0.44 M cycles without growing the data.
pub const PASSES: usize = 5;
/// Key length in bytes.
pub const KEY_LEN: usize = 16;

fn key(seed: u64) -> Vec<i32> {
    SplitMix64::new(seed).bytes(KEY_LEN)
}

/// Native reference result.
pub fn oracle(seed: u64) -> i32 {
    let key = key(seed);
    let mut s: Vec<i32> = (0..256).collect();
    let mut j: i32 = 0;
    for i in 0..256 {
        j = (j + s[i as usize] + key[(i % KEY_LEN as i32) as usize]) & 255;
        s.swap(i as usize, j as usize);
    }
    let (mut i, mut j) = (0i32, 0i32);
    let mut acc: i32 = 0;
    for _ in 0..PASSES {
        for n in 0..OUT_WORDS as i32 {
            i = (i + 1) & 255;
            j = (j + s[i as usize]) & 255;
            s.swap(i as usize, j as usize);
            let k = s[((s[i as usize] + s[j as usize]) & 255) as usize];
            let word = k ^ n;
            acc = acc.wrapping_add(word);
        }
    }
    acc
}

/// Builds the IR module.
pub fn build(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("rc4");
    let s_v = mb.var(Variable::array("state", 256));
    let key_v = mb.var(Variable::array("key", KEY_LEN).with_init(key(seed)));
    let out_v = mb.var(Variable::array("output", OUT_WORDS));
    let acc_v = mb.var(Variable::scalar("acc"));

    let mut f = FunctionBuilder::new("main", 0);
    let init_loop = f.new_block("init_loop");
    let init_body = f.new_block("init_body");
    let ksa_loop = f.new_block("ksa_loop");
    let ksa_body = f.new_block("ksa_body");
    let prga_loop = f.new_block("prga_loop");
    let prga_body = f.new_block("prga_body");
    let exit = f.new_block("exit");

    // entry: i = 0
    let i = f.copy(0);
    let j = f.copy(0);
    f.store_scalar(acc_v, 0);
    f.br(init_loop);

    // init: state[i] = i
    f.switch_to(init_loop);
    f.set_max_iters(init_loop, 257);
    let fin = f.cmp(CmpOp::SGe, i, 256);
    f.cond_br(fin, ksa_loop, init_body);
    f.switch_to(init_body);
    f.store_idx(s_v, i, i);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(init_loop);

    // KSA
    f.switch_to(ksa_loop);
    f.copy_to(i, 0);
    f.copy_to(j, 0);
    let ksa_head = f.new_block("ksa_head");
    f.br(ksa_head);
    f.switch_to(ksa_head);
    f.set_max_iters(ksa_head, 257);
    let fin = f.cmp(CmpOp::SGe, i, 256);
    f.cond_br(fin, prga_loop, ksa_body);
    f.switch_to(ksa_body);
    let si = f.load_idx(s_v, i);
    let imod = f.bin(BinOp::RemU, i, KEY_LEN as i32);
    let kb = f.load_idx(key_v, imod);
    let j1 = f.bin(BinOp::Add, j, si);
    let j2 = f.bin(BinOp::Add, j1, kb);
    let j3 = f.bin(BinOp::And, j2, 255);
    f.copy_to(j, j3);
    let sj = f.load_idx(s_v, j);
    f.store_idx(s_v, i, sj);
    f.store_idx(s_v, j, si);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(ksa_head);

    // PRGA: PASSES passes, keystream state carries across passes.
    f.switch_to(prga_loop);
    f.copy_to(i, 0);
    f.copy_to(j, 0);
    let pass = f.copy(0);
    let n = f.copy(0);
    let pass_head = f.new_block("pass_head");
    let pass_body_bb = f.new_block("pass_body");
    let pass_next = f.new_block("pass_next");
    let prga_head = f.new_block("prga_head");
    f.br(pass_head);
    f.switch_to(pass_head);
    f.set_max_iters(pass_head, PASSES as u64 + 1);
    let pfin = f.cmp(CmpOp::SGe, pass, PASSES as i32);
    f.cond_br(pfin, exit, pass_body_bb);
    f.switch_to(pass_body_bb);
    f.copy_to(n, 0);
    f.br(prga_head);
    f.switch_to(prga_head);
    f.set_max_iters(prga_head, OUT_WORDS as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, n, OUT_WORDS as i32);
    f.cond_br(fin, pass_next, prga_body);
    f.switch_to(prga_body);
    let i1 = f.bin(BinOp::Add, i, 1);
    let i2 = f.bin(BinOp::And, i1, 255);
    f.copy_to(i, i2);
    let si = f.load_idx(s_v, i);
    let j1 = f.bin(BinOp::Add, j, si);
    let j2 = f.bin(BinOp::And, j1, 255);
    f.copy_to(j, j2);
    let sj = f.load_idx(s_v, j);
    f.store_idx(s_v, i, sj);
    f.store_idx(s_v, j, si);
    // after swap: s[i] = sj, s[j] = si
    let sum = f.bin(BinOp::Add, sj, si);
    let kidx = f.bin(BinOp::And, sum, 255);
    let k = f.load_idx(s_v, kidx);
    let word = f.bin(BinOp::Xor, k, n);
    f.store_idx(out_v, n, word);
    let a0 = f.load_scalar(acc_v);
    let a1 = f.bin(BinOp::Add, a0, word);
    f.store_scalar(acc_v, a1);
    let n2 = f.bin(BinOp::Add, n, 1);
    f.copy_to(n, n2);
    f.br(prga_head);

    f.switch_to(pass_next);
    let p2 = f.bin(BinOp::Add, pass, 1);
    f.copy_to(pass, p2);
    f.br(pass_head);

    f.switch_to(exit);
    let out = f.load_scalar(acc_v);
    f.ret(Some(out.into()));

    let main = mb.func(f.finish());
    mb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, InstrumentedModule, RunConfig};

    #[test]
    fn emulated_matches_oracle() {
        for seed in [0, 21] {
            let im = InstrumentedModule::bare(build(seed));
            let out = run(&im, RunConfig::default()).unwrap();
            assert!(out.completed());
            assert_eq!(out.result, Some(oracle(seed)), "seed {seed}");
        }
    }

    #[test]
    fn exceeds_2kb_vm() {
        let bytes = build(1).data_bytes();
        assert!(bytes > 2048, "rc4 data = {bytes}");
        assert!((5_000..8_000).contains(&bytes));
    }

    #[test]
    fn rc4_keystream_known_answer() {
        // RC4 with key "Key" produces keystream EB 9F 77 81 B7 34 ...
        // Validate the oracle's core against the classic test vector.
        let key = b"Key";
        let mut s: Vec<i32> = (0..256).collect();
        let mut j: i32 = 0;
        for i in 0..256i32 {
            j = (j + s[i as usize] + i32::from(key[(i % 3) as usize])) & 255;
            s.swap(i as usize, j as usize);
        }
        let (mut i, mut j) = (0i32, 0i32);
        let expected: [i32; 6] = [0xEB, 0x9F, 0x77, 0x81, 0xB7, 0x34];
        for &e in &expected {
            i = (i + 1) & 255;
            j = (j + s[i as usize]) & 255;
            s.swap(i as usize, j as usize);
            let k = s[((s[i as usize] + s[j as usize]) & 255) as usize];
            assert_eq!(k, e);
        }
    }

    #[test]
    fn module_verifies() {
        assert!(schematic_ir::verify_module(&build(3)).is_empty());
    }
}
