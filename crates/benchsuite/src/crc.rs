//! `crc` — table-driven CRC-32 over a random message (MiBench2 `crc`).
//!
//! Data footprint: 256-word lookup table (1 KB) + 128-word message
//! (512 B) + scalars ≈ 1.6 KB — fits the MSP430FR5969's 2 KB VM, which is
//! why the paper selects `crc` for the capacitor-size study (Fig. 8).

use crate::inputs::SplitMix64;
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable};

/// Message length in 32-bit words (processed byte-wise: 512 bytes).
pub const MSG_WORDS: usize = 128;
/// Passes over the message; the CRC state carries across passes. Sizes
/// the kernel toward the paper's ≈ 41 k cycles.
pub const PASSES: usize = 2;

const POLY: u32 = 0xEDB8_8320;

/// The standard CRC-32 (reflected) table.
pub fn crc_table() -> Vec<i32> {
    (0u32..256)
        .map(|n| {
            let mut c = n;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            c as i32
        })
        .collect()
}

fn message(seed: u64) -> Vec<i32> {
    SplitMix64::new(seed).words(MSG_WORDS)
}

/// Native reference result.
pub fn oracle(seed: u64) -> i32 {
    let table = crc_table();
    let msg = message(seed);
    let mut crc: u32 = 0xFFFF_FFFF;
    for _ in 0..PASSES {
        for &word in &msg {
            for byte in 0..4 {
                let b = ((word as u32) >> (8 * byte)) & 0xFF;
                let idx = (crc ^ b) & 0xFF;
                crc = (crc >> 8) ^ (table[idx as usize] as u32);
            }
        }
    }
    !crc as i32
}

/// Builds the IR module.
pub fn build(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("crc");
    let table = mb.var(Variable::array("crc_table", 256).with_init(crc_table()));
    let msg = mb.var(Variable::array("message", MSG_WORDS).with_init(message(seed)));
    let crc_v = mb.var(Variable::scalar("crc"));

    let mut f = FunctionBuilder::new("main", 0);
    let pass_loop = f.new_block("pass_loop");
    let pass_body = f.new_block("pass_body");
    let word_loop = f.new_block("word_loop");
    let byte_loop = f.new_block("byte_loop");
    let byte_body = f.new_block("byte_body");
    let word_next = f.new_block("word_next");
    let pass_next = f.new_block("pass_next");
    let exit = f.new_block("exit");

    // entry
    let pass = f.copy(0);
    let i = f.copy(0); // word index
    f.store_scalar(crc_v, -1); // 0xFFFFFFFF
    f.br(pass_loop);

    f.switch_to(pass_loop);
    f.set_max_iters(pass_loop, PASSES as u64 + 1);
    let pdone = f.cmp(CmpOp::SGe, pass, PASSES as i32);
    f.cond_br(pdone, exit, pass_body);
    f.switch_to(pass_body);
    f.copy_to(i, 0);
    f.br(word_loop);

    // word_loop: i < MSG_WORDS ?
    f.switch_to(word_loop);
    f.set_max_iters(word_loop, MSG_WORDS as u64 + 1);
    let done = f.cmp(CmpOp::SGe, i, MSG_WORDS as i32);
    f.cond_br(done, pass_next, byte_loop);

    // byte_loop header: j = 0..4 over bytes of msg[i]
    f.switch_to(byte_loop);
    let j = f.copy(0);
    f.br(byte_body);

    f.switch_to(byte_body);
    f.set_max_iters(byte_body, 5);
    let w = f.load_idx(msg, i);
    let shift = f.bin(BinOp::Mul, j, 8);
    let b0 = f.bin(BinOp::LShr, w, shift);
    let b = f.bin(BinOp::And, b0, 0xFF);
    let c = f.load_scalar(crc_v);
    let x = f.bin(BinOp::Xor, c, b);
    let idx = f.bin(BinOp::And, x, 0xFF);
    let t = f.load_idx(table, idx);
    let c8 = f.bin(BinOp::LShr, c, 8);
    let nc = f.bin(BinOp::Xor, c8, t);
    f.store_scalar(crc_v, nc);
    let j2 = f.bin(BinOp::Add, j, 1);
    f.copy_to(j, j2);
    let more = f.cmp(CmpOp::SLt, j, 4);
    f.cond_br(more, byte_body, word_next);

    f.switch_to(word_next);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(word_loop);

    f.switch_to(pass_next);
    let p2 = f.bin(BinOp::Add, pass, 1);
    f.copy_to(pass, p2);
    f.br(pass_loop);

    f.switch_to(exit);
    let c = f.load_scalar(crc_v);
    let result = f.un(schematic_ir::UnOp::Not, c);
    f.store_scalar(crc_v, result);
    f.ret(Some(result.into()));

    let main = mb.func(f.finish());
    mb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, InstrumentedModule, RunConfig};

    #[test]
    fn table_matches_known_values() {
        let t = crc_table();
        assert_eq!(t[0], 0);
        assert_eq!(t[1] as u32, 0x7707_3096);
        assert_eq!(t[255] as u32, 0x2D02_EF8D);
    }

    #[test]
    fn oracle_matches_reference_crc32() {
        // Cross-check the oracle against a direct bit-by-bit CRC-32.
        let msg = message(5);
        let mut crc: u32 = 0xFFFF_FFFF;
        for _ in 0..PASSES {
            for word in &msg {
                for byte in 0..4 {
                    let mut b = ((*word as u32) >> (8 * byte)) & 0xFF;
                    for _ in 0..8 {
                        let mix = (crc ^ b) & 1;
                        crc >>= 1;
                        if mix != 0 {
                            crc ^= POLY;
                        }
                        b >>= 1;
                    }
                }
            }
        }
        assert_eq!(oracle(5), !crc as i32);
    }

    #[test]
    fn emulated_matches_oracle() {
        for seed in [0, 1, 42] {
            let im = InstrumentedModule::bare(build(seed));
            let out = run(&im, RunConfig::default()).unwrap();
            assert!(out.completed());
            assert_eq!(out.result, Some(oracle(seed)), "seed {seed}");
        }
    }

    #[test]
    fn fits_2kb_vm() {
        assert!(build(1).data_bytes() <= 2048);
    }

    #[test]
    fn module_verifies() {
        assert!(schematic_ir::verify_module(&build(3)).is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(oracle(1), oracle(2));
    }
}
