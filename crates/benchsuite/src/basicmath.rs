//! `basicmath` — integer square roots, GCDs and fixed-point angle
//! conversion (MiBench2 `basicmath` ported to integer arithmetic).
//!
//! Three phases over a 64-element input array: bit-by-bit integer square
//! root, Euclid's GCD of adjacent pairs, and degree→radian conversion in
//! Q16 fixed point. Small data footprint (< 1 KB).

use crate::inputs::SplitMix64;
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Operand, Variable};

/// Input array length.
pub const N: usize = 256;

/// Q16 representation of π/180.
const DEG2RAD_Q16: i32 = 1144; // round(65536 * pi / 180)

fn inputs(seed: u64) -> Vec<i32> {
    let mut g = SplitMix64::new(seed);
    (0..N).map(|_| (g.below(1 << 30)) as i32).collect()
}

fn isqrt(v: u32) -> u32 {
    // Bit-by-bit method, 16 iterations.
    let mut op = v;
    let mut res: u32 = 0;
    let mut one: u32 = 1 << 30;
    while one > v {
        one >>= 2;
    }
    while one != 0 {
        if op >= res + one {
            op -= res + one;
            res = (res >> 1) + one;
        } else {
            res >>= 1;
        }
        one >>= 2;
    }
    res
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Native reference result.
pub fn oracle(seed: u64) -> i32 {
    let data = inputs(seed);
    let mut acc: i32 = 0;
    for &v in &data {
        acc = acc.wrapping_add(isqrt(v as u32) as i32);
    }
    for pair in data.chunks_exact(2) {
        let g = gcd(pair[0] as u32 | 1, pair[1] as u32 | 1);
        acc = acc.wrapping_add(g as i32);
    }
    for &v in &data {
        let deg = v & 0x3FF;
        acc = acc.wrapping_add(deg.wrapping_mul(DEG2RAD_Q16) >> 8);
    }
    acc
}

/// Builds the IR module.
pub fn build(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("basicmath");
    let data = mb.var(Variable::array("data", N).with_init(inputs(seed)));
    let acc_v = mb.var(Variable::scalar("acc"));

    // ---- isqrt(v): bit-by-bit, fixed 16 iterations of `one` ---------------
    let mut fs = FunctionBuilder::new("isqrt", 1);
    let shrink = fs.new_block("shrink");
    let shrink_body = fs.new_block("shrink_body");
    let loop_bb = fs.new_block("loop");
    let body = fs.new_block("body");
    let take = fs.new_block("take");
    let skip = fs.new_block("skip");
    let next = fs.new_block("next");
    let done = fs.new_block("done");
    let v = fs.params()[0];
    let op = fs.copy(v);
    let res = fs.copy(0);
    let one = fs.copy(1 << 30);
    fs.br(shrink);
    fs.switch_to(shrink);
    fs.set_max_iters(shrink, 17);
    let too_big = fs.cmp(CmpOp::UGt, one, v);
    fs.cond_br(too_big, shrink_body, loop_bb);
    fs.switch_to(shrink_body);
    let one4 = fs.bin(BinOp::LShr, one, 2);
    fs.copy_to(one, one4);
    fs.br(shrink);
    fs.switch_to(loop_bb);
    fs.set_max_iters(loop_bb, 17);
    let fin = fs.cmp(CmpOp::Eq, one, 0);
    fs.cond_br(fin, done, body);
    fs.switch_to(body);
    let sum = fs.bin(BinOp::Add, res, one);
    let ge = fs.cmp(CmpOp::UGe, op, sum);
    fs.cond_br(ge, take, skip);
    fs.switch_to(take);
    let op2 = fs.bin(BinOp::Sub, op, sum);
    fs.copy_to(op, op2);
    let half = fs.bin(BinOp::LShr, res, 1);
    let res2 = fs.bin(BinOp::Add, half, one);
    fs.copy_to(res, res2);
    fs.br(next);
    fs.switch_to(skip);
    let half = fs.bin(BinOp::LShr, res, 1);
    fs.copy_to(res, half);
    fs.br(next);
    fs.switch_to(next);
    let one2 = fs.bin(BinOp::LShr, one, 2);
    fs.copy_to(one, one2);
    fs.br(loop_bb);
    fs.switch_to(done);
    fs.ret(Some(res.into()));
    let isqrt_f = mb.func(fs.finish());

    // ---- gcd(a, b): Euclid -------------------------------------------------
    let mut fg = FunctionBuilder::new("gcd", 2);
    let loop_bb = fg.new_block("loop");
    let body = fg.new_block("body");
    let done = fg.new_block("done");
    let a = fg.params()[0];
    let b = fg.params()[1];
    fg.br(loop_bb);
    fg.switch_to(loop_bb);
    fg.set_max_iters(loop_bb, 48); // Fibonacci bound for 32-bit inputs
    let z = fg.cmp(CmpOp::Eq, b, 0);
    fg.cond_br(z, done, body);
    fg.switch_to(body);
    let t = fg.bin(BinOp::RemU, a, b);
    fg.copy_to(a, b);
    fg.copy_to(b, t);
    fg.br(loop_bb);
    fg.switch_to(done);
    fg.ret(Some(a.into()));
    let gcd_f = mb.func(fg.finish());

    // ---- main ---------------------------------------------------------------
    let mut f = FunctionBuilder::new("main", 0);
    let sq_loop = f.new_block("sq_loop");
    let sq_body = f.new_block("sq_body");
    let gcd_loop = f.new_block("gcd_loop");
    let gcd_body = f.new_block("gcd_body");
    let deg_loop = f.new_block("deg_loop");
    let deg_body = f.new_block("deg_body");
    let exit = f.new_block("exit");

    let i = f.copy(0);
    f.store_scalar(acc_v, 0);
    f.br(sq_loop);

    f.switch_to(sq_loop);
    f.set_max_iters(sq_loop, N as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, i, N as i32);
    f.cond_br(fin, gcd_loop, sq_body);
    f.switch_to(sq_body);
    let v = f.load_idx(data, i);
    let s = f.call(isqrt_f, vec![Operand::Reg(v)]);
    let a0 = f.load_scalar(acc_v);
    let a1 = f.bin(BinOp::Add, a0, s);
    f.store_scalar(acc_v, a1);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(sq_loop);

    f.switch_to(gcd_loop);
    f.set_max_iters(gcd_loop, N as u64 / 2 + 1);
    f.copy_to(i, 0);
    f.br(gcd_body);
    // NOTE: the header above re-initializes i; the loop itself is
    // gcd_body -> gcd_check below. Keep a dedicated check block.
    let gcd_check = f.new_block("gcd_check");
    f.switch_to(gcd_body);
    let fin = f.cmp(CmpOp::SGe, i, N as i32);
    f.cond_br(fin, deg_loop, gcd_check);
    f.set_max_iters(gcd_body, N as u64 / 2 + 2);
    f.switch_to(gcd_check);
    let x = f.load_idx(data, i);
    let i_plus = f.bin(BinOp::Add, i, 1);
    let y = f.load_idx(data, i_plus);
    let x1 = f.bin(BinOp::Or, x, 1);
    let y1 = f.bin(BinOp::Or, y, 1);
    let g = f.call(gcd_f, vec![Operand::Reg(x1), Operand::Reg(y1)]);
    let a0 = f.load_scalar(acc_v);
    let a1 = f.bin(BinOp::Add, a0, g);
    f.store_scalar(acc_v, a1);
    let i2 = f.bin(BinOp::Add, i, 2);
    f.copy_to(i, i2);
    f.br(gcd_body);

    f.switch_to(deg_loop);
    f.copy_to(i, 0);
    f.br(deg_body);
    f.switch_to(deg_body);
    f.set_max_iters(deg_body, N as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, i, N as i32);
    let deg_work = f.new_block("deg_work");
    f.cond_br(fin, exit, deg_work);
    f.switch_to(deg_work);
    let v = f.load_idx(data, i);
    let deg = f.bin(BinOp::And, v, 0x3FF);
    let q = f.bin(BinOp::Mul, deg, DEG2RAD_Q16);
    let rad = f.bin(BinOp::AShr, q, 8);
    let a0 = f.load_scalar(acc_v);
    let a1 = f.bin(BinOp::Add, a0, rad);
    f.store_scalar(acc_v, a1);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(deg_body);

    f.switch_to(exit);
    let out = f.load_scalar(acc_v);
    f.ret(Some(out.into()));

    let main = mb.func(f.finish());
    mb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, InstrumentedModule, RunConfig};

    #[test]
    fn isqrt_reference_is_correct() {
        for v in [
            0u32,
            1,
            2,
            3,
            4,
            15,
            16,
            17,
            99,
            100,
            1 << 30,
            u32::MAX >> 2,
        ] {
            let r = isqrt(v);
            assert!(r * r <= v, "isqrt({v}) = {r}");
            assert!((r + 1).checked_mul(r + 1).map(|sq| sq > v).unwrap_or(true));
        }
    }

    #[test]
    fn gcd_reference_is_correct() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn emulated_matches_oracle() {
        for seed in [0, 3, 99] {
            let im = InstrumentedModule::bare(build(seed));
            let out = run(&im, RunConfig::default()).unwrap();
            assert!(out.completed());
            assert_eq!(out.result, Some(oracle(seed)), "seed {seed}");
        }
    }

    #[test]
    fn fits_2kb_vm() {
        assert!(build(1).data_bytes() <= 2048);
    }

    #[test]
    fn module_verifies() {
        assert!(schematic_ir::verify_module(&build(3)).is_empty());
    }
}
