//! Deterministic input generation shared by kernels and oracles.
//!
//! The paper gathers execution traces by running each benchmark 1000
//! times with randomly-generated inputs (§IV-A.c). Reproducibility
//! demands that the IR module and the native oracle see bit-identical
//! inputs, so generation is a tiny self-contained PRNG keyed by the
//! benchmark seed (no dependence on `rand`'s stream stability).

/// SplitMix64 — tiny, fast, well-distributed; the de-facto standard
/// seeding PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits as `i32`.
    pub fn next_i32(&mut self) -> i32 {
        (self.next_u64() >> 32) as i32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % u64::from(bound)) as u32
    }

    /// A vector of `n` random words.
    pub fn words(&mut self, n: usize) -> Vec<i32> {
        (0..n).map(|_| self.next_i32()).collect()
    }

    /// A vector of `n` random byte-valued words (`0..=255`).
    pub fn bytes(&mut self, n: usize) -> Vec<i32> {
        (0..n).map(|_| self.below(256) as i32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(g.below(17) < 17);
        }
    }

    #[test]
    fn bytes_are_byte_valued() {
        let mut g = SplitMix64::new(7);
        for b in g.bytes(256) {
            assert!((0..=255).contains(&b));
        }
    }

    #[test]
    fn words_have_requested_length() {
        assert_eq!(SplitMix64::new(1).words(13).len(), 13);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        let _ = SplitMix64::new(1).below(0);
    }
}
