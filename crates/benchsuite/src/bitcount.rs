//! `bitcount` — population count by three methods (MiBench2 `bitcnts`).
//!
//! Counts the set bits of each input word with (a) a 32-step shift-and-
//! mask loop, (b) Kernighan's `n &= n - 1` loop, and (c) a 16-entry
//! nibble lookup table, summing all three counts. Small data footprint
//! (< 1 KB): input array of 96 words + the nibble table.

use crate::inputs::SplitMix64;
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Operand, Variable};

/// Number of input words counted.
pub const N_INPUTS: usize = 96;
/// Counting passes over the array (MiBench `bitcnts` iterates too),
/// sizing the kernel toward the paper's ≈ 0.8 M cycles.
pub const PASSES: i32 = 8;

fn nibble_table() -> Vec<i32> {
    (0..16).map(|n: i32| n.count_ones() as i32).collect()
}

fn inputs(seed: u64) -> Vec<i32> {
    SplitMix64::new(seed).words(N_INPUTS)
}

/// Native reference result.
pub fn oracle(seed: u64) -> i32 {
    let mut total: i32 = 0;
    for _ in 0..PASSES {
        for v in inputs(seed) {
            // Three methods all count the same bits; the kernel sums
            // them to exercise distinct access patterns.
            total = total.wrapping_add(3 * v.count_ones() as i32);
        }
    }
    total
}

/// Builds the IR module.
pub fn build(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("bitcount");
    let data = mb.var(Variable::array("data", N_INPUTS).with_init(inputs(seed)));
    let table = mb.var(Variable::array("nibble_table", 16).with_init(nibble_table()));
    let total_v = mb.var(Variable::scalar("total"));

    // --- method (a): shift loop ------------------------------------------
    let mut fa = FunctionBuilder::new("count_shift", 1);
    let loop_bb = fa.new_block("loop");
    let body = fa.new_block("body");
    let done_bb = fa.new_block("done");
    let n = fa.params()[0];
    let cnt = fa.copy(0);
    let k = fa.copy(0);
    fa.br(loop_bb);
    fa.switch_to(loop_bb);
    fa.set_max_iters(loop_bb, 33);
    let fin = fa.cmp(CmpOp::SGe, k, 32);
    fa.cond_br(fin, done_bb, body);
    fa.switch_to(body);
    let sh = fa.bin(BinOp::LShr, n, k);
    let bit = fa.bin(BinOp::And, sh, 1);
    let c2 = fa.bin(BinOp::Add, cnt, bit);
    fa.copy_to(cnt, c2);
    let k2 = fa.bin(BinOp::Add, k, 1);
    fa.copy_to(k, k2);
    fa.br(loop_bb);
    fa.switch_to(done_bb);
    fa.ret(Some(cnt.into()));
    let count_shift = mb.func(fa.finish());

    // --- method (b): Kernighan -------------------------------------------
    let mut fb = FunctionBuilder::new("count_kernighan", 1);
    let loop_bb = fb.new_block("loop");
    let body = fb.new_block("body");
    let done_bb = fb.new_block("done");
    let n = fb.params()[0];
    let cnt = fb.copy(0);
    fb.br(loop_bb);
    fb.switch_to(loop_bb);
    fb.set_max_iters(loop_bb, 33);
    let z = fb.cmp(CmpOp::Eq, n, 0);
    fb.cond_br(z, done_bb, body);
    fb.switch_to(body);
    let m1 = fb.bin(BinOp::Sub, n, 1);
    let n2 = fb.bin(BinOp::And, n, m1);
    fb.copy_to(n, n2);
    let c2 = fb.bin(BinOp::Add, cnt, 1);
    fb.copy_to(cnt, c2);
    fb.br(loop_bb);
    fb.switch_to(done_bb);
    fb.ret(Some(cnt.into()));
    let count_kernighan = mb.func(fb.finish());

    // --- method (c): nibble table ------------------------------------------
    let mut fc = FunctionBuilder::new("count_nibbles", 1);
    let loop_bb = fc.new_block("loop");
    let body = fc.new_block("body");
    let done_bb = fc.new_block("done");
    let n = fc.params()[0];
    let cnt = fc.copy(0);
    let k = fc.copy(0);
    fc.br(loop_bb);
    fc.switch_to(loop_bb);
    fc.set_max_iters(loop_bb, 9);
    let fin = fc.cmp(CmpOp::SGe, k, 8);
    fc.cond_br(fin, done_bb, body);
    fc.switch_to(body);
    let sh_amount = fc.bin(BinOp::Mul, k, 4);
    let sh = fc.bin(BinOp::LShr, n, sh_amount);
    let nib = fc.bin(BinOp::And, sh, 0xF);
    let t = fc.load_idx(table, nib);
    let c2 = fc.bin(BinOp::Add, cnt, t);
    fc.copy_to(cnt, c2);
    let k2 = fc.bin(BinOp::Add, k, 1);
    fc.copy_to(k, k2);
    fc.br(loop_bb);
    fc.switch_to(done_bb);
    fc.ret(Some(cnt.into()));
    let count_nibbles = mb.func(fc.finish());

    // --- main ---------------------------------------------------------------
    let mut f = FunctionBuilder::new("main", 0);
    let pass_loop = f.new_block("pass_loop");
    let pass_body = f.new_block("pass_body");
    let loop_bb = f.new_block("loop");
    let body = f.new_block("body");
    let pass_next = f.new_block("pass_next");
    let exit = f.new_block("exit");
    let pass = f.copy(0);
    let i = f.copy(0);
    f.store_scalar(total_v, 0);
    f.br(pass_loop);
    f.switch_to(pass_loop);
    f.set_max_iters(pass_loop, PASSES as u64 + 1);
    let pfin = f.cmp(CmpOp::SGe, pass, PASSES);
    f.cond_br(pfin, exit, pass_body);
    f.switch_to(pass_body);
    f.copy_to(i, 0);
    f.br(loop_bb);
    f.switch_to(loop_bb);
    f.set_max_iters(loop_bb, N_INPUTS as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, i, N_INPUTS as i32);
    f.cond_br(fin, pass_next, body);
    f.switch_to(body);
    let v = f.load_idx(data, i);
    let a = f.call(count_shift, vec![Operand::Reg(v)]);
    let b = f.call(count_kernighan, vec![Operand::Reg(v)]);
    let c = f.call(count_nibbles, vec![Operand::Reg(v)]);
    let t0 = f.load_scalar(total_v);
    let t1 = f.bin(BinOp::Add, t0, a);
    let t2 = f.bin(BinOp::Add, t1, b);
    let t3 = f.bin(BinOp::Add, t2, c);
    f.store_scalar(total_v, t3);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(loop_bb);
    f.switch_to(pass_next);
    let p2 = f.bin(BinOp::Add, pass, 1);
    f.copy_to(pass, p2);
    f.br(pass_loop);
    f.switch_to(exit);
    let r = f.load_scalar(total_v);
    f.ret(Some(r.into()));
    let main = mb.func(f.finish());
    mb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, InstrumentedModule, RunConfig};

    #[test]
    fn emulated_matches_oracle() {
        for seed in [0, 9, 1234] {
            let im = InstrumentedModule::bare(build(seed));
            let out = run(&im, RunConfig::default()).unwrap();
            assert!(out.completed());
            assert_eq!(out.result, Some(oracle(seed)), "seed {seed}");
        }
    }

    #[test]
    fn oracle_counts_bits() {
        // For any input set, the result is 3 × total popcount.
        let total: i32 = inputs(3).iter().map(|v| v.count_ones() as i32).sum();
        assert_eq!(oracle(3), 3 * PASSES * total);
    }

    #[test]
    fn module_has_three_helper_functions() {
        let m = build(1);
        assert_eq!(m.funcs.len(), 4);
        assert!(m.func_by_name("count_kernighan").is_some());
    }

    #[test]
    fn fits_2kb_vm() {
        assert!(build(1).data_bytes() <= 2048);
    }

    #[test]
    fn module_verifies() {
        assert!(schematic_ir::verify_module(&build(3)).is_empty());
    }
}
