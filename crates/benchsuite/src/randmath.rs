//! `randmath` — LCG random numbers pushed through mixed integer
//! arithmetic (MiBench2 `rand`-style). The shortest kernel of the suite
//! (Table II: ≈ 15 k cycles), with a tiny data footprint.

use crate::inputs::SplitMix64;
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable};

/// LCG iterations.
pub const ITERS: i32 = 160;

const MUL: i32 = 1_103_515_245;
const INC: i32 = 12_345;

fn start_state(seed: u64) -> i32 {
    SplitMix64::new(seed).next_i32()
}

/// Native reference result.
pub fn oracle(seed: u64) -> i32 {
    let mut x = start_state(seed);
    let mut acc: i32 = 0;
    for _ in 0..ITERS {
        x = x.wrapping_mul(MUL).wrapping_add(INC);
        let r = (((x as u32) >> 16) & 0x7FFF) as i32;
        let d = (r & 0xFF) + 1;
        acc = acc.wrapping_add(r).wrapping_add(r / d).wrapping_sub(r % d);
        acc ^= r.wrapping_mul(3);
    }
    acc
}

/// Builds the IR module.
pub fn build(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("randmath");
    let state = mb.var(Variable::scalar("state").with_init(vec![start_state(seed)]));
    let acc_v = mb.var(Variable::scalar("acc"));

    let mut f = FunctionBuilder::new("main", 0);
    let loop_bb = f.new_block("loop");
    let body = f.new_block("body");
    let exit = f.new_block("exit");

    let i = f.copy(0);
    f.store_scalar(acc_v, 0);
    f.br(loop_bb);

    f.switch_to(loop_bb);
    f.set_max_iters(loop_bb, ITERS as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, i, ITERS);
    f.cond_br(fin, exit, body);

    f.switch_to(body);
    let x0 = f.load_scalar(state);
    let xm = f.bin(BinOp::Mul, x0, MUL);
    let x = f.bin(BinOp::Add, xm, INC);
    f.store_scalar(state, x);
    let sh = f.bin(BinOp::LShr, x, 16);
    let r = f.bin(BinOp::And, sh, 0x7FFF);
    let dm = f.bin(BinOp::And, r, 0xFF);
    let d = f.bin(BinOp::Add, dm, 1);
    let q = f.bin(BinOp::DivS, r, d);
    let m = f.bin(BinOp::RemS, r, d);
    let a0 = f.load_scalar(acc_v);
    let a1 = f.bin(BinOp::Add, a0, r);
    let a2 = f.bin(BinOp::Add, a1, q);
    let a3 = f.bin(BinOp::Sub, a2, m);
    let r3 = f.bin(BinOp::Mul, r, 3);
    let a4 = f.bin(BinOp::Xor, a3, r3);
    f.store_scalar(acc_v, a4);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(loop_bb);

    f.switch_to(exit);
    let out = f.load_scalar(acc_v);
    f.ret(Some(out.into()));

    let main = mb.func(f.finish());
    mb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, InstrumentedModule, RunConfig};

    #[test]
    fn emulated_matches_oracle() {
        for seed in [0, 1, 77] {
            let im = InstrumentedModule::bare(build(seed));
            let out = run(&im, RunConfig::default()).unwrap();
            assert!(out.completed());
            assert_eq!(out.result, Some(oracle(seed)), "seed {seed}");
        }
    }

    #[test]
    fn is_the_shortest_kernel() {
        let im = InstrumentedModule::bare(build(1));
        let out = run(&im, RunConfig::default()).unwrap();
        assert!(out.metrics.active_cycles < 60_000);
    }

    #[test]
    fn fits_2kb_vm() {
        assert!(build(1).data_bytes() <= 2048);
    }

    #[test]
    fn module_verifies() {
        assert!(schematic_ir::verify_module(&build(3)).is_empty());
    }
}
