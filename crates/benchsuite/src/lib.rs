//! # schematic-benchsuite
//!
//! The eight MiBench2-like benchmark kernels the SCHEMATIC paper
//! evaluates on (§IV-A.d): `aes`, `basicmath`, `bitcount`, `crc`,
//! `dijkstra`, `fft`, `randmath`, `rc4` — hand-written in the
//! [`schematic_ir`] IR with working-set sizes matching the paper's
//! VM-fit analysis (Table I):
//!
//! | kernel    | data footprint | fits 2 KB VM? |
//! |-----------|---------------:|:--------------|
//! | aes       | ≈ 1.5 KB       | yes |
//! | basicmath | < 1 KB         | yes |
//! | bitcount  | < 1 KB         | yes |
//! | crc       | ≈ 1.6 KB       | yes |
//! | dijkstra  | ≈ 30 KB        | no  |
//! | fft       | ≈ 16.7 KB      | no  |
//! | randmath  | < 1 KB         | yes |
//! | rc4       | ≈ 6.5 KB       | no  |
//!
//! Each kernel is a pure function of a seed: the same seed produces the
//! same baked-in input data for the IR module and for the native Rust
//! **oracle**, so the emulated result can be checked bit-exactly.
//!
//! ```
//! use schematic_benchsuite as bs;
//! use schematic_emu::{run, InstrumentedModule, RunConfig};
//!
//! let bench = bs::by_name("crc").unwrap();
//! let module = (bench.build)(42);
//! let im = InstrumentedModule::bare(module);
//! let out = run(&im, RunConfig::default())?;
//! assert_eq!(out.result, Some((bench.oracle)(42)));
//! # Ok::<(), schematic_emu::EmuError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aes;
pub mod basicmath;
pub mod bitcount;
pub mod crc;
pub mod dijkstra;
pub mod fft;
pub mod inputs;
pub mod randmath;
pub mod rc4;

use schematic_ir::Module;

/// A benchmark kernel: IR builder plus native oracle.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Kernel name (matches the paper's benchmark names).
    pub name: &'static str,
    /// Builds the IR module with inputs derived from `seed`.
    pub build: fn(seed: u64) -> Module,
    /// Computes the expected result natively for the same `seed`.
    pub oracle: fn(seed: u64) -> i32,
}

/// All eight kernels, in the paper's order.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "aes",
            build: aes::build,
            oracle: aes::oracle,
        },
        Benchmark {
            name: "basicmath",
            build: basicmath::build,
            oracle: basicmath::oracle,
        },
        Benchmark {
            name: "bitcount",
            build: bitcount::build,
            oracle: bitcount::oracle,
        },
        Benchmark {
            name: "crc",
            build: crc::build,
            oracle: crc::oracle,
        },
        Benchmark {
            name: "dijkstra",
            build: dijkstra::build,
            oracle: dijkstra::oracle,
        },
        Benchmark {
            name: "fft",
            build: fft::build,
            oracle: fft::oracle,
        },
        Benchmark {
            name: "randmath",
            build: randmath::build,
            oracle: randmath::oracle,
        },
        Benchmark {
            name: "rc4",
            build: rc4::build,
            oracle: rc4::oracle,
        },
    ]
}

/// Looks up a kernel by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eight_kernels() {
        let names: Vec<_> = all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "aes",
                "basicmath",
                "bitcount",
                "crc",
                "dijkstra",
                "fft",
                "randmath",
                "rc4"
            ]
        );
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("fft").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_modules_verify() {
        for b in all() {
            let m = (b.build)(7);
            let errs = schematic_ir::verify_module(&m);
            assert!(errs.is_empty(), "{}: {:?}", b.name, errs);
        }
    }

    #[test]
    fn table1_data_footprints() {
        // The shape that drives Table I: which kernels fit a 2 KB VM.
        let svm = 2048;
        let fits = |name: &str| by_name(name).map(|b| (b.build)(1).data_bytes() <= svm);
        for name in ["aes", "basicmath", "bitcount", "crc", "randmath"] {
            assert_eq!(fits(name), Some(true), "{name} should fit 2 KB");
        }
        for name in ["dijkstra", "fft", "rc4"] {
            assert_eq!(fits(name), Some(false), "{name} should exceed 2 KB");
        }
        // Order-of-magnitude match with the paper's reported sizes.
        let bytes = |name: &str| (by_name(name).unwrap().build)(1).data_bytes();
        let dij = bytes("dijkstra");
        assert!((25_000..40_000).contains(&dij), "dijkstra = {dij}");
        let fft = bytes("fft");
        assert!((12_000..20_000).contains(&fft), "fft = {fft}");
        let rc4 = bytes("rc4");
        assert!((5_000..8_000).contains(&rc4), "rc4 = {rc4}");
    }
}
