//! `dijkstra` — single-source shortest paths on a dense random graph
//! (MiBench2 `dijkstra`).
//!
//! The 86 × 86 adjacency matrix alone occupies ≈ 29.6 KB, matching the
//! paper's ≈ 30 KB working set — by far the largest kernel, impossible
//! for all-VM techniques on a 2 KB-VM platform (Table I).

use crate::inputs::SplitMix64;
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable};

/// Number of vertices.
pub const V: usize = 86;
/// Number of source vertices solved (MiBench `dijkstra` solves many
/// source/destination queries); sizes the kernel toward the paper's
/// ≈ 1.4 M cycles.
pub const SOURCES: usize = 4;
/// "Infinite" distance sentinel.
pub const INF: i32 = 1 << 29;

fn adjacency(seed: u64) -> Vec<i32> {
    let mut g = SplitMix64::new(seed);
    let mut adj = vec![0i32; V * V];
    for r in 0..V {
        for c in 0..V {
            adj[r * V + c] = if r == c { 0 } else { 1 + g.below(20) as i32 };
        }
    }
    adj
}

/// Native reference result: wrapping sum of all shortest distances from
/// each of the [`SOURCES`] source vertices.
pub fn oracle(seed: u64) -> i32 {
    let adj = adjacency(seed);
    let mut acc: i32 = 0;
    for src in 0..SOURCES {
        let mut dist = vec![INF; V];
        let mut visited = [false; V];
        dist[src] = 0;
        for _ in 0..V {
            // Find the nearest unvisited vertex.
            let mut u = usize::MAX;
            let mut best = INF + 1;
            for (i, &d) in dist.iter().enumerate() {
                if !visited[i] && d < best {
                    best = d;
                    u = i;
                }
            }
            if u == usize::MAX {
                break;
            }
            visited[u] = true;
            for w in 0..V {
                let cand = dist[u].wrapping_add(adj[u * V + w]);
                if !visited[w] && cand < dist[w] {
                    dist[w] = cand;
                }
            }
        }
        acc = dist.iter().fold(acc, |a, &d| a.wrapping_add(d));
    }
    acc
}

/// Builds the IR module.
#[allow(clippy::too_many_lines)]
pub fn build(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("dijkstra");
    let adj_v = mb.var(Variable::array("adj", V * V).with_init(adjacency(seed)));
    let dist_v = mb.var(Variable::array("dist", V));
    let vis_v = mb.var(Variable::array("visited", V));
    let acc_v = mb.var(Variable::scalar("acc"));

    let mut f = FunctionBuilder::new("main", 0);
    let src_loop = f.new_block("src_loop");
    let src_body = f.new_block("src_body");
    let src_next = f.new_block("src_next");
    let init_loop = f.new_block("init_loop");
    let init_body = f.new_block("init_body");
    let outer_init = f.new_block("outer_init");
    let outer_loop = f.new_block("outer_loop");
    let scan_init = f.new_block("scan_init");
    let scan_loop = f.new_block("scan_loop");
    let scan_check = f.new_block("scan_check");
    let scan_upd = f.new_block("scan_upd");
    let scan_next = f.new_block("scan_next");
    let found = f.new_block("found");
    let relax_loop = f.new_block("relax_loop");
    let relax_check = f.new_block("relax_check");
    let relax_upd = f.new_block("relax_upd");
    let relax_next = f.new_block("relax_next");
    let outer_next = f.new_block("outer_next");
    let sum_init = f.new_block("sum_init");
    let sum_loop = f.new_block("sum_loop");
    let sum_body = f.new_block("sum_body");
    let exit = f.new_block("exit");

    // entry: iterate over source vertices
    let src = f.copy(0);
    let i = f.copy(0);
    f.store_scalar(acc_v, 0);
    f.br(src_loop);
    f.switch_to(src_loop);
    f.set_max_iters(src_loop, SOURCES as u64 + 1);
    let sfin = f.cmp(CmpOp::SGe, src, SOURCES as i32);
    f.cond_br(sfin, exit, src_body);
    f.switch_to(src_body);
    f.copy_to(i, 0);
    f.br(init_loop);

    // init: dist[i] = INF (dist[src] = 0), visited[i] = 0
    f.switch_to(init_loop);
    f.set_max_iters(init_loop, V as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, i, V as i32);
    f.cond_br(fin, outer_init, init_body);
    f.switch_to(init_body);
    let is0 = f.cmp(CmpOp::Eq, i, src);
    let d = f.select(is0, 0, INF);
    f.store_idx(dist_v, i, d);
    f.store_idx(vis_v, i, 0);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(init_loop);

    // outer loop: V iterations
    f.switch_to(outer_init);
    let it = f.copy(0);
    f.br(outer_loop);
    f.switch_to(outer_loop);
    f.set_max_iters(outer_loop, V as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, it, V as i32);
    f.cond_br(fin, sum_init, scan_init);

    // scan for nearest unvisited vertex
    f.switch_to(scan_init);
    let u = f.copy(-1);
    let best = f.copy(INF + 1);
    let j = f.copy(0);
    f.br(scan_loop);
    f.switch_to(scan_loop);
    f.set_max_iters(scan_loop, V as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, j, V as i32);
    f.cond_br(fin, found, scan_check);
    f.switch_to(scan_check);
    let vis = f.load_idx(vis_v, j);
    let dj = f.load_idx(dist_v, j);
    let unv = f.cmp(CmpOp::Eq, vis, 0);
    let closer = f.cmp(CmpOp::SLt, dj, best);
    let both = f.bin(BinOp::And, unv, closer);
    f.cond_br(both, scan_upd, scan_next);
    f.switch_to(scan_upd);
    f.copy_to(best, dj);
    f.copy_to(u, j);
    f.br(scan_next);
    f.switch_to(scan_next);
    let j2 = f.bin(BinOp::Add, j, 1);
    f.copy_to(j, j2);
    f.br(scan_loop);

    // found: if u == -1 we are done (cannot happen on a complete graph,
    // kept for generality)
    f.switch_to(found);
    let none = f.cmp(CmpOp::Eq, u, -1);
    let relax_init = f.new_block("relax_init");
    f.cond_br(none, sum_init, relax_init);
    f.switch_to(relax_init);
    f.store_idx(vis_v, u, 1);
    let du = f.load_idx(dist_v, u);
    let row = f.bin(BinOp::Mul, u, V as i32);
    let w = f.copy(0);
    f.br(relax_loop);
    f.switch_to(relax_loop);
    f.set_max_iters(relax_loop, V as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, w, V as i32);
    f.cond_br(fin, outer_next, relax_check);
    f.switch_to(relax_check);
    let visw = f.load_idx(vis_v, w);
    let idx = f.bin(BinOp::Add, row, w);
    let weight = f.load_idx(adj_v, idx);
    let cand = f.bin(BinOp::Add, du, weight);
    let dw = f.load_idx(dist_v, w);
    let unv = f.cmp(CmpOp::Eq, visw, 0);
    let lt = f.cmp(CmpOp::SLt, cand, dw);
    let both = f.bin(BinOp::And, unv, lt);
    f.cond_br(both, relax_upd, relax_next);
    f.switch_to(relax_upd);
    f.store_idx(dist_v, w, cand);
    f.br(relax_next);
    f.switch_to(relax_next);
    let w2 = f.bin(BinOp::Add, w, 1);
    f.copy_to(w, w2);
    f.br(relax_loop);

    f.switch_to(outer_next);
    let it2 = f.bin(BinOp::Add, it, 1);
    f.copy_to(it, it2);
    f.br(outer_loop);

    // sum distances
    f.switch_to(sum_init);
    f.copy_to(i, 0);
    f.br(sum_loop);
    f.switch_to(sum_loop);
    f.set_max_iters(sum_loop, V as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, i, V as i32);
    f.cond_br(fin, src_next, sum_body);
    f.switch_to(sum_body);
    let d = f.load_idx(dist_v, i);
    let a0 = f.load_scalar(acc_v);
    let a1 = f.bin(BinOp::Add, a0, d);
    f.store_scalar(acc_v, a1);
    let i2 = f.bin(BinOp::Add, i, 1);
    f.copy_to(i, i2);
    f.br(sum_loop);

    f.switch_to(src_next);
    let s2 = f.bin(BinOp::Add, src, 1);
    f.copy_to(src, s2);
    f.br(src_loop);

    f.switch_to(exit);
    let out = f.load_scalar(acc_v);
    f.ret(Some(out.into()));

    let main = mb.func(f.finish());
    mb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, InstrumentedModule, RunConfig};

    #[test]
    fn oracle_on_known_graph() {
        // Spot-check Dijkstra on a tiny handcrafted instance by mirroring
        // the algorithm: distances never exceed direct edges.
        let adj = adjacency(1);
        let r = oracle(1);
        // Sum of direct edges from each source is an upper bound on the
        // shortest-path sums.
        let direct: i32 = (0..SOURCES)
            .map(|s| (0..V).map(|c| adj[s * V + c]).sum::<i32>())
            .sum();
        assert!(r <= direct);
        assert!(r > 0);
    }

    #[test]
    fn emulated_matches_oracle() {
        for seed in [0, 13] {
            let im = InstrumentedModule::bare(build(seed));
            let out = run(&im, RunConfig::default()).unwrap();
            assert!(out.completed());
            assert_eq!(out.result, Some(oracle(seed)), "seed {seed}");
        }
    }

    #[test]
    fn exceeds_2kb_vm_with_paper_footprint() {
        let bytes = build(1).data_bytes();
        assert!((25_000..40_000).contains(&bytes), "dijkstra = {bytes}");
    }

    #[test]
    fn module_verifies() {
        assert!(schematic_ir::verify_module(&build(3)).is_empty());
    }
}
