//! `fft` — 1024-point fixed-point radix-2 FFT (MiBench2 `fft`).
//!
//! Q15 twiddle factors with per-stage scaling (the classic embedded
//! fixed-point formulation), computed **in place** like MiBench's `fft`
//! (the bit-reversal permutation swaps elements, so write-after-read
//! hazards appear from the very first loop — which is what lets
//! RATCHET-style WAR checkpointing make progress on this kernel).
//! Data footprint: real and imaginary working arrays (8 KB) + twiddle
//! tables (4 KB) ≈ 12.3 KB — the paper reports 16.7 KB; both exceed the
//! 2 KB VM (Table I).

use crate::inputs::SplitMix64;
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable};

/// FFT size (power of two).
pub const N: usize = 1024;
const LOG2N: usize = 10;

fn twiddles() -> (Vec<i32>, Vec<i32>) {
    let half = N / 2;
    let mut cos_t = Vec::with_capacity(half);
    let mut sin_t = Vec::with_capacity(half);
    for k in 0..half {
        let ang = 2.0 * std::f64::consts::PI * k as f64 / N as f64;
        cos_t.push((32767.0 * ang.cos()).round() as i32);
        sin_t.push((32767.0 * ang.sin()).round() as i32);
    }
    (cos_t, sin_t)
}

fn input(seed: u64) -> Vec<i32> {
    let mut g = SplitMix64::new(seed);
    (0..N).map(|_| (g.next_i32() & 0xFFF) - 2048).collect()
}

/// Native reference result (bit-exact mirror of the IR arithmetic).
pub fn oracle(seed: u64) -> i32 {
    let (cos_t, sin_t) = twiddles();
    let mut re = input(seed);
    let mut im = vec![0i32; N];
    // In-place bit-reversal permutation.
    for idx in 0..N {
        let mut x = idx;
        let mut rev = 0usize;
        for _ in 0..LOG2N {
            rev = (rev << 1) | (x & 1);
            x >>= 1;
        }
        if idx < rev {
            re.swap(idx, rev);
        }
    }
    // Stages with per-stage scaling by 2.
    let mut len = 2usize;
    while len <= N {
        let half = len / 2;
        let step = N / len;
        let mut i = 0usize;
        while i < N {
            for k in 0..half {
                let wr = cos_t[k * step];
                let wi = -sin_t[k * step];
                let (ur, ui) = (re[i + k], im[i + k]);
                let (xr, xi) = (re[i + k + half], im[i + k + half]);
                let vr = (xr.wrapping_mul(wr).wrapping_sub(xi.wrapping_mul(wi))) >> 15;
                let vi = (xr.wrapping_mul(wi).wrapping_add(xi.wrapping_mul(wr))) >> 15;
                re[i + k] = ur.wrapping_add(vr) >> 1;
                im[i + k] = ui.wrapping_add(vi) >> 1;
                re[i + k + half] = ur.wrapping_sub(vr) >> 1;
                im[i + k + half] = ui.wrapping_sub(vi) >> 1;
            }
            i += len;
        }
        len <<= 1;
    }
    let mut acc: i32 = 0;
    for idx in 0..N {
        acc = acc.wrapping_add(re[idx]) ^ im[idx];
    }
    acc
}

/// Builds the IR module.
#[allow(clippy::too_many_lines)]
pub fn build(seed: u64) -> Module {
    let (cos_t, sin_t) = twiddles();
    let mut mb = ModuleBuilder::new("fft");
    let re_v = mb.var(Variable::array("re", N).with_init(input(seed)));
    let im_v = mb.var(Variable::array("im", N));
    let cos_v = mb.var(Variable::array("cos_tab", N / 2).with_init(cos_t));
    let sin_v = mb.var(Variable::array("sin_tab", N / 2).with_init(sin_t));
    let acc_v = mb.var(Variable::scalar("acc"));

    let mut f = FunctionBuilder::new("main", 0);
    let br_loop = f.new_block("br_loop");
    let br_body = f.new_block("br_body");
    let rev_loop = f.new_block("rev_loop");
    let rev_body = f.new_block("rev_body");
    let rev_done = f.new_block("rev_done");
    let stage_loop = f.new_block("stage_loop");
    let group_init = f.new_block("group_init");
    let group_loop = f.new_block("group_loop");
    let bf_init = f.new_block("bf_init");
    let bf_loop = f.new_block("bf_loop");
    let bf_body = f.new_block("bf_body");
    let group_next = f.new_block("group_next");
    let stage_next = f.new_block("stage_next");
    let sum_loop = f.new_block("sum_loop");
    let sum_body = f.new_block("sum_body");
    let exit = f.new_block("exit");

    // --- in-place bit-reversal permutation (swap when idx < rev) -----------
    let swap_bb = f.new_block("swap");
    let no_swap = f.new_block("no_swap");
    let idx = f.copy(0);
    f.store_scalar(acc_v, 0);
    f.br(br_loop);

    f.switch_to(br_loop);
    f.set_max_iters(br_loop, N as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, idx, N as i32);
    f.cond_br(fin, stage_loop, br_body);

    f.switch_to(br_body);
    let x = f.copy(idx);
    let rev = f.copy(0);
    let bit = f.copy(0);
    f.br(rev_loop);
    f.switch_to(rev_loop);
    f.set_max_iters(rev_loop, LOG2N as u64 + 1);
    let rfin = f.cmp(CmpOp::SGe, bit, LOG2N as i32);
    f.cond_br(rfin, rev_done, rev_body);
    f.switch_to(rev_body);
    let r1 = f.bin(BinOp::Shl, rev, 1);
    let lo = f.bin(BinOp::And, x, 1);
    let r2 = f.bin(BinOp::Or, r1, lo);
    f.copy_to(rev, r2);
    let x2 = f.bin(BinOp::LShr, x, 1);
    f.copy_to(x, x2);
    let b2 = f.bin(BinOp::Add, bit, 1);
    f.copy_to(bit, b2);
    f.br(rev_loop);
    f.switch_to(rev_done);
    let lt = f.cmp(CmpOp::SLt, idx, rev);
    f.cond_br(lt, swap_bb, no_swap);
    f.switch_to(swap_bb);
    let a = f.load_idx(re_v, idx);
    let bb = f.load_idx(re_v, rev);
    f.store_idx(re_v, idx, bb);
    f.store_idx(re_v, rev, a);
    f.br(no_swap);
    f.switch_to(no_swap);
    let i2 = f.bin(BinOp::Add, idx, 1);
    f.copy_to(idx, i2);
    f.br(br_loop);

    // --- stages -------------------------------------------------------------
    f.switch_to(stage_loop);
    let len = f.copy(2);
    f.br(group_init);

    f.switch_to(group_init);
    f.set_max_iters(group_init, LOG2N as u64 + 1);
    let sfin = f.cmp(CmpOp::SGt, len, N as i32);
    let half = f.bin(BinOp::AShr, len, 1);
    let step = f.bin(BinOp::DivS, N as i32, len);
    let gi = f.copy(0);
    f.cond_br(sfin, sum_loop, group_loop);

    f.switch_to(group_loop);
    f.set_max_iters(group_loop, N as u64 / 2 + 1);
    let gfin = f.cmp(CmpOp::SGe, gi, N as i32);
    f.cond_br(gfin, stage_next, bf_init);

    f.switch_to(bf_init);
    let k = f.copy(0);
    f.br(bf_loop);

    f.switch_to(bf_loop);
    f.set_max_iters(bf_loop, N as u64 / 2 + 1);
    let kfin = f.cmp(CmpOp::SGe, k, half);
    f.cond_br(kfin, group_next, bf_body);

    f.switch_to(bf_body);
    let tw = f.bin(BinOp::Mul, k, step);
    let wr = f.load_idx(cos_v, tw);
    let wi0 = f.load_idx(sin_v, tw);
    let wi = f.un(schematic_ir::UnOp::Neg, wi0);
    let a_idx = f.bin(BinOp::Add, gi, k);
    let b_idx = f.bin(BinOp::Add, a_idx, half);
    let ur = f.load_idx(re_v, a_idx);
    let ui = f.load_idx(im_v, a_idx);
    let xr = f.load_idx(re_v, b_idx);
    let xi = f.load_idx(im_v, b_idx);
    let m1 = f.bin(BinOp::Mul, xr, wr);
    let m2 = f.bin(BinOp::Mul, xi, wi);
    let d1 = f.bin(BinOp::Sub, m1, m2);
    let vr = f.bin(BinOp::AShr, d1, 15);
    let m3 = f.bin(BinOp::Mul, xr, wi);
    let m4 = f.bin(BinOp::Mul, xi, wr);
    let d2 = f.bin(BinOp::Add, m3, m4);
    let vi = f.bin(BinOp::AShr, d2, 15);
    let s1 = f.bin(BinOp::Add, ur, vr);
    let s1s = f.bin(BinOp::AShr, s1, 1);
    f.store_idx(re_v, a_idx, s1s);
    let s2 = f.bin(BinOp::Add, ui, vi);
    let s2s = f.bin(BinOp::AShr, s2, 1);
    f.store_idx(im_v, a_idx, s2s);
    let s3 = f.bin(BinOp::Sub, ur, vr);
    let s3s = f.bin(BinOp::AShr, s3, 1);
    f.store_idx(re_v, b_idx, s3s);
    let s4 = f.bin(BinOp::Sub, ui, vi);
    let s4s = f.bin(BinOp::AShr, s4, 1);
    f.store_idx(im_v, b_idx, s4s);
    let k2 = f.bin(BinOp::Add, k, 1);
    f.copy_to(k, k2);
    f.br(bf_loop);

    f.switch_to(group_next);
    let gi2 = f.bin(BinOp::Add, gi, len);
    f.copy_to(gi, gi2);
    f.br(group_loop);

    f.switch_to(stage_next);
    let len2 = f.bin(BinOp::Shl, len, 1);
    f.copy_to(len, len2);
    f.br(group_init);

    // --- checksum -------------------------------------------------------------
    f.switch_to(sum_loop);
    f.copy_to(idx, 0);
    let sum_head = f.new_block("sum_head");
    f.br(sum_head);
    f.switch_to(sum_head);
    f.set_max_iters(sum_head, N as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, idx, N as i32);
    f.cond_br(fin, exit, sum_body);
    f.switch_to(sum_body);
    let r = f.load_idx(re_v, idx);
    let i_val = f.load_idx(im_v, idx);
    let a0 = f.load_scalar(acc_v);
    let a1 = f.bin(BinOp::Add, a0, r);
    let a2 = f.bin(BinOp::Xor, a1, i_val);
    f.store_scalar(acc_v, a2);
    let i2 = f.bin(BinOp::Add, idx, 1);
    f.copy_to(idx, i2);
    f.br(sum_head);

    f.switch_to(exit);
    let out = f.load_scalar(acc_v);
    f.ret(Some(out.into()));

    let main = mb.func(f.finish());
    mb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, InstrumentedModule, RunConfig};

    #[test]
    fn twiddle_endpoints() {
        let (c, s) = twiddles();
        assert_eq!(c[0], 32767);
        assert_eq!(s[0], 0);
        // cos(pi/2) = 0, sin(pi/2) = 1 at k = N/4.
        assert_eq!(c[N / 4], 0);
        assert_eq!(s[N / 4], 32767);
    }

    #[test]
    fn dc_input_concentrates_in_bin_zero() {
        // A constant signal has all energy in bin 0: after the forward
        // FFT with per-stage scaling the other bins are ~0 and bin 0 is
        // the mean value.
        let (cos_t, sin_t) = twiddles();
        let mut re = vec![1000i32; N]; // constant input: bit-reversal is a no-op
        let mut im = vec![0i32; N];
        let mut len = 2usize;
        while len <= N {
            let half = len / 2;
            let step = N / len;
            let mut i = 0usize;
            while i < N {
                for k in 0..half {
                    let wr = cos_t[k * step];
                    let wi = -sin_t[k * step];
                    let (ur, ui) = (re[i + k], im[i + k]);
                    let (xr, xi) = (re[i + k + half], im[i + k + half]);
                    let vr = (xr.wrapping_mul(wr).wrapping_sub(xi.wrapping_mul(wi))) >> 15;
                    let vi = (xr.wrapping_mul(wi).wrapping_add(xi.wrapping_mul(wr))) >> 15;
                    re[i + k] = ur.wrapping_add(vr) >> 1;
                    im[i + k] = ui.wrapping_add(vi) >> 1;
                    re[i + k + half] = ur.wrapping_sub(vr) >> 1;
                    im[i + k + half] = ui.wrapping_sub(vi) >> 1;
                }
                i += len;
            }
            len <<= 1;
        }
        assert!((re[0] - 1000).abs() <= 16, "bin0 = {}", re[0]);
        for (i, &v) in re.iter().enumerate().skip(1) {
            assert!(v.abs() <= 2, "bin {i} = {v}");
        }
    }

    #[test]
    fn emulated_matches_oracle() {
        let im = InstrumentedModule::bare(build(4));
        let out = run(&im, RunConfig::default()).unwrap();
        assert!(out.completed());
        assert_eq!(out.result, Some(oracle(4)));
    }

    #[test]
    fn exceeds_2kb_vm_with_paper_footprint() {
        // In-place formulation: 12.3 KB (the paper's build reports
        // 16.7 KB; both far exceed the 2 KB VM, which is the property
        // Table I depends on).
        let bytes = build(1).data_bytes();
        assert!((12_000..20_000).contains(&bytes), "fft data = {bytes}");
    }

    #[test]
    fn module_verifies() {
        assert!(schematic_ir::verify_module(&build(3)).is_empty());
    }
}
