//! `aes` — AES-128 ECB encryption of a 512-byte message (MiBench2
//! `aes`). The longest-running kernel of the suite (Table II: ≈ 1 M
//! cycles on the paper's setup).
//!
//! The state and round keys are packed four bytes per word (column-major,
//! row 0 in the low byte), so the data footprint is S-box (1 KB) +
//! round keys (176 B) + message (512 B) ≈ 1.75 KB — it fits the 2 KB VM,
//! matching Table I. The IR performs the full key expansion and all ten
//! rounds; the native oracle implements the identical packed-word
//! algorithm and is itself validated against the FIPS-197 test vector.

use crate::inputs::SplitMix64;
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Operand, Reg, Variable};

/// Number of 16-byte blocks encrypted.
pub const N_BLOCKS: usize = 32;
/// ECB passes over the buffer (ciphertext is re-encrypted in place),
/// sizing the kernel to the paper's ≈ 1 M-cycle run without growing the
/// data footprint past the 2 KB VM.
pub const PASSES: usize = 6;

// ---------------------------------------------------------------------------
// Native reference implementation (packed words, little-endian bytes).
// ---------------------------------------------------------------------------

/// Computes the AES S-box algebraically (no typed-in table to mistype).
pub fn sbox() -> [u8; 256] {
    let mut sb = [0u8; 256];
    sb[0] = 0x63;
    let (mut p, mut q) = (1u8, 1u8);
    loop {
        // p := p * 3 in GF(2^8)
        p = p ^ (p << 1) ^ if p & 0x80 != 0 { 0x1B } else { 0 };
        // q := q / 3 (multiply by 0xf6, the inverse of 3)
        q ^= q << 1;
        q ^= q << 2;
        q ^= q << 4;
        if q & 0x80 != 0 {
            q ^= 0x09;
        }
        let x = q ^ q.rotate_left(1) ^ q.rotate_left(2) ^ q.rotate_left(3) ^ q.rotate_left(4);
        sb[p as usize] = x ^ 0x63;
        if p == 1 {
            break;
        }
    }
    sb
}

fn sub_word(w: u32, sb: &[u8; 256]) -> u32 {
    let mut out = 0u32;
    for k in 0..4 {
        let b = (w >> (8 * k)) & 0xFF;
        out |= u32::from(sb[b as usize]) << (8 * k);
    }
    out
}

fn rot_word(w: u32) -> u32 {
    w.rotate_right(8)
}

fn xtime(b: u32) -> u32 {
    ((b << 1) ^ (((b >> 7) & 1) * 0x1B)) & 0xFF
}

/// Expands a 128-bit key (4 packed words) into 44 round-key words.
pub fn expand_key(key: [u32; 4], sb: &[u8; 256]) -> [u32; 44] {
    let mut rk = [0u32; 44];
    rk[..4].copy_from_slice(&key);
    let mut rcon: u32 = 1;
    for i in 4..44 {
        let mut temp = rk[i - 1];
        if i % 4 == 0 {
            temp = sub_word(rot_word(temp), sb) ^ rcon;
            rcon = xtime(rcon);
        }
        rk[i] = rk[i - 4] ^ temp;
    }
    rk
}

fn unpack(s: [u32; 4]) -> [[u32; 4]; 4] {
    // b[row][col]
    let mut b = [[0u32; 4]; 4];
    for (col, w) in s.iter().enumerate() {
        for (row, slot) in b.iter_mut().enumerate() {
            slot[col] = (w >> (8 * row)) & 0xFF;
        }
    }
    b
}

fn pack(b: [[u32; 4]; 4]) -> [u32; 4] {
    let mut s = [0u32; 4];
    for (col, w) in s.iter_mut().enumerate() {
        for (row, slot) in b.iter().enumerate() {
            *w |= slot[col] << (8 * row);
        }
    }
    s
}

/// Encrypts one block with pre-expanded round keys.
pub fn encrypt_block(mut s: [u32; 4], rk: &[u32; 44], sb: &[u8; 256]) -> [u32; 4] {
    for c in 0..4 {
        s[c] ^= rk[c];
    }
    for round in 1..=10 {
        let mut b = unpack(s);
        // SubBytes
        for row in &mut b {
            for v in row.iter_mut() {
                *v = u32::from(sb[*v as usize]);
            }
        }
        // ShiftRows
        let mut sh = b;
        for (row, out) in sh.iter_mut().enumerate() {
            for (col, v) in out.iter_mut().enumerate() {
                *v = b[row][(col + row) % 4];
            }
        }
        let mut b = sh;
        // MixColumns (not in the final round)
        if round < 10 {
            #[allow(clippy::needless_range_loop)]
            for col in 0..4 {
                let (a, e, c2, d) = (b[0][col], b[1][col], b[2][col], b[3][col]);
                let t = a ^ e ^ c2 ^ d;
                b[0][col] = a ^ t ^ xtime(a ^ e);
                b[1][col] = e ^ t ^ xtime(e ^ c2);
                b[2][col] = c2 ^ t ^ xtime(c2 ^ d);
                b[3][col] = d ^ t ^ xtime(d ^ a);
            }
        }
        s = pack(b);
        for c in 0..4 {
            s[c] ^= rk[4 * round + c];
        }
    }
    s
}

fn key_words(seed: u64) -> [u32; 4] {
    let mut g = SplitMix64::new(seed ^ 0xA55A);
    [0; 4].map(|_| g.next_u64() as u32)
}

fn message_words(seed: u64) -> Vec<i32> {
    SplitMix64::new(seed).words(N_BLOCKS * 4)
}

/// Native reference result: XOR of all ciphertext words.
pub fn oracle(seed: u64) -> i32 {
    let sb = sbox();
    let rk = expand_key(key_words(seed), &sb);
    let msg = message_words(seed);
    let mut msg = msg;
    let mut checksum = 0u32;
    for _ in 0..PASSES {
        for blk in 0..N_BLOCKS {
            let s = [
                msg[4 * blk] as u32,
                msg[4 * blk + 1] as u32,
                msg[4 * blk + 2] as u32,
                msg[4 * blk + 3] as u32,
            ];
            let c = encrypt_block(s, &rk, &sb);
            for (k, w) in c.iter().enumerate() {
                msg[4 * blk + k] = *w as i32;
                checksum ^= *w;
            }
        }
    }
    checksum as i32
}

// ---------------------------------------------------------------------------
// IR construction
// ---------------------------------------------------------------------------

/// Builds the IR module.
pub fn build(seed: u64) -> Module {
    let sb_host = sbox();
    let mut mb = ModuleBuilder::new("aes");
    let sbox_v = mb.var(
        Variable::array("sbox", 256).with_init(sb_host.iter().map(|&b| i32::from(b)).collect()),
    );
    let rk_v = mb.var(
        Variable::array("round_keys", 44)
            .with_init(key_words(seed).iter().map(|&w| w as i32).collect()),
    );
    let msg_v = mb.var(Variable::array("message", N_BLOCKS * 4).with_init(message_words(seed)));
    let sum_v = mb.var(Variable::scalar("checksum"));

    // ---- xtime(b) -----------------------------------------------------------
    let mut fx = FunctionBuilder::new("xtime", 1);
    let b = fx.params()[0];
    let dbl = fx.bin(BinOp::Shl, b, 1);
    let hi = fx.bin(BinOp::LShr, b, 7);
    let hibit = fx.bin(BinOp::And, hi, 1);
    let red = fx.bin(BinOp::Mul, hibit, 0x1B);
    let x = fx.bin(BinOp::Xor, dbl, red);
    let out = fx.bin(BinOp::And, x, 0xFF);
    fx.ret(Some(out.into()));
    let xtime_f = mb.func(fx.finish());

    // ---- sub_word(w): 4 S-box lookups on a packed word ---------------------
    let mut fw = FunctionBuilder::new("sub_word", 1);
    let w = fw.params()[0];
    let mut acc: Option<Reg> = None;
    for k in 0..4 {
        let sh = fw.bin(BinOp::LShr, w, 8 * k);
        let byte = fw.bin(BinOp::And, sh, 0xFF);
        let sub = fw.load_idx(sbox_v, byte);
        let put = fw.bin(BinOp::Shl, sub, 8 * k);
        acc = Some(match acc {
            None => put,
            Some(a) => fw.bin(BinOp::Or, a, put),
        });
    }
    fw.ret(Some(acc.expect("four bytes").into()));
    let sub_word_f = mb.func(fw.finish());

    // ---- expand_key(): fills round_keys[4..44] ------------------------------
    let mut fe = FunctionBuilder::new("expand_key", 0);
    let loop_bb = fe.new_block("loop");
    let body = fe.new_block("body");
    let rotsub = fe.new_block("rotsub");
    let plain = fe.new_block("plain");
    let store_bb = fe.new_block("store");
    let done = fe.new_block("done");
    let i = fe.copy(4);
    let rcon = fe.copy(1);
    let temp = fe.copy(0);
    fe.br(loop_bb);
    fe.switch_to(loop_bb);
    fe.set_max_iters(loop_bb, 41);
    let fin = fe.cmp(CmpOp::SGe, i, 44);
    fe.cond_br(fin, done, body);
    fe.switch_to(body);
    let im1 = fe.bin(BinOp::Sub, i, 1);
    let prev = fe.load_idx(rk_v, im1);
    fe.copy_to(temp, prev);
    let mod4 = fe.bin(BinOp::And, i, 3);
    let is0 = fe.cmp(CmpOp::Eq, mod4, 0);
    fe.cond_br(is0, rotsub, plain);
    fe.switch_to(rotsub);
    let lo = fe.bin(BinOp::LShr, temp, 8);
    let hi = fe.bin(BinOp::Shl, temp, 24);
    let rot = fe.bin(BinOp::Or, lo, hi);
    let sub = fe.call(sub_word_f, vec![Operand::Reg(rot)]);
    let tx = fe.bin(BinOp::Xor, sub, rcon);
    fe.copy_to(temp, tx);
    let rc2 = fe.call(xtime_f, vec![Operand::Reg(rcon)]);
    fe.copy_to(rcon, rc2);
    fe.br(store_bb);
    fe.switch_to(plain);
    fe.br(store_bb);
    fe.switch_to(store_bb);
    let im4 = fe.bin(BinOp::Sub, i, 4);
    let old = fe.load_idx(rk_v, im4);
    let neww = fe.bin(BinOp::Xor, old, temp);
    fe.store_idx(rk_v, i, neww);
    let i2 = fe.bin(BinOp::Add, i, 1);
    fe.copy_to(i, i2);
    fe.br(loop_bb);
    fe.switch_to(done);
    fe.ret(None);
    let expand_f = mb.func(fe.finish());

    // ---- encrypt_block(blk) -> xor of ciphertext words ---------------------
    let mut fb = FunctionBuilder::new("encrypt_block", 1);
    let round_bb = fb.new_block("round");
    let work = fb.new_block("work");
    let mixcols = fb.new_block("mixcols");
    let skipmix = fb.new_block("skipmix");
    let addkey = fb.new_block("addkey");
    let final_bb = fb.new_block("final");
    let blk = fb.params()[0];
    let base = fb.bin(BinOp::Mul, blk, 4);

    // Load the block and add round key 0; state lives in 4 pinned regs.
    let mut s: Vec<Reg> = Vec::new();
    for c in 0..4 {
        let idx = fb.bin(BinOp::Add, base, c);
        let m = fb.load_idx(msg_v, idx);
        let k = fb.load_idx(rk_v, c);
        let x = fb.bin(BinOp::Xor, m, k);
        let pinned = fb.copy(x);
        s.push(pinned);
    }
    let round = fb.copy(1);
    // Byte matrix registers b[row][col], pinned so they survive blocks.
    let bmat: Vec<Vec<Reg>> = (0..4)
        .map(|_| (0..4).map(|_| fb.copy(0)).collect())
        .collect();
    fb.br(round_bb);

    fb.switch_to(round_bb);
    fb.set_max_iters(round_bb, 11);
    let fin = fb.cmp(CmpOp::SGt, round, 10);
    fb.cond_br(fin, final_bb, work);

    fb.switch_to(work);
    // Unpack + SubBytes + ShiftRows in one go:
    // after ShiftRows, b[row][col] = sbox(byte(s[(col+row)%4], row)).
    for row in 0..4usize {
        for col in 0..4usize {
            let src = s[(col + row) % 4];
            let sh = fb.bin(BinOp::LShr, src, (8 * row) as i32);
            let byte = fb.bin(BinOp::And, sh, 0xFF);
            let sub = fb.load_idx(sbox_v, byte);
            fb.copy_to(bmat[row][col], sub);
        }
    }
    let is_final_round = fb.cmp(CmpOp::Eq, round, 10);
    fb.cond_br(is_final_round, skipmix, mixcols);

    fb.switch_to(mixcols);
    #[allow(clippy::needless_range_loop)]
    for col in 0..4usize {
        let (a, e, c2, d) = (bmat[0][col], bmat[1][col], bmat[2][col], bmat[3][col]);
        let t0 = fb.bin(BinOp::Xor, a, e);
        let t1 = fb.bin(BinOp::Xor, c2, d);
        let t = fb.bin(BinOp::Xor, t0, t1);
        let ab = fb.bin(BinOp::Xor, a, e);
        let bc = fb.bin(BinOp::Xor, e, c2);
        let cd = fb.bin(BinOp::Xor, c2, d);
        let da = fb.bin(BinOp::Xor, d, a);
        let xab = fb.call(xtime_f, vec![Operand::Reg(ab)]);
        let xbc = fb.call(xtime_f, vec![Operand::Reg(bc)]);
        let xcd = fb.call(xtime_f, vec![Operand::Reg(cd)]);
        let xda = fb.call(xtime_f, vec![Operand::Reg(da)]);
        let a1 = fb.bin(BinOp::Xor, a, t);
        let a2 = fb.bin(BinOp::Xor, a1, xab);
        let e1 = fb.bin(BinOp::Xor, e, t);
        let e2 = fb.bin(BinOp::Xor, e1, xbc);
        let c1 = fb.bin(BinOp::Xor, c2, t);
        let c3 = fb.bin(BinOp::Xor, c1, xcd);
        let d1 = fb.bin(BinOp::Xor, d, t);
        let d2 = fb.bin(BinOp::Xor, d1, xda);
        fb.copy_to(bmat[0][col], a2);
        fb.copy_to(bmat[1][col], e2);
        fb.copy_to(bmat[2][col], c3);
        fb.copy_to(bmat[3][col], d2);
    }
    fb.br(addkey);

    fb.switch_to(skipmix);
    fb.br(addkey);

    fb.switch_to(addkey);
    // Pack + AddRoundKey.
    let rbase = fb.bin(BinOp::Mul, round, 4);
    #[allow(clippy::needless_range_loop)]
    for col in 0..4usize {
        let b0 = bmat[0][col];
        let b1 = fb.bin(BinOp::Shl, bmat[1][col], 8);
        let b2 = fb.bin(BinOp::Shl, bmat[2][col], 16);
        let b3 = fb.bin(BinOp::Shl, bmat[3][col], 24);
        let p0 = fb.bin(BinOp::Or, b0, b1);
        let p1 = fb.bin(BinOp::Or, p0, b2);
        let packed = fb.bin(BinOp::Or, p1, b3);
        let kidx = fb.bin(BinOp::Add, rbase, col as i32);
        let k = fb.load_idx(rk_v, kidx);
        let x = fb.bin(BinOp::Xor, packed, k);
        fb.copy_to(s[col], x);
    }
    let r2 = fb.bin(BinOp::Add, round, 1);
    fb.copy_to(round, r2);
    fb.br(round_bb);

    fb.switch_to(final_bb);
    // Write ciphertext back and return the XOR of its words.
    let mut chk: Option<Reg> = None;
    #[allow(clippy::needless_range_loop)]
    for c in 0..4usize {
        let idx = fb.bin(BinOp::Add, base, c as i32);
        fb.store_idx(msg_v, idx, s[c]);
        chk = Some(match chk {
            None => s[c],
            Some(acc) => fb.bin(BinOp::Xor, acc, s[c]),
        });
    }
    fb.ret(Some(chk.expect("four columns").into()));
    let encrypt_f = mb.func(fb.finish());

    // ---- main ----------------------------------------------------------------
    let mut f = FunctionBuilder::new("main", 0);
    let pass_loop = f.new_block("pass_loop");
    let blk_init = f.new_block("blk_init");
    let loop_bb = f.new_block("loop");
    let body = f.new_block("body");
    let pass_next = f.new_block("pass_next");
    let exit = f.new_block("exit");
    f.call_void(expand_f, vec![]);
    f.store_scalar(sum_v, 0);
    let pass = f.copy(0);
    let blk = f.copy(0);
    f.br(pass_loop);
    f.switch_to(pass_loop);
    f.set_max_iters(pass_loop, PASSES as u64 + 1);
    let pfin = f.cmp(CmpOp::SGe, pass, PASSES as i32);
    f.cond_br(pfin, exit, blk_init);
    f.switch_to(blk_init);
    f.copy_to(blk, 0);
    f.br(loop_bb);
    f.switch_to(loop_bb);
    f.set_max_iters(loop_bb, N_BLOCKS as u64 + 1);
    let fin = f.cmp(CmpOp::SGe, blk, N_BLOCKS as i32);
    f.cond_br(fin, pass_next, body);
    f.switch_to(body);
    let c = f.call(encrypt_f, vec![Operand::Reg(blk)]);
    let s0 = f.load_scalar(sum_v);
    let s1 = f.bin(BinOp::Xor, s0, c);
    f.store_scalar(sum_v, s1);
    let b2 = f.bin(BinOp::Add, blk, 1);
    f.copy_to(blk, b2);
    f.br(loop_bb);
    f.switch_to(pass_next);
    let p2 = f.bin(BinOp::Add, pass, 1);
    f.copy_to(pass, p2);
    f.br(pass_loop);
    f.switch_to(exit);
    let out = f.load_scalar(sum_v);
    f.ret(Some(out.into()));
    let main = mb.func(f.finish());
    mb.finish(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_emu::{run, InstrumentedModule, RunConfig};

    #[test]
    fn sbox_matches_fips197_spot_values() {
        let sb = sbox();
        assert_eq!(sb[0x00], 0x63);
        assert_eq!(sb[0x01], 0x7C);
        assert_eq!(sb[0x53], 0xED);
        assert_eq!(sb[0xFF], 0x16);
    }

    #[test]
    fn encrypt_matches_fips197_vector() {
        // FIPS-197 appendix B: key 2b7e1516...; plaintext 3243f6a8...
        let key_bytes: [u8; 16] = [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ];
        let pt_bytes: [u8; 16] = [
            0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37,
            0x07, 0x34,
        ];
        let ct_bytes: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB, 0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A,
            0x0B, 0x32,
        ];
        let pack = |b: &[u8; 16]| {
            let mut w = [0u32; 4];
            for col in 0..4 {
                for row in 0..4 {
                    w[col] |= u32::from(b[4 * col + row]) << (8 * row);
                }
            }
            w
        };
        let sb = sbox();
        let rk = expand_key(pack(&key_bytes), &sb);
        assert_eq!(encrypt_block(pack(&pt_bytes), &rk, &sb), pack(&ct_bytes));
    }

    #[test]
    fn emulated_matches_oracle() {
        for seed in [0, 11] {
            let im = InstrumentedModule::bare(build(seed));
            let out = run(&im, RunConfig::default()).unwrap();
            assert!(out.completed());
            assert_eq!(out.result, Some(oracle(seed)), "seed {seed}");
        }
    }

    #[test]
    fn is_a_long_kernel() {
        let im = InstrumentedModule::bare(build(1));
        let out = run(&im, RunConfig::default()).unwrap();
        assert!(
            out.metrics.active_cycles > 800_000,
            "cycles = {}",
            out.metrics.active_cycles
        );
    }

    #[test]
    fn fits_2kb_vm() {
        let bytes = build(1).data_bytes();
        assert!(bytes <= 2048, "aes data = {bytes}");
    }

    #[test]
    fn module_verifies() {
        assert!(schematic_ir::verify_module(&build(3)).is_empty());
    }
}
