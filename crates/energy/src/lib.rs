//! # schematic-energy
//!
//! Energy units, platform cost model, capacitor model and worst-case
//! energy consumption (WCEC) analysis for the SCHEMATIC reproduction.
//!
//! The paper evaluates on the TI MSP430FR5969 (64 KB FRAM NVM, 2 KB SRAM
//! VM, 16 MHz) using the energy model of ALFRED: per-instruction cost as
//! a function of execution cycles and memory class. Absolute joule values
//! are not expected to match the authors' testbed; the *structure* is
//! preserved and every constant is centralized in
//! [`CostTable::msp430fr5969`].
//!
//! ```
//! use schematic_energy::{CostTable, Energy, MemClass};
//! use schematic_ir::AccessKind;
//!
//! let t = CostTable::msp430fr5969();
//! let vm = t.access_cost(MemClass::Vm, AccessKind::Read).energy;
//! let nvm = t.access_cost(MemClass::Nvm, AccessKind::Read).energy;
//! assert!(nvm > vm); // NVM accesses cost more — the premise of Eq. 1
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod capacitor;
pub mod model;
pub mod units;
pub mod wcec;

pub use capacitor::Capacitor;
pub use model::{Cost, CostTable, MemClass};
pub use units::{Cycles, Energy};
pub use wcec::{block_cost, function_wcec, path_cost, WcecError};
