//! Worst-case energy consumption (WCEC) analysis.
//!
//! SCHEMATIC assumes "a safe yet precise worst-case energy consumption
//! model is provided as an input" (§II-B). This module provides the
//! static side of that model on top of [`CostTable`]: the WCEC of a basic
//! block, of a path interval, and of a whole (checkpoint-free) function
//! with loops bounded by their `max_iters` annotations.
//!
//! The whole-function bound collapses each loop of the nesting forest
//! into a supernode costing `(max_iters + 1) × worst-iteration` (the
//! `+ 1` covers the final header evaluation that exits the loop) and then
//! takes the longest path through the resulting DAG. This is the bound
//! used for callee summaries and for the baselines' placement passes.

use crate::model::{Cost, CostTable, MemClass};
use crate::units::Energy;
use schematic_ir::{BlockId, Cfg, Dominators, FuncId, Function, LoopForest, Module, VarId};

/// Errors from the WCEC analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WcecError {
    /// A loop lacks the `max_iters` annotation required to bound it.
    MissingLoopBound {
        /// The function containing the loop.
        func: FuncId,
        /// The loop header.
        header: BlockId,
    },
    /// The CFG is irreducible (a cycle remains after collapsing natural
    /// loops), so no loop bound applies.
    Irreducible {
        /// The function containing the cycle.
        func: FuncId,
    },
}

impl std::fmt::Display for WcecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WcecError::MissingLoopBound { func, header } => {
                write!(f, "loop at {func}:{header} lacks a max_iters annotation")
            }
            WcecError::Irreducible { func } => {
                write!(f, "irreducible control flow in {func}")
            }
        }
    }
}

impl std::error::Error for WcecError {}

/// Computes the execution cost of every instruction of `block` plus its
/// terminator, under the variable placement `mem_of`, adding
/// `callee_cost` for each call.
pub fn block_cost(
    table: &CostTable,
    func: &Function,
    block: BlockId,
    mem_of: &dyn Fn(VarId) -> MemClass,
    callee_cost: &dyn Fn(FuncId) -> Cost,
) -> Cost {
    let b = func.block(block);
    let mut total = Cost::ZERO;
    for inst in &b.insts {
        total += table.inst_cost(inst, mem_of);
        if let schematic_ir::Inst::Call { func: callee, .. } = inst {
            total += callee_cost(*callee);
        }
    }
    total += table.term_cost(&b.term);
    total
}

/// Sums [`block_cost`] over a sequence of blocks (a path interval).
pub fn path_cost(
    table: &CostTable,
    func: &Function,
    blocks: &[BlockId],
    mem_of: &dyn Fn(VarId) -> MemClass,
    callee_cost: &dyn Fn(FuncId) -> Cost,
) -> Cost {
    blocks.iter().fold(Cost::ZERO, |acc, &b| {
        acc + block_cost(table, func, b, mem_of, callee_cost)
    })
}

/// Whole-function WCEC with loops bounded by `max_iters`.
///
/// The result over-approximates the cost of any single invocation of the
/// function, assuming the function contains no checkpoints (callee
/// summaries for checkpoint-free callees, §III-B.1).
///
/// # Errors
///
/// Returns an error if a loop lacks its bound annotation or the CFG is
/// irreducible.
pub fn function_wcec(
    table: &CostTable,
    module: &Module,
    fid: FuncId,
    mem_of: &dyn Fn(VarId) -> MemClass,
    callee_cost: &dyn Fn(FuncId) -> Cost,
) -> Result<Cost, WcecError> {
    let func = module.func(fid);
    let cfg = Cfg::new(func);
    let dom = Dominators::new(&cfg);
    let forest = LoopForest::new(func, &cfg, &dom);

    // Cost of one worst-case *full execution* of loop `li` (all trips),
    // computed innermost-first.
    let mut loop_total: Vec<Option<Cost>> = vec![None; forest.loops.len()];
    for li in forest.bottom_up() {
        let l = &forest.loops[li];
        let bound = l.max_iters.ok_or(WcecError::MissingLoopBound {
            func: fid,
            header: l.header,
        })?;
        // Worst single iteration: longest path inside the loop starting at
        // the header, inner loops collapsed, back-edges to this header
        // excluded.
        let iter_cost = longest_path(
            table,
            func,
            &cfg,
            &forest,
            &loop_total,
            l.header,
            Some(li),
            mem_of,
            callee_cost,
        )
        .ok_or(WcecError::Irreducible { func: fid })?;
        loop_total[li] = Some(Cost {
            cycles: iter_cost.cycles.saturating_mul(bound.saturating_add(1)),
            energy: iter_cost.energy.saturating_mul(bound.saturating_add(1)),
        });
    }

    longest_path(
        table,
        func,
        &cfg,
        &forest,
        &loop_total,
        func.entry,
        None,
        mem_of,
        callee_cost,
    )
    .ok_or(WcecError::Irreducible { func: fid })
}

/// Longest-cost path in the loop-collapsed graph starting at `start`.
///
/// `scope` restricts traversal to the body of that loop (with its inner
/// loops collapsed and its back-edges removed); `None` means the whole
/// function with all top-level loops collapsed. Returns `None` on a
/// residual cycle (irreducible CFG).
#[allow(clippy::too_many_arguments)]
fn longest_path(
    table: &CostTable,
    func: &Function,
    cfg: &Cfg,
    forest: &LoopForest,
    loop_total: &[Option<Cost>],
    start: BlockId,
    scope: Option<usize>,
    mem_of: &dyn Fn(VarId) -> MemClass,
    callee_cost: &dyn Fn(FuncId) -> Cost,
) -> Option<Cost> {
    // Representative of a block inside the current scope: either itself,
    // or the outermost loop (strictly inside `scope`) containing it.
    let rep_of = |b: BlockId| -> Node {
        let mut li = forest.innermost_of(b);
        let mut chosen: Option<usize> = None;
        while let Some(i) = li {
            if Some(i) == scope {
                break;
            }
            chosen = Some(i);
            li = forest.loops[i].parent;
        }
        // `chosen` may still be a loop whose parent chain never met
        // `scope` (block outside scope) — callers filter that case.
        match chosen {
            Some(i) => Node::Loop(i),
            None => Node::Block(b),
        }
    };
    let in_scope = |b: BlockId| -> bool {
        match scope {
            None => true,
            Some(s) => forest.loops[s].contains(b),
        }
    };

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Node {
        Block(BlockId),
        Loop(usize),
    }

    let node_cost = |n: Node| -> Cost {
        match n {
            Node::Block(b) => block_cost(table, func, b, mem_of, callee_cost),
            Node::Loop(i) => loop_total[i].expect("inner loop computed first"),
        }
    };
    // Successor nodes of a node: for a block, its CFG successors; for a
    // loop supernode, the successors of every block in the loop that
    // leave the loop.
    let node_succs = |n: Node| -> Vec<Node> {
        let mut out = Vec::new();
        let mut push = |from: BlockId, to: BlockId| {
            if !in_scope(to) {
                return; // leaving the analysis scope terminates the path
            }
            if let Some(s) = scope {
                // Back-edge of the scope loop: excluded (single iteration).
                if to == forest.loops[s].header {
                    return;
                }
            }
            let _ = from;
            out.push(rep_of(to));
        };
        match n {
            Node::Block(b) => {
                for &s in cfg.succs(b) {
                    push(b, s);
                }
            }
            Node::Loop(i) => {
                for &b in &forest.loops[i].body {
                    for &s in cfg.succs(b) {
                        if !forest.loops[i].contains(s) {
                            push(b, s);
                        }
                    }
                }
            }
        }
        out.sort_by_key(|n| match n {
            Node::Block(b) => (0usize, b.index()),
            Node::Loop(i) => (1usize, *i),
        });
        out.dedup();
        out
    };

    // Memoized DFS with on-stack cycle detection.
    use std::collections::HashMap;
    let mut memo: HashMap<Node, Energy> = HashMap::new();
    let mut memo_cycles: HashMap<Node, u64> = HashMap::new();
    let mut on_stack: std::collections::HashSet<Node> = std::collections::HashSet::new();

    // Recursive helper implemented with an explicit stack would be
    // verbose; depth is bounded by the number of collapsed nodes, which
    // is small for realistic functions, so plain recursion is fine.
    fn go(
        n: Node,
        node_cost: &dyn Fn(Node) -> Cost,
        node_succs: &dyn Fn(Node) -> Vec<Node>,
        memo: &mut HashMap<Node, Energy>,
        memo_cycles: &mut HashMap<Node, u64>,
        on_stack: &mut std::collections::HashSet<Node>,
    ) -> Option<Cost> {
        if let (Some(&e), Some(&c)) = (memo.get(&n), memo_cycles.get(&n)) {
            return Some(Cost::new(c, e));
        }
        if !on_stack.insert(n) {
            return None; // residual cycle
        }
        let mut best = Cost::ZERO;
        for s in node_succs(n) {
            let c = go(s, node_cost, node_succs, memo, memo_cycles, on_stack)?;
            if c.energy > best.energy {
                best = c;
            }
        }
        on_stack.remove(&n);
        let total = node_cost(n) + best;
        memo.insert(n, total.energy);
        memo_cycles.insert(n, total.cycles);
        Some(total)
    }

    let start_node = rep_of(start);
    go(
        start_node,
        &node_cost,
        &node_succs,
        &mut memo,
        &mut memo_cycles,
        &mut on_stack,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{BinOp, CmpOp, FunctionBuilder, ModuleBuilder, Variable};

    fn table() -> CostTable {
        CostTable::msp430fr5969()
    }

    fn nvm(_: VarId) -> MemClass {
        MemClass::Nvm
    }

    fn no_calls(_: FuncId) -> Cost {
        panic!("no calls expected")
    }

    #[test]
    fn straight_line_block_cost() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let v = f.load_scalar(x);
        let w = f.bin(BinOp::Add, v, 1);
        f.store_scalar(x, w);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let func = m.func(main);
        let t = table();
        let c = block_cost(&t, func, BlockId(0), &nvm, &no_calls);
        // load + add + store + ret; exact recomputation:
        let expected = t.inst_cost(&func.block(BlockId(0)).insts[0], nvm)
            + t.inst_cost(&func.block(BlockId(0)).insts[1], nvm)
            + t.inst_cost(&func.block(BlockId(0)).insts[2], nvm)
            + t.term_cost(&func.block(BlockId(0)).term);
        assert_eq!(c, expected);
        assert!(c.energy > Energy::ZERO);
    }

    #[test]
    fn vm_allocation_lowers_wcec() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        for _ in 0..10 {
            let v = f.load_scalar(x);
            f.store_scalar(x, v);
        }
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let t = table();
        let in_nvm = function_wcec(&t, &m, main, &nvm, &no_calls).unwrap();
        let in_vm = function_wcec(&t, &m, main, &|_| MemClass::Vm, &no_calls).unwrap();
        assert!(in_vm.energy < in_nvm.energy);
    }

    #[test]
    fn branch_takes_worst_side() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let cheap = f.new_block("cheap");
        let pricey = f.new_block("pricey");
        let join = f.new_block("join");
        let c = f.cmp(CmpOp::SGt, 1, 0);
        f.cond_br(c, cheap, pricey);
        f.switch_to(cheap);
        f.br(join);
        f.switch_to(pricey);
        for _ in 0..20 {
            let v = f.load_scalar(x);
            f.store_scalar(x, v);
        }
        f.br(join);
        f.switch_to(join);
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let t = table();
        let whole = function_wcec(&t, &m, main, &nvm, &no_calls).unwrap();
        let pricey_blocks = [BlockId(0), pricey, join];
        let via_pricey = path_cost(&t, m.func(main), &pricey_blocks, &nvm, &no_calls);
        assert_eq!(whole, via_pricey);
    }

    #[test]
    fn loop_bound_multiplies_iteration_cost() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut fb = FunctionBuilder::new("main", 0);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let c = fb.cmp(CmpOp::SLt, 0, 1);
        fb.cond_br(c, body, exit);
        fb.set_max_iters(header, 10);
        fb.switch_to(body);
        let v = fb.load_scalar(x);
        fb.store_scalar(x, v);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(None);
        let main = mb.func(fb.finish());
        let m = mb.finish(main);
        let t = table();

        let whole = function_wcec(&t, &m, main, &nvm, &no_calls).unwrap();
        // Lower bound: 10 iterations of (header + body) must be included.
        let one_iter = path_cost(&t, m.func(main), &[header, body], &nvm, &no_calls);
        assert!(whole.energy >= one_iter.energy * 10);
        // Upper bound sanity: not absurdly larger than 12 iterations plus
        // entry and exit.
        let slack = path_cost(&t, m.func(main), &[BlockId(0), exit], &nvm, &no_calls);
        assert!(whole.energy <= one_iter.energy * 12 + slack.energy * 2);
    }

    #[test]
    fn missing_loop_bound_is_error() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FunctionBuilder::new("main", 0);
        let l = fb.new_block("l");
        let exit = fb.new_block("exit");
        fb.br(l);
        fb.switch_to(l);
        let c = fb.copy(1);
        fb.cond_br(c, l, exit);
        fb.switch_to(exit);
        fb.ret(None);
        let main = mb.func(fb.finish());
        let m = mb.finish(main);
        let err = function_wcec(&table(), &m, main, &nvm, &no_calls).unwrap_err();
        assert!(matches!(err, WcecError::MissingLoopBound { .. }));
        assert!(err.to_string().contains("max_iters"));
    }

    #[test]
    fn nested_loops_multiply() {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut fb = FunctionBuilder::new("main", 0);
        let oh = fb.new_block("oh");
        let ih = fb.new_block("ih");
        let ib = fb.new_block("ib");
        let ol = fb.new_block("ol");
        let exit = fb.new_block("exit");
        fb.br(oh);
        fb.switch_to(oh);
        let c1 = fb.copy(1);
        fb.cond_br(c1, ih, exit);
        fb.set_max_iters(oh, 4);
        fb.switch_to(ih);
        let c2 = fb.copy(1);
        fb.cond_br(c2, ib, ol);
        fb.set_max_iters(ih, 5);
        fb.switch_to(ib);
        let v = fb.load_scalar(x);
        fb.store_scalar(x, v);
        fb.br(ih);
        fb.switch_to(ol);
        fb.br(oh);
        fb.switch_to(exit);
        fb.ret(None);
        let main = mb.func(fb.finish());
        let m = mb.finish(main);
        let t = table();
        let whole = function_wcec(&t, &m, main, &nvm, &no_calls).unwrap();
        let inner_body = path_cost(&t, m.func(main), &[ib], &nvm, &no_calls);
        // The inner body runs at least 4 * 5 = 20 times in the worst case.
        assert!(whole.energy >= inner_body.energy * 20);
    }

    #[test]
    fn calls_add_callee_cost() {
        let mut mb = ModuleBuilder::new("m");
        let mut leaf = FunctionBuilder::new("leaf", 0);
        leaf.ret(None);
        let leaf = mb.func(leaf.finish());
        let mut fb = FunctionBuilder::new("main", 0);
        fb.call_void(leaf, vec![]);
        fb.ret(None);
        let main = mb.func(fb.finish());
        let m = mb.finish(main);
        let t = table();
        let callee_cost = |f: FuncId| -> Cost {
            assert_eq!(f, leaf);
            Cost::new(100, Energy::from_pj(12345))
        };
        let with_leaf = function_wcec(&t, &m, main, &nvm, &callee_cost).unwrap();
        let without = function_wcec(&t, &m, main, &nvm, &|_| Cost::ZERO).unwrap();
        assert_eq!(with_leaf.energy - without.energy, Energy::from_pj(12345));
        assert_eq!(with_leaf.cycles - without.cycles, 100);
    }
}
