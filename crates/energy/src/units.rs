//! Energy and time units.
//!
//! All energy bookkeeping uses integer **picojoules** so that emulation,
//! WCEC analysis and checkpoint placement are exactly deterministic and
//! reproducible across platforms; totals are displayed in µJ like the
//! paper's figures.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// CPU clock cycles.
pub type Cycles = u64;

/// An amount of energy in picojoules.
///
/// Arithmetic is overflow-checked in debug builds (it would take ~5 GJ to
/// overflow `u64` picojoules, far beyond any simulated run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Energy(pub u64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0);

    /// Creates an energy value from picojoules.
    #[inline]
    pub const fn from_pj(pj: u64) -> Self {
        Energy(pj)
    }

    /// Creates an energy value from nanojoules.
    #[inline]
    pub const fn from_nj(nj: u64) -> Self {
        Energy(nj * 1_000)
    }

    /// Creates an energy value from microjoules.
    #[inline]
    pub const fn from_uj(uj: u64) -> Self {
        Energy(uj * 1_000_000)
    }

    /// The raw picojoule count.
    #[inline]
    pub const fn as_pj(self) -> u64 {
        self.0
    }

    /// Value in microjoules, as a float (for reports and plots).
    #[inline]
    pub fn as_uj(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction (used by capacitor drain).
    #[inline]
    pub fn saturating_sub(self, rhs: Energy) -> Energy {
        Energy(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Energy) -> Option<Energy> {
        self.0.checked_sub(rhs.0).map(Energy)
    }

    /// `self / rhs`, rounded down; `None` if `rhs` is zero. Used by the
    /// loop analysis to compute `numit = floor(EB / Eloop)` (Algorithm 1,
    /// line 6).
    #[inline]
    pub fn div_floor(self, rhs: Energy) -> Option<u64> {
        self.0.checked_div(rhs.0)
    }

    /// Saturating multiplication — for worst-case bounds scaled by huge
    /// trip counts, where "astronomically over any budget" is the right
    /// semantics rather than a panic.
    #[inline]
    pub fn saturating_mul(self, rhs: u64) -> Energy {
        Energy(self.0.saturating_mul(rhs))
    }

    /// Saturating addition — companion to [`Energy::saturating_mul`] for
    /// sums that may already sit at the saturation ceiling.
    #[inline]
    pub fn saturating_add(self, rhs: Energy) -> Energy {
        Energy(self.0.saturating_add(rhs.0))
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0.checked_add(rhs.0).expect("energy overflow"))
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        *self = *self + rhs;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0.checked_sub(rhs.0).expect("energy underflow"))
    }
}

impl SubAssign for Energy {
    #[inline]
    fn sub_assign(&mut self, rhs: Energy) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: u64) -> Energy {
        Energy(self.0.checked_mul(rhs).expect("energy overflow"))
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} uJ", self.as_uj())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} nJ", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} pJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Energy::from_nj(2).as_pj(), 2_000);
        assert_eq!(Energy::from_uj(3).as_pj(), 3_000_000);
        assert!((Energy::from_uj(5).as_uj() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_pj(100);
        let b = Energy::from_pj(40);
        assert_eq!(a + b, Energy::from_pj(140));
        assert_eq!(a - b, Energy::from_pj(60));
        assert_eq!(a * 3, Energy::from_pj(300));
        let mut c = a;
        c += b;
        c -= Energy::from_pj(10);
        assert_eq!(c, Energy::from_pj(130));
        let total: Energy = [a, b].into_iter().sum();
        assert_eq!(total, Energy::from_pj(140));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let _ = Energy::from_pj(1) - Energy::from_pj(2);
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(
            Energy::from_pj(1).saturating_sub(Energy::from_pj(5)),
            Energy::ZERO
        );
        assert_eq!(Energy::from_pj(1).checked_sub(Energy::from_pj(5)), None);
        assert_eq!(
            Energy::from_pj(7).checked_sub(Energy::from_pj(5)),
            Some(Energy::from_pj(2))
        );
    }

    #[test]
    fn div_floor_matches_algorithm1() {
        let eb = Energy::from_pj(20);
        let eloop = Energy::from_pj(6);
        assert_eq!(eb.div_floor(eloop), Some(3));
        assert_eq!(eb.div_floor(Energy::ZERO), None);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Energy::from_pj(5).to_string(), "5 pJ");
        assert_eq!(Energy::from_pj(1_500).to_string(), "1.500 nJ");
        assert_eq!(Energy::from_uj(2).to_string(), "2.000 uJ");
    }

    #[test]
    fn ordering() {
        assert!(Energy::from_pj(1) < Energy::from_pj(2));
        assert_eq!(Energy::default(), Energy::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    //! Property-style tests driven by a tiny in-tree PRNG (`proptest`
    //! cannot be fetched in the offline build environment).
    use super::*;

    /// SplitMix64, local to the tests to avoid a dependency cycle on
    /// `schematic-benchsuite`.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.next() % (hi - lo)
        }
    }

    /// Addition is commutative and associative on realistic ranges.
    #[test]
    fn add_laws() {
        let mut rng = Rng(1);
        for _ in 0..256 {
            let (a, b, c) = (
                Energy::from_pj(rng.range(0, 1 << 40)),
                Energy::from_pj(rng.range(0, 1 << 40)),
                Energy::from_pj(rng.range(0, 1 << 40)),
            );
            assert_eq!(a + b, b + a);
            assert_eq!((a + b) + c, a + (b + c));
        }
    }

    /// `div_floor` matches Algorithm 1's floor semantics.
    #[test]
    fn div_floor_is_floor() {
        let mut rng = Rng(2);
        for _ in 0..256 {
            let eb = rng.range(1, 1 << 40);
            let e = rng.range(1, 1 << 30);
            let n = Energy::from_pj(eb).div_floor(Energy::from_pj(e)).unwrap();
            assert!(Energy::from_pj(e) * n <= Energy::from_pj(eb));
            assert!(Energy::from_pj(e) * (n + 1) > Energy::from_pj(eb));
        }
    }

    /// Saturating subtraction never panics and bounds correctly.
    #[test]
    fn saturating_sub_bounds() {
        let mut rng = Rng(3);
        for _ in 0..256 {
            let a = rng.range(0, 1 << 40);
            let b = rng.range(0, 1 << 40);
            let r = Energy::from_pj(a).saturating_sub(Energy::from_pj(b));
            if a >= b {
                assert_eq!(r, Energy::from_pj(a - b));
            } else {
                assert_eq!(r, Energy::ZERO);
            }
        }
    }
}
