//! Capacitor (energy buffer) model.
//!
//! The platform stores harvested energy in a capacitor with usable
//! capacity `EB` (§II-B). SCHEMATIC never reasons about the harvesting
//! rate — only about `EB` — so the model here is deliberately simple: a
//! level that drains as the program executes and refills to full during
//! off/sleep periods.

use crate::units::Energy;

/// An energy buffer with fixed usable capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capacitor {
    capacity: Energy,
    level: Energy,
}

impl Capacitor {
    /// Creates a fully charged capacitor with usable capacity `eb`.
    pub fn new(eb: Energy) -> Self {
        Capacitor {
            capacity: eb,
            level: eb,
        }
    }

    /// Usable capacity `EB`.
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Current stored energy.
    pub fn level(&self) -> Energy {
        self.level
    }

    /// Remaining charge as a fraction in `[0, 1]` — what MEMENTOS's
    /// voltage measurement observes (voltage maps monotonically to state
    /// of charge).
    pub fn fraction(&self) -> f64 {
        if self.capacity.as_pj() == 0 {
            0.0
        } else {
            self.level.as_pj() as f64 / self.capacity.as_pj() as f64
        }
    }

    /// Attempts to draw `amount`; returns `false` (leaving the level at
    /// zero) if the stored energy is insufficient — a power failure.
    pub fn draw(&mut self, amount: Energy) -> bool {
        match self.level.checked_sub(amount) {
            Some(rest) => {
                self.level = rest;
                true
            }
            None => {
                self.level = Energy::ZERO;
                false
            }
        }
    }

    /// Whether at least `amount` is available.
    pub fn can_supply(&self, amount: Energy) -> bool {
        self.level >= amount
    }

    /// Recharges to full (the wait-until-replenished step of Fig. 3).
    pub fn replenish(&mut self) {
        self.level = self.capacity;
    }

    /// Whether the capacitor is empty.
    pub fn is_empty(&self) -> bool {
        self.level == Energy::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full() {
        let c = Capacitor::new(Energy::from_uj(10));
        assert_eq!(c.level(), c.capacity());
        assert!((c.fraction() - 1.0).abs() < 1e-12);
        assert!(!c.is_empty());
    }

    #[test]
    fn draw_until_failure() {
        let mut c = Capacitor::new(Energy::from_pj(100));
        assert!(c.draw(Energy::from_pj(60)));
        assert_eq!(c.level(), Energy::from_pj(40));
        assert!(c.can_supply(Energy::from_pj(40)));
        assert!(!c.can_supply(Energy::from_pj(41)));
        assert!(!c.draw(Energy::from_pj(41))); // fails, level clamps to 0
        assert!(c.is_empty());
    }

    #[test]
    fn replenish_restores_capacity() {
        let mut c = Capacitor::new(Energy::from_pj(100));
        c.draw(Energy::from_pj(100));
        assert!(c.is_empty());
        c.replenish();
        assert_eq!(c.level(), Energy::from_pj(100));
    }

    #[test]
    fn fraction_tracks_level() {
        let mut c = Capacitor::new(Energy::from_pj(200));
        c.draw(Energy::from_pj(50));
        assert!((c.fraction() - 0.75).abs() < 1e-12);
        let z = Capacitor::new(Energy::ZERO);
        assert_eq!(z.fraction(), 0.0);
    }
}
