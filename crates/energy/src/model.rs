//! Worst-case energy/cycle cost model.
//!
//! The model follows the structure of the one SCHEMATIC borrows from
//! ALFRED (§IV-A.a): the cost of an instruction is a function of its
//! execution cycles plus, for loads and stores, the kind of memory
//! accessed (VM or NVM). All constants live in a [`CostTable`] so tests
//! and ablations can synthesize alternative platforms; the calibrated
//! MSP430FR5969-like instance is [`CostTable::msp430fr5969`].

use crate::units::{Cycles, Energy};
use schematic_ir::{AccessKind, Inst, Terminator};

/// Which memory class an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemClass {
    /// Volatile memory (SRAM): fast and cheap, lost on power failure.
    Vm,
    /// Non-volatile memory (FRAM): persistent, slower and more expensive
    /// (the paper cites up to 2.47× the VM access energy).
    Nvm,
}

/// A joint cycle/energy cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// CPU cycles consumed.
    pub cycles: Cycles,
    /// Energy consumed.
    pub energy: Energy,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        cycles: 0,
        energy: Energy::ZERO,
    };

    /// Creates a cost.
    pub const fn new(cycles: Cycles, energy: Energy) -> Self {
        Cost { cycles, energy }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            cycles: self.cycles + rhs.cycles,
            energy: self.energy + rhs.energy,
        }
    }
}

impl std::ops::AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl std::ops::Mul<u64> for Cost {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: u64) -> Cost {
        Cost {
            cycles: self.cycles * rhs,
            energy: self.energy * rhs,
        }
    }
}

/// Platform cost table.
///
/// Energies are picojoules; the table is deliberately a plain struct with
/// public fields so experiments can perturb individual constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostTable {
    /// Baseline CPU energy per cycle (pJ), charged for every cycle of
    /// every instruction.
    pub cpu_pj_per_cycle: u64,
    /// Cycles of simple ALU operations (add/sub/logic/shift).
    pub alu_cycles: Cycles,
    /// Cycles of a hardware multiply.
    pub mul_cycles: Cycles,
    /// Cycles of a software divide/remainder.
    pub div_cycles: Cycles,
    /// Cycles of a compare.
    pub cmp_cycles: Cycles,
    /// Cycles of a register copy / immediate move.
    pub copy_cycles: Cycles,
    /// Cycles of a select.
    pub select_cycles: Cycles,
    /// Base cycles of a load (excluding memory-class effects).
    pub load_cycles: Cycles,
    /// Base cycles of a store (excluding memory-class effects).
    pub store_cycles: Cycles,
    /// Cycles of call setup (argument copy is included per argument via
    /// `copy_cycles` by the emulator).
    pub call_cycles: Cycles,
    /// Cycles of a return.
    pub ret_cycles: Cycles,
    /// Cycles of a branch (conditional or not).
    pub branch_cycles: Cycles,
    /// Extra wait cycles per NVM access (FRAM wait states).
    pub nvm_extra_cycles: Cycles,
    /// Energy of a VM word read (pJ), beyond the cycle baseline.
    pub vm_read_pj: u64,
    /// Energy of a VM word write (pJ).
    pub vm_write_pj: u64,
    /// Energy of an NVM word read (pJ).
    pub nvm_read_pj: u64,
    /// Energy of an NVM word write (pJ).
    pub nvm_write_pj: u64,
    /// Fixed cost of committing a checkpoint (sleep-mode entry, wake-up,
    /// voltage measurement), excluding the per-word data transfer.
    pub checkpoint_fixed: Cost,
    /// Fixed cost of restoring state after a reboot or wake-up.
    pub restore_fixed: Cost,
    /// Words of volatile register/stack state saved at every checkpoint
    /// regardless of variable allocation (the MSP430 register file).
    pub reg_file_words: usize,
    /// Cycles per word copied VM→NVM when saving a checkpoint.
    pub word_save_cycles: Cycles,
    /// Cycles per word copied NVM→VM when restoring.
    pub word_restore_cycles: Cycles,
    /// Cost of one execution of a conditional checkpoint's counter
    /// increment + compare when it does *not* fire.
    pub cond_check: Cost,
}

impl CostTable {
    /// The MSP430FR5969-like model used by all experiments: 16 MHz, FRAM
    /// NVM ≈ 2.47× SRAM access energy, 300 pJ/cycle CPU baseline
    /// (≈ 100 µA/MHz at 3 V).
    pub fn msp430fr5969() -> Self {
        let pj = Energy::from_pj;
        CostTable {
            cpu_pj_per_cycle: 300,
            alu_cycles: 1,
            mul_cycles: 4,
            div_cycles: 20,
            cmp_cycles: 1,
            copy_cycles: 1,
            select_cycles: 2,
            load_cycles: 3,
            store_cycles: 3,
            call_cycles: 5,
            ret_cycles: 4,
            branch_cycles: 2,
            nvm_extra_cycles: 1,
            vm_read_pj: 100,
            vm_write_pj: 110,
            nvm_read_pj: 1_270,
            nvm_write_pj: 1_295,
            checkpoint_fixed: Cost::new(100, pj(32_000)),
            restore_fixed: Cost::new(50, pj(16_000)),
            reg_file_words: 16,
            word_save_cycles: 4,
            word_restore_cycles: 4,
            cond_check: Cost::new(3, pj(900)),
        }
    }

    /// Cost of `cycles` pure CPU cycles (no memory access energy).
    #[inline]
    pub fn cycles_cost(&self, cycles: Cycles) -> Cost {
        Cost::new(cycles, Energy::from_pj(self.cpu_pj_per_cycle) * cycles)
    }

    fn with_extra(&self, cycles: Cycles, extra_pj: u64) -> Cost {
        let mut c = self.cycles_cost(cycles);
        c.energy += Energy::from_pj(extra_pj);
        c
    }

    /// Cost of one word access to memory of class `class`.
    #[inline]
    pub fn access_cost(&self, class: MemClass, kind: AccessKind) -> Cost {
        match (class, kind) {
            (MemClass::Vm, AccessKind::Read) => self.with_extra(0, self.vm_read_pj),
            (MemClass::Vm, AccessKind::Write) => self.with_extra(0, self.vm_write_pj),
            (MemClass::Nvm, AccessKind::Read) => {
                self.with_extra(self.nvm_extra_cycles, self.nvm_read_pj)
            }
            (MemClass::Nvm, AccessKind::Write) => {
                self.with_extra(self.nvm_extra_cycles, self.nvm_write_pj)
            }
        }
    }

    /// Energy gained by one read hitting VM instead of NVM (the paper's
    /// `ΔER` in Eq. 1).
    pub fn read_gain(&self) -> Energy {
        self.access_cost(MemClass::Nvm, AccessKind::Read).energy
            - self.access_cost(MemClass::Vm, AccessKind::Read).energy
    }

    /// Energy gained by one write hitting VM instead of NVM (`ΔEW`).
    pub fn write_gain(&self) -> Energy {
        self.access_cost(MemClass::Nvm, AccessKind::Write).energy
            - self.access_cost(MemClass::Vm, AccessKind::Write).energy
    }

    /// Cost of executing `inst`, **excluding** any callee body (calls are
    /// charged as they execute) and **excluding** checkpoint runtime
    /// effects (charged by the emulator from the checkpoint spec).
    ///
    /// `mem_of` reports the memory class a variable occupies at this
    /// program point.
    pub fn inst_cost(&self, inst: &Inst, mem_of: impl Fn(schematic_ir::VarId) -> MemClass) -> Cost {
        use schematic_ir::BinOp;
        match inst {
            Inst::Bin { op, .. } => match op {
                BinOp::Mul => self.cycles_cost(self.mul_cycles),
                BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU => {
                    self.cycles_cost(self.div_cycles)
                }
                _ => self.cycles_cost(self.alu_cycles),
            },
            Inst::Cmp { .. } => self.cycles_cost(self.cmp_cycles),
            Inst::Un { .. } => self.cycles_cost(self.alu_cycles),
            Inst::Copy { .. } => self.cycles_cost(self.copy_cycles),
            Inst::Select { .. } => self.cycles_cost(self.select_cycles),
            Inst::Load { var, .. } => {
                self.cycles_cost(self.load_cycles)
                    + self.access_cost(mem_of(*var), AccessKind::Read)
            }
            Inst::Store { var, .. } => {
                self.cycles_cost(self.store_cycles)
                    + self.access_cost(mem_of(*var), AccessKind::Write)
            }
            Inst::Call { args, .. } => {
                self.cycles_cost(self.call_cycles + self.copy_cycles * args.len() as u64)
            }
            // Runtime intrinsics: the emulator charges their real effects
            // from the checkpoint spec; the static per-execution cost here
            // is only the always-paid part.
            Inst::Checkpoint { .. } => Cost::ZERO,
            Inst::CondCheckpoint { .. } => self.cond_check,
            Inst::SaveVar { .. } | Inst::RestoreVar { .. } => Cost::ZERO,
        }
    }

    /// Cost of executing a terminator.
    pub fn term_cost(&self, term: &Terminator) -> Cost {
        match term {
            Terminator::Br(_) | Terminator::CondBr { .. } => self.cycles_cost(self.branch_cycles),
            Terminator::Ret(_) => self.cycles_cost(self.ret_cycles),
        }
    }

    /// Cost of copying `words` words VM→NVM (checkpoint save data path).
    pub fn save_words_cost(&self, words: usize) -> Cost {
        let per_word = self.cycles_cost(self.word_save_cycles)
            + self.access_cost(MemClass::Vm, AccessKind::Read)
            + self.access_cost(MemClass::Nvm, AccessKind::Write);
        per_word * words as u64
    }

    /// Cost of copying `words` words NVM→VM (restore data path).
    #[inline]
    pub fn restore_words_cost(&self, words: usize) -> Cost {
        let per_word = self.cycles_cost(self.word_restore_cycles)
            + self.access_cost(MemClass::Nvm, AccessKind::Read)
            + self.access_cost(MemClass::Vm, AccessKind::Write);
        per_word * words as u64
    }

    /// Full cost of committing a checkpoint that saves `data_words` words
    /// of variable data in addition to the register file.
    pub fn checkpoint_commit_cost(&self, data_words: usize) -> Cost {
        self.checkpoint_fixed + self.save_words_cost(self.reg_file_words + data_words)
    }

    /// Full cost of resuming from a checkpoint that restores
    /// `data_words` words of variable data in addition to the register
    /// file.
    pub fn checkpoint_resume_cost(&self, data_words: usize) -> Cost {
        self.restore_fixed + self.restore_words_cost(self.reg_file_words + data_words)
    }

    /// Feeds every constant of the table into a stable hasher, in
    /// struct field order — perturbing any platform constant changes
    /// every compilation and every measured run, so the content-
    /// addressed cell cache keys on the whole table.
    pub fn identity_into(&self, h: &mut schematic_ir::hash::StableHasher) {
        let cost = |h: &mut schematic_ir::hash::StableHasher, c: &Cost| {
            h.write_u64(c.cycles);
            h.write_u64(c.energy.as_pj());
        };
        h.write_u64(self.cpu_pj_per_cycle);
        h.write_u64(self.alu_cycles);
        h.write_u64(self.mul_cycles);
        h.write_u64(self.div_cycles);
        h.write_u64(self.cmp_cycles);
        h.write_u64(self.copy_cycles);
        h.write_u64(self.select_cycles);
        h.write_u64(self.load_cycles);
        h.write_u64(self.store_cycles);
        h.write_u64(self.call_cycles);
        h.write_u64(self.ret_cycles);
        h.write_u64(self.branch_cycles);
        h.write_u64(self.nvm_extra_cycles);
        h.write_u64(self.vm_read_pj);
        h.write_u64(self.vm_write_pj);
        h.write_u64(self.nvm_read_pj);
        h.write_u64(self.nvm_write_pj);
        cost(h, &self.checkpoint_fixed);
        cost(h, &self.restore_fixed);
        h.write_usize(self.reg_file_words);
        h.write_u64(self.word_save_cycles);
        h.write_u64(self.word_restore_cycles);
        cost(h, &self.cond_check);
    }
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable::msp430fr5969()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{BinOp, Operand, Reg, VarId};

    fn table() -> CostTable {
        CostTable::msp430fr5969()
    }

    #[test]
    fn nvm_access_costs_more_than_vm() {
        let t = table();
        for kind in [AccessKind::Read, AccessKind::Write] {
            let vm = t.access_cost(MemClass::Vm, kind);
            let nvm = t.access_cost(MemClass::Nvm, kind);
            assert!(nvm.energy > vm.energy);
            assert!(nvm.cycles >= vm.cycles);
        }
        // The headline ratio from the paper: a whole NVM load costs
        // ~2.47x a VM load (§I cites FRAM at up to 2.47x SRAM energy).
        let vm_total = (t.cpu_pj_per_cycle * t.load_cycles
            + t.access_cost(MemClass::Vm, AccessKind::Read).energy.as_pj())
            as f64;
        let nvm_total = (t.cpu_pj_per_cycle * t.load_cycles) as f64
            + t.access_cost(MemClass::Nvm, AccessKind::Read)
                .energy
                .as_pj() as f64;
        let ratio = nvm_total / vm_total;
        assert!((2.2..2.8).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn gains_are_positive() {
        let t = table();
        assert!(t.read_gain() > Energy::ZERO);
        assert!(t.write_gain() > Energy::ZERO);
    }

    #[test]
    fn load_cost_depends_on_allocation() {
        let t = table();
        let load = Inst::Load {
            dst: Reg(0),
            var: VarId(0),
            idx: None,
        };
        let in_vm = t.inst_cost(&load, |_| MemClass::Vm);
        let in_nvm = t.inst_cost(&load, |_| MemClass::Nvm);
        assert!(in_nvm.energy > in_vm.energy);
    }

    #[test]
    fn div_costs_more_than_add() {
        let t = table();
        let add = Inst::Bin {
            dst: Reg(0),
            op: BinOp::Add,
            lhs: Operand::Imm(1),
            rhs: Operand::Imm(2),
        };
        let div = Inst::Bin {
            dst: Reg(0),
            op: BinOp::DivS,
            lhs: Operand::Imm(1),
            rhs: Operand::Imm(2),
        };
        assert!(
            t.inst_cost(&div, |_| MemClass::Vm).energy > t.inst_cost(&add, |_| MemClass::Vm).energy
        );
    }

    #[test]
    fn checkpoint_cost_scales_with_words() {
        let t = table();
        let small = t.checkpoint_commit_cost(0);
        let large = t.checkpoint_commit_cost(256);
        assert!(large.energy > small.energy);
        assert_eq!((large.energy - small.energy), t.save_words_cost(256).energy);
        // Registers are always saved.
        assert!(small.energy > t.checkpoint_fixed.energy);
    }

    #[test]
    fn resume_cost_scales_with_words() {
        let t = table();
        assert!(t.checkpoint_resume_cost(16).energy > t.checkpoint_resume_cost(0).energy);
    }

    #[test]
    fn cost_arithmetic() {
        let a = Cost::new(2, Energy::from_pj(10));
        let b = Cost::new(3, Energy::from_pj(5));
        let c = a + b;
        assert_eq!(c.cycles, 5);
        assert_eq!(c.energy, Energy::from_pj(15));
        let d = a * 3;
        assert_eq!(d.cycles, 6);
        assert_eq!(d.energy, Energy::from_pj(30));
        let mut e = Cost::ZERO;
        e += a;
        assert_eq!(e, a);
    }

    #[test]
    fn intrinsics_have_expected_static_costs() {
        let t = table();
        let cp = Inst::Checkpoint {
            id: schematic_ir::CheckpointId(0),
        };
        assert_eq!(t.inst_cost(&cp, |_| MemClass::Vm), Cost::ZERO);
        let ccp = Inst::CondCheckpoint {
            id: schematic_ir::CheckpointId(0),
            period: 4,
        };
        assert_eq!(t.inst_cost(&ccp, |_| MemClass::Vm), t.cond_check);
    }

    #[test]
    fn term_costs() {
        let t = table();
        assert!(t.term_cost(&Terminator::Ret(None)).cycles > 0);
        assert!(
            t.term_cost(&Terminator::Br(schematic_ir::BlockId(0)))
                .cycles
                > 0
        );
    }

    #[test]
    fn default_is_msp430() {
        assert_eq!(CostTable::default(), CostTable::msp430fr5969());
    }
}
