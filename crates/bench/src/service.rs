//! The persistent evaluation service: framed protocol and daemon core.
//!
//! `gridd` keeps predecoded benchmark programs and the content-addressed
//! cell cache warm across grid invocations, so a client pays process
//! startup, decode, and cache load once instead of per run. This module
//! holds everything testable without sockets:
//!
//! * **Frames** — each protocol message is a 4-byte big-endian length
//!   prefix followed by that many bytes of JSON (via [`crate::json`]).
//!   [`read_frame`] returns `Ok(None)` on a clean EOF at a frame
//!   boundary; a torn prefix, a truncated body, an oversized length
//!   ([`MAX_FRAME`]) or non-JSON payload is an error — never a panic —
//!   because the listener must survive any bytes a client throws at it.
//! * **Requests** — JSON objects tagged by `"op"`:
//!   `{"op":"submit","jobs":["run/Schematic/crc/10000",…]}` evaluates a
//!   batch (cache-first, optionally fanned out to worker processes),
//!   `{"op":"status"}` reports store and cache tallies, `{"op":"fetch"}`
//!   returns every accumulated cell as artifact objects,
//!   `{"op":"stats"}` returns the daemon's live telemetry (see below),
//!   and `{"op":"shutdown"}` stops the daemon. Errors come back as
//!   `{"ok":false,"error":…}` — a bad request never kills the service.
//! * **[`Daemon`]** — the state machine behind the socket loop:
//!   [`Daemon::handle`] maps one request to one response plus a
//!   shutdown flag. The `gridd` binary owns the `TcpListener` and feeds
//!   frames through it.
//!
//! ## Service telemetry
//!
//! Worker children attach a serialized [`schematic_obs::Registry`] to
//! every artifact line (see [`cache::worker_line_telemetry`]); the
//! daemon folds them into one **service registry**, adds a
//! `service/job_wall` latency histogram per dispatched job, and folds
//! in the process-global counters (`cache/hit`, `cache/miss`,
//! `cache/verify`, `daemon/op/*`) when answering `stats`. The response
//! carries daemon gauges (uptime, queue depth, worker utilization)
//! plus the merged registry as a [`schematic_obs::codec`] string, which
//! [`render_stats`] renders human-readable, [`render_stats_expo`]
//! renders as Prometheus-style text exposition (stable sorted
//! `name{labels} value` lines, integers only), and
//! `tracereport --service` renders offline from a dumped file.

use crate::cache::{self, CellCache, SourceDigests};
use crate::grid::{CellStore, GridError, GridMode, Job};
use crate::json::Json;
use schematic_energy::CostTable;
use schematic_obs::Registry;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::time::Instant;

/// Upper bound on one frame's payload (16 MiB — a full-grid fetch is
/// well under 1 MiB; anything bigger is a corrupt or hostile prefix).
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(String),
    /// The stream ended inside a length prefix or frame body.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize(usize),
    /// The payload is not UTF-8 JSON.
    Syntax(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "stream error: {e}"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversize(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Syntax(e) => write!(f, "frame payload is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one length-prefixed JSON frame and flushes.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the encoded payload exceeds
/// [`MAX_FRAME`]; [`FrameError::Io`] on stream failure.
pub fn write_frame(w: &mut impl Write, json: &Json) -> Result<(), FrameError> {
    let text = json.encode();
    let bytes = text.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(FrameError::Oversize(bytes.len()));
    }
    let io = |e: std::io::Error| FrameError::Io(e.to_string());
    w.write_all(&(bytes.len() as u32).to_be_bytes())
        .map_err(io)?;
    w.write_all(bytes).map_err(io)?;
    w.flush().map_err(io)
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream *between*
/// frames (the peer closed after a complete exchange); any mid-frame
/// end is [`FrameError::Truncated`].
///
/// # Errors
///
/// Never panics: torn, oversized, or garbage frames come back as the
/// matching [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversize(len));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.to_string())
        }
    })?;
    let text =
        String::from_utf8(buf).map_err(|_| FrameError::Syntax("payload is not UTF-8".into()))?;
    match Json::parse(&text) {
        Ok(json) => Ok(Some(json)),
        Err(e) => Err(FrameError::Syntax(e.to_string())),
    }
}

/// One client round-trip: write `req`, read the response frame.
///
/// # Errors
///
/// Any [`FrameError`]; a stream the server closed without answering is
/// [`FrameError::Truncated`].
pub fn request(stream: &mut (impl Read + Write), req: &Json) -> Result<Json, FrameError> {
    write_frame(stream, req)?;
    read_frame(stream)?.ok_or(FrameError::Truncated)
}

fn ok_response(mut fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut fields);
    crate::grid::obj(pairs)
}

fn error_response(message: String) -> Json {
    crate::grid::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message)),
    ])
}

/// The daemon's state: the accumulated cell store, the warm cache, and
/// batch tallies. One instance serves the whole process; requests are
/// handled synchronously in arrival order, which is also the
/// single-writer discipline the cache file needs.
pub struct Daemon {
    mode: GridMode,
    cache: Option<CellCache>,
    /// Worker processes per submit batch; `0` computes in-process.
    workers: usize,
    store: CellStore,
    sources: SourceDigests,
    batches: u64,
    hits: u64,
    computed: u64,
    started: Instant,
    /// Merged worker telemetry plus daemon-side spans; the `stats` op
    /// snapshots this with the process-global counters folded in.
    service_reg: Registry,
    /// Jobs whose artifact lines carried a worker registry.
    worker_jobs: u64,
    /// Sum of per-job wall nanoseconds reported by workers — honest
    /// utilization regardless of dispatch interleaving.
    worker_busy_nanos: u64,
    /// Miss count of the most recent submit batch.
    queue_last: u64,
    /// Largest miss count any batch has dispatched.
    queue_peak: u64,
}

impl Daemon {
    /// A fresh daemon. `cache` is the warm disk cache (`None` for
    /// `--no-cache`); `workers` > 0 dispatches each batch's misses to
    /// that many `gridrun --jobs` child processes.
    pub fn new(mode: GridMode, cache: Option<CellCache>, workers: usize) -> Daemon {
        Daemon {
            mode,
            cache,
            workers,
            store: CellStore::new(),
            sources: SourceDigests::new(),
            batches: 0,
            hits: 0,
            computed: 0,
            started: Instant::now(),
            service_reg: Registry::default(),
            worker_jobs: 0,
            worker_busy_nanos: 0,
            queue_last: 0,
            queue_peak: 0,
        }
    }

    /// The grid mode the daemon serves.
    pub fn mode(&self) -> GridMode {
        self.mode
    }

    /// Maps one request to `(response, shutdown)`. Never panics on a
    /// malformed request: the error goes back to the client and the
    /// daemon keeps serving.
    pub fn handle(&mut self, req: &Json) -> (Json, bool) {
        let _span = schematic_obs::span("daemon/request");
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return (error_response("missing field 'op'".into()), false),
        };
        schematic_obs::gcount(&format!("daemon/op/{op}"), 1);
        match op.as_str() {
            "submit" => (self.submit(req), false),
            "status" => (self.status(), false),
            "fetch" => (self.fetch(), false),
            "stats" => (self.stats(), false),
            "shutdown" => (ok_response(vec![]), true),
            other => (error_response(format!("unknown op '{other}'")), false),
        }
    }

    fn submit(&mut self, req: &Json) -> Json {
        let Some(Json::Arr(items)) = req.get("jobs") else {
            return error_response("missing or non-array field 'jobs'".into());
        };
        let mut jobs = Vec::with_capacity(items.len());
        for item in items {
            let Some(key) = item.as_str() else {
                return error_response(format!("non-string job key {}", item.encode()));
            };
            match Job::parse(key) {
                Ok(job) => jobs.push(job),
                Err(e) => return error_response(e),
            }
        }
        jobs.sort();
        jobs.dedup();
        let requested = jobs.len();
        let needed: Vec<Job> = jobs
            .into_iter()
            .filter(|j| self.store.get(j).is_none())
            .collect();
        let result = if self.workers == 0 {
            self.compute_inline(&needed)
        } else {
            self.compute_dispatched(&needed)
        };
        match result {
            Ok((hits, computed)) => {
                self.batches += 1;
                self.hits += hits as u64;
                self.computed += computed as u64;
                ok_response(vec![
                    ("requested", Json::UInt(requested as u64)),
                    ("hits", Json::UInt(hits as u64)),
                    ("computed", Json::UInt(computed as u64)),
                    ("cells", Json::UInt(self.store.len() as u64)),
                ])
            }
            Err(e) => error_response(e.to_string()),
        }
    }

    fn compute_inline(&mut self, needed: &[Job]) -> Result<(usize, usize), GridError> {
        let t0 = Instant::now();
        let (batch, stats) = cache::compute_cached(needed, self.cache.as_mut(), false, &|_, _| {})?;
        self.store.merge_from(batch)?;
        self.service_reg
            .record_span("daemon/batch", t0.elapsed().as_nanos() as u64);
        self.queue_last = stats.computed as u64;
        self.queue_peak = self.queue_peak.max(self.queue_last);
        Ok((stats.hits, stats.computed))
    }

    /// Resolves hits from the warm cache, partitions the misses
    /// round-robin over `workers` child `gridrun --jobs` processes, and
    /// folds their extended artifacts (cell + instrumented-module
    /// digests) back into the store *and* the cache — the daemon stays
    /// the file's only writer because children never open it.
    fn compute_dispatched(&mut self, needed: &[Job]) -> Result<(usize, usize), GridError> {
        let t0 = Instant::now();
        let table = CostTable::msp430fr5969();
        let (hits, misses) = match &self.cache {
            Some(cache) => cache::resolve(needed, cache, &table, &mut self.sources),
            None => (Vec::new(), needed.to_vec()),
        };
        for (job, value) in &hits {
            self.store.insert(job.clone(), value.clone())?;
        }
        self.queue_last = misses.len() as u64;
        self.queue_peak = self.queue_peak.max(self.queue_last);
        if misses.is_empty() {
            return Ok((hits.len(), 0));
        }
        let outputs = self.run_workers(&misses)?;
        let mut folded = 0;
        for text in outputs {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                let (job, value, ims, telemetry) = cache::parse_worker_line_telemetry(line)?;
                if let Some(cache) = &mut self.cache {
                    let source = self.sources.digest(&job.benchmark);
                    let ck = cache::cell_key(&job, &table, &ims);
                    cache.memo_put(cache::memo_key(&job, &table, source), ims);
                    cache.cell_put(ck, &job, value.clone());
                }
                if let Some(mut t) = telemetry {
                    // Keep the aggregates (spans, counters, histograms)
                    // but not the event logs: a long-lived daemon would
                    // otherwise hoard them until `stats` frames hit the
                    // protocol cap. Account them as spilled — the count
                    // stays visible, the bytes stay in the worker lines.
                    let spilled = t.registry.events.len() as u64;
                    t.registry.events.clear();
                    t.registry.spilled_events += spilled;
                    self.service_reg.merge_from(t.registry);
                    self.service_reg
                        .record_span("service/job_wall", t.wall_nanos);
                    self.worker_jobs += 1;
                    self.worker_busy_nanos = self.worker_busy_nanos.saturating_add(t.wall_nanos);
                }
                self.store.insert(job, value)?;
                folded += 1;
            }
        }
        self.service_reg
            .record_span("daemon/batch", t0.elapsed().as_nanos() as u64);
        if folded != misses.len() {
            return Err(GridError(format!(
                "workers returned {folded} cells for {} dispatched jobs",
                misses.len()
            )));
        }
        Ok((hits.len(), folded))
    }

    /// Spawns the worker processes and collects their artifact texts.
    fn run_workers(&mut self, misses: &[Job]) -> Result<Vec<String>, GridError> {
        let gridrun = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("gridrun")))
            .ok_or_else(|| GridError("cannot locate the gridrun binary".into()))?;
        let dir = std::env::temp_dir().join(format!(
            "gridd-{}-batch{}",
            std::process::id(),
            self.batches
        ));
        std::fs::create_dir_all(&dir).map_err(|e| GridError(format!("mkdir: {e}")))?;
        let n = self.workers.min(misses.len());
        let mut children = Vec::with_capacity(n);
        for i in 0..n {
            let jobs_path = dir.join(format!("jobs-{i}.txt"));
            let out_path = dir.join(format!("out-{i}.jsonl"));
            let keys: String = misses
                .iter()
                .skip(i)
                .step_by(n)
                .map(|j| format!("{j}\n"))
                .collect();
            std::fs::write(&jobs_path, keys).map_err(|e| GridError(format!("write jobs: {e}")))?;
            let mut cmd = std::process::Command::new(&gridrun);
            if self.mode == GridMode::Quick {
                cmd.arg("--quick");
            }
            cmd.arg("--jobs").arg(&jobs_path).arg("-o").arg(&out_path);
            // Children report through artifact telemetry, not heartbeats.
            cmd.env("SCHEMATIC_PROGRESS", "0");
            let child = cmd
                .spawn()
                .map_err(|e| GridError(format!("spawn {}: {e}", gridrun.display())))?;
            children.push((child, out_path));
        }
        let mut outputs = Vec::with_capacity(n);
        let mut failed = 0usize;
        for (mut child, out_path) in children {
            let status = child.wait().map_err(|e| GridError(format!("wait: {e}")))?;
            if !status.success() {
                failed += 1;
                continue;
            }
            outputs.push(
                std::fs::read_to_string(&out_path)
                    .map_err(|e| GridError(format!("read {}: {e}", out_path.display())))?,
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        if failed > 0 {
            return Err(GridError(format!("{failed} worker process(es) failed")));
        }
        Ok(outputs)
    }

    fn status(&self) -> Json {
        let (memos, cells) = self.cache.as_ref().map_or((0, 0), CellCache::len);
        ok_response(vec![
            ("cells", Json::UInt(self.store.len() as u64)),
            ("batches", Json::UInt(self.batches)),
            ("hits", Json::UInt(self.hits)),
            ("computed", Json::UInt(self.computed)),
            ("cache_memos", Json::UInt(memos as u64)),
            ("cache_cells", Json::UInt(cells as u64)),
        ])
    }

    fn fetch(&self) -> Json {
        let store_lines = self.store.to_jsonl();
        let cells: Vec<Json> = store_lines
            .lines()
            .map(|line| Json::parse(line).expect("store serialization is valid JSON"))
            .collect();
        ok_response(vec![("cells", Json::Arr(cells))])
    }

    /// Snapshot of the live service registry plus daemon gauges. The
    /// process-global counters (cache hit/miss/verify tallies, per-op
    /// request counts) are folded into the registry copy so one codec
    /// string carries the whole picture.
    fn stats(&self) -> Json {
        let mut reg = self.service_reg.clone();
        for (name, n) in schematic_obs::gcounters() {
            *reg.counters.entry(name).or_default() += n;
        }
        let (memos, cells) = self.cache.as_ref().map_or((0, 0), CellCache::len);
        ok_response(vec![
            (
                "uptime_nanos",
                Json::UInt(self.started.elapsed().as_nanos() as u64),
            ),
            ("batches", Json::UInt(self.batches)),
            ("hits", Json::UInt(self.hits)),
            ("computed", Json::UInt(self.computed)),
            ("cells", Json::UInt(self.store.len() as u64)),
            ("cache_memos", Json::UInt(memos as u64)),
            ("cache_cells", Json::UInt(cells as u64)),
            ("workers", Json::UInt(self.workers as u64)),
            ("worker_jobs", Json::UInt(self.worker_jobs)),
            ("worker_busy_nanos", Json::UInt(self.worker_busy_nanos)),
            ("queue_last", Json::UInt(self.queue_last)),
            ("queue_peak", Json::UInt(self.queue_peak)),
            ("registry", Json::Str(schematic_obs::codec::encode(&reg))),
        ])
    }
}

/// A `stats` response decoded for rendering. [`StatsSnapshot::parse`]
/// accepts both a live protocol response and a file the client dumped
/// with `--stats -o`.
pub struct StatsSnapshot {
    /// Nanoseconds since the daemon started.
    pub uptime_nanos: u64,
    /// Submit batches served.
    pub batches: u64,
    /// Cells answered from the store or cache across all batches.
    pub hits: u64,
    /// Cells computed (inline or by workers) across all batches.
    pub computed: u64,
    /// Cells accumulated in the store.
    pub cells: u64,
    /// Memo entries in the warm disk cache.
    pub cache_memos: u64,
    /// Cell entries in the warm disk cache.
    pub cache_cells: u64,
    /// Configured worker process count (`0` = inline).
    pub workers: u64,
    /// Jobs whose artifact lines carried worker telemetry.
    pub worker_jobs: u64,
    /// Sum of worker-reported per-job wall nanoseconds.
    pub worker_busy_nanos: u64,
    /// Miss count of the most recent batch.
    pub queue_last: u64,
    /// Largest miss count any batch dispatched.
    pub queue_peak: u64,
    /// The merged service registry (worker telemetry + daemon spans +
    /// process-global counters).
    pub registry: Registry,
}

impl StatsSnapshot {
    /// Decodes a `stats` response object.
    ///
    /// # Errors
    ///
    /// A message naming the missing field or the codec failure.
    pub fn parse(resp: &Json) -> Result<StatsSnapshot, String> {
        let field = |name: &str| {
            resp.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats response lacks numeric field '{name}'"))
        };
        let text = resp
            .get("registry")
            .and_then(Json::as_str)
            .ok_or("stats response lacks string field 'registry'")?;
        let registry =
            schematic_obs::codec::parse(text).map_err(|e| format!("bad registry payload: {e}"))?;
        Ok(StatsSnapshot {
            uptime_nanos: field("uptime_nanos")?,
            batches: field("batches")?,
            hits: field("hits")?,
            computed: field("computed")?,
            cells: field("cells")?,
            cache_memos: field("cache_memos")?,
            cache_cells: field("cache_cells")?,
            workers: field("workers")?,
            worker_jobs: field("worker_jobs")?,
            worker_busy_nanos: field("worker_busy_nanos")?,
            queue_last: field("queue_last")?,
            queue_peak: field("queue_peak")?,
            registry,
        })
    }
}

/// Human-readable `stats` rendering: daemon gauges, then the service
/// registry via [`render_service_report`].
pub fn render_stats(s: &StatsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "gridd stats: up {}.{:03}s · {} batches · {} hits · {} computed · {} store cells",
        s.uptime_nanos / 1_000_000_000,
        s.uptime_nanos / 1_000_000 % 1000,
        s.batches,
        s.hits,
        s.computed,
        s.cells,
    )
    .unwrap();
    writeln!(
        out,
        "workers: {} configured · {} jobs dispatched · busy {}.{:03}s · queue last {} peak {}",
        s.workers,
        s.worker_jobs,
        s.worker_busy_nanos / 1_000_000_000,
        s.worker_busy_nanos / 1_000_000 % 1000,
        s.queue_last,
        s.queue_peak,
    )
    .unwrap();
    writeln!(
        out,
        "cache: {} memos · {} cells",
        s.cache_memos, s.cache_cells
    )
    .unwrap();
    out.push('\n');
    out.push_str(&render_service_report(&s.registry, 10));
    out
}

/// Replaces every byte that could break a `name="value"` label pair —
/// quotes, backslashes, braces, newlines, control bytes — with `_`.
fn expo_label(value: &str) -> String {
    value
        .chars()
        .map(|c| match c {
            '"' | '\\' | '{' | '}' => '_',
            c if c.is_control() => '_',
            c => c,
        })
        .collect()
}

fn expo_push(out: &mut Vec<String>, name: &str, labels: &[(&str, &str)], value: u64) {
    debug_assert!(name.bytes().all(|b| b.is_ascii_lowercase() || b == b'_'));
    if labels.is_empty() {
        out.push(format!("{name} {value}"));
    } else {
        let body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", expo_label(v)))
            .collect();
        out.push(format!("{name}{{{}}} {value}", body.join(",")));
    }
}

/// Prometheus-style text exposition of a `stats` snapshot: one
/// `name{labels} value` per line, metric names `[a-z_]+`, integer
/// values, lines sorted so the output is byte-stable for a given
/// snapshot.
pub fn render_stats_expo(s: &StatsSnapshot) -> String {
    let mut lines = Vec::new();
    expo_push(
        &mut lines,
        "gridd_uptime_seconds",
        &[],
        s.uptime_nanos / 1_000_000_000,
    );
    expo_push(&mut lines, "gridd_batches_total", &[], s.batches);
    expo_push(&mut lines, "gridd_submit_hits_total", &[], s.hits);
    expo_push(&mut lines, "gridd_submit_computed_total", &[], s.computed);
    expo_push(&mut lines, "gridd_store_cells", &[], s.cells);
    expo_push(&mut lines, "gridd_cache_memos", &[], s.cache_memos);
    expo_push(&mut lines, "gridd_cache_cells", &[], s.cache_cells);
    expo_push(&mut lines, "gridd_workers", &[], s.workers);
    expo_push(&mut lines, "gridd_worker_jobs_total", &[], s.worker_jobs);
    expo_push(
        &mut lines,
        "gridd_worker_busy_nanos_total",
        &[],
        s.worker_busy_nanos,
    );
    expo_push(&mut lines, "gridd_queue_depth_last", &[], s.queue_last);
    expo_push(&mut lines, "gridd_queue_depth_peak", &[], s.queue_peak);
    let reg = &s.registry;
    expo_push(
        &mut lines,
        "gridd_registry_events",
        &[],
        reg.events.len() as u64,
    );
    expo_push(
        &mut lines,
        "gridd_registry_dropped_events_total",
        &[],
        reg.dropped_events,
    );
    expo_push(
        &mut lines,
        "gridd_registry_spilled_events_total",
        &[],
        reg.spilled_events,
    );
    for (name, n) in &reg.counters {
        expo_push(&mut lines, "gridd_counter_total", &[("name", name)], *n);
    }
    for (name, stats) in &reg.spans {
        let labels = [("name", name.as_str())];
        expo_push(&mut lines, "gridd_span_calls_total", &labels, stats.calls);
        expo_push(
            &mut lines,
            "gridd_span_nanos_total",
            &labels,
            stats.total_nanos,
        );
        for (q, num) in [("p50", 50), ("p95", 95)] {
            expo_push(
                &mut lines,
                "gridd_span_nanos",
                &[("name", name.as_str()), ("quantile", q)],
                stats.hist.quantile(num, 100),
            );
        }
    }
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Whether `line` matches the exposition grammar the CI smoke greps
/// for: `^[a-z_]+(\{[^}]*\})? [0-9]+$`, hand-rolled because the repo
/// carries no regex engine.
pub fn expo_line_ok(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() && (bytes[i].is_ascii_lowercase() || bytes[i] == b'_') {
        i += 1;
    }
    if i == 0 {
        return false;
    }
    if i < bytes.len() && bytes[i] == b'{' {
        i += 1;
        while i < bytes.len() && bytes[i] != b'}' && bytes[i] != b'\n' {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'}' {
            return false;
        }
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b' ' {
        return false;
    }
    i += 1;
    let digits = &bytes[i..];
    !digits.is_empty() && digits.iter().all(u8::is_ascii_digit)
}

/// Offline rendering of a service registry: top-K slowest jobs, cache
/// hit rate per report kind, and latency quantiles per
/// technique × benchmark. Shared by `gridrun --stats` (via
/// [`render_stats`]) and `tracereport --service`.
pub fn render_service_report(reg: &Registry, top_k: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "service registry: {} spans · {} counters · {} events ({} dropped, {} spilled)",
        reg.spans.len(),
        reg.counters.len(),
        reg.events.len(),
        reg.dropped_events,
        reg.spilled_events,
    )
    .unwrap();

    // Top-K slowest jobs by mean wall time.
    let mut jobs: Vec<(&str, &schematic_obs::PhaseStats)> = reg
        .spans
        .iter()
        .filter_map(|(name, s)| name.strip_prefix("job/").map(|j| (j, s)))
        .collect();
    if !jobs.is_empty() {
        jobs.sort_by(|a, b| b.1.mean_nanos().cmp(&a.1.mean_nanos()).then(a.0.cmp(b.0)));
        jobs.truncate(top_k);
        let headers: Vec<String> = ["job", "calls", "mean_us", "p50_us", "p95_us", "max_us"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = jobs
            .iter()
            .map(|(job, s)| {
                vec![
                    job.to_string(),
                    s.calls.to_string(),
                    (s.mean_nanos() / 1000).to_string(),
                    (s.hist.quantile(50, 100) / 1000).to_string(),
                    (s.hist.quantile(95, 100) / 1000).to_string(),
                    (s.hist.max() / 1000).to_string(),
                ]
            })
            .collect();
        writeln!(out, "\ntop {} slowest jobs (by mean wall time)", jobs.len()).unwrap();
        out.push_str(&crate::render_table(&headers, &rows));
    }

    // Cache hit rate per report kind, from the per-kind counters the
    // cache layer tallies on every resolve.
    let mut kinds: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for (name, n) in &reg.counters {
        if let Some(kind) = name.strip_prefix("cache/hit/") {
            kinds.entry(kind).or_default().0 += n;
        } else if let Some(kind) = name.strip_prefix("cache/miss/") {
            kinds.entry(kind).or_default().1 += n;
        }
    }
    if !kinds.is_empty() {
        let headers: Vec<String> = ["kind", "hits", "misses", "rate"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = kinds
            .iter()
            .map(|(kind, (h, m))| {
                let rate = (h * 100).checked_div(h + m).unwrap_or(0);
                vec![
                    kind.to_string(),
                    h.to_string(),
                    m.to_string(),
                    format!("{rate}%"),
                ]
            })
            .collect();
        writeln!(out, "\ncache hit rate by report kind").unwrap();
        out.push_str(&crate::render_table(&headers, &rows));
    }

    // Latency quantiles per technique × benchmark, aggregated over the
    // per-job wall histograms (`job/<kind>/<technique>/<benchmark>/…`).
    let mut cells: BTreeMap<(String, String), schematic_obs::Histogram> = BTreeMap::new();
    for (name, s) in &reg.spans {
        let Some(rest) = name.strip_prefix("job/") else {
            continue;
        };
        let mut parts = rest.splitn(4, '/');
        let (Some(_kind), Some(tech), Some(bench), Some(_scenario)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        cells
            .entry((tech.to_string(), bench.to_string()))
            .or_default()
            .merge_from(&s.hist);
    }
    if !cells.is_empty() {
        let headers: Vec<String> = ["technique", "benchmark", "jobs", "p50_us", "p95_us"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|((tech, bench), h)| {
                vec![
                    tech.clone(),
                    bench.clone(),
                    h.count().to_string(),
                    (h.quantile(50, 100) / 1000).to_string(),
                    (h.quantile(95, 100) / 1000).to_string(),
                ]
            })
            .collect();
        writeln!(out, "\njob wall latency by technique x benchmark").unwrap();
        out.push_str(&crate::render_table(&headers, &rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// SplitMix64 — the deterministic fuzz driver.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn frames_roundtrip() {
        let msgs = [
            Json::Null,
            Json::Str("hello \u{1F600} \"quoted\"".into()),
            crate::grid::obj(vec![
                ("op", Json::Str("submit".into())),
                (
                    "jobs",
                    Json::Arr(vec![Json::Str("run/Schematic/crc/10000".into())]),
                ),
            ]),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut r = Cursor::new(buf);
        for m in &msgs {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(m));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frames_error_at_every_cut() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &crate::grid::obj(vec![("op", Json::Str("status".into()))]),
        )
        .unwrap();
        for cut in 1..buf.len() {
            let mut r = Cursor::new(&buf[..cut]);
            assert_eq!(
                read_frame(&mut r),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
        }
        // Cut at zero is a clean EOF, not an error.
        assert_eq!(read_frame(&mut Cursor::new(&buf[..0])), Ok(None));
    }

    #[test]
    fn oversize_prefix_is_rejected_without_allocation() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"whatever");
        assert_eq!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::Oversize(u32::MAX as usize))
        );
    }

    #[test]
    fn garbage_frames_never_panic() {
        let mut rng = Rng(0xC0FFEE);
        for round in 0..500 {
            let len = (rng.next() % 64) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                bytes.push((rng.next() & 0xFF) as u8);
            }
            // Whatever comes back, it must be a value, not a panic.
            let _ = read_frame(&mut Cursor::new(&bytes));
            // Same bytes framed as a payload: length is valid, body is
            // garbage — must parse-fail or succeed, never panic.
            let mut framed = (len as u32).to_be_bytes().to_vec();
            framed.extend_from_slice(&bytes);
            let r = read_frame(&mut Cursor::new(&framed));
            assert!(
                !matches!(r, Err(FrameError::Truncated)),
                "round {round}: complete frame misread as truncated"
            );
        }
    }

    #[test]
    fn daemon_serves_a_batch_lifecycle() {
        let mut d = Daemon::new(GridMode::Quick, None, 0);
        let submit = crate::grid::obj(vec![
            ("op", Json::Str("submit".into())),
            (
                "jobs",
                Json::Arr(vec![
                    Json::Str("support/Schematic/crc/0".into()),
                    Json::Str("support/Mementos/crc/0".into()),
                    // A duplicate collapses.
                    Json::Str("support/Schematic/crc/0".into()),
                ]),
            ),
        ]);
        let (resp, stop) = d.handle(&submit);
        assert!(!stop);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("requested").and_then(Json::as_u64), Some(2));
        assert_eq!(resp.get("computed").and_then(Json::as_u64), Some(2));
        // Resubmitting is free: the store already has both cells.
        let (resp, _) = d.handle(&submit);
        assert_eq!(resp.get("computed").and_then(Json::as_u64), Some(0));
        let (status, _) = d.handle(&crate::grid::obj(vec![("op", Json::Str("status".into()))]));
        assert_eq!(status.get("cells").and_then(Json::as_u64), Some(2));
        assert_eq!(status.get("batches").and_then(Json::as_u64), Some(2));
        let (fetch, _) = d.handle(&crate::grid::obj(vec![("op", Json::Str("fetch".into()))]));
        let Some(Json::Arr(cells)) = fetch.get("cells") else {
            panic!("fetch returns cells");
        };
        assert_eq!(cells.len(), 2);
        let (resp, stop) = d.handle(&crate::grid::obj(vec![(
            "op",
            Json::Str("shutdown".into()),
        )]));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert!(stop);
    }

    #[test]
    fn daemon_rejects_bad_requests_without_dying() {
        let mut d = Daemon::new(GridMode::Quick, None, 0);
        for bad in [
            Json::Null,
            crate::grid::obj(vec![("op", Json::Str("explode".into()))]),
            crate::grid::obj(vec![("op", Json::Str("submit".into()))]),
            crate::grid::obj(vec![
                ("op", Json::Str("submit".into())),
                ("jobs", Json::Arr(vec![Json::Str("not-a-job".into())])),
            ]),
        ] {
            let (resp, stop) = d.handle(&bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{}", bad.encode());
            assert!(!stop);
        }
        // Still alive and serving.
        let (status, _) = d.handle(&crate::grid::obj(vec![("op", Json::Str("status".into()))]));
        assert_eq!(status.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn stats_op_reports_a_parseable_snapshot() {
        let mut d = Daemon::new(GridMode::Quick, None, 0);
        let submit = crate::grid::obj(vec![
            ("op", Json::Str("submit".into())),
            (
                "jobs",
                Json::Arr(vec![
                    Json::Str("support/Schematic/crc/0".into()),
                    Json::Str("support/Mementos/crc/0".into()),
                ]),
            ),
        ]);
        let (resp, _) = d.handle(&submit);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let (stats, stop) = d.handle(&crate::grid::obj(vec![("op", Json::Str("stats".into()))]));
        assert!(!stop);
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        let snap = StatsSnapshot::parse(&stats).unwrap();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.cells, 2);
        assert_eq!(snap.workers, 0);
        // The inline path records a batch span into the service registry.
        assert!(snap.registry.spans.contains_key("daemon/batch"));
        // The global op counters were folded into the snapshot. The
        // counters are process-global, so other tests in this binary may
        // have bumped them too — assert presence and a lower bound, not
        // equality.
        assert!(snap.registry.counters.get("daemon/op/stats").copied() >= Some(1));
        assert!(snap.registry.counters.get("daemon/op/submit").copied() >= Some(1));
        // Both renderers accept the snapshot.
        let human = render_stats(&snap);
        assert!(human.contains("gridd stats:"));
        assert!(human.contains("service registry:"));
        let expo = render_stats_expo(&snap);
        for line in expo.lines() {
            assert!(expo_line_ok(line), "bad exposition line: {line:?}");
        }
        assert!(expo.contains("gridd_batches_total 1\n"));
        assert!(expo.contains("gridd_store_cells 2\n"));
        // Sorted and byte-stable.
        let lines: Vec<&str> = expo.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert_eq!(expo, render_stats_expo(&snap));
    }

    #[test]
    fn service_report_renders_jobs_kinds_and_latency() {
        let mut reg = Registry::default();
        for (job, nanos) in [
            ("run/Schematic/crc/10000", 5_000_000u64),
            ("run/Schematic/fft/10000", 9_000_000),
            ("run/Mementos/crc/10000", 2_000_000),
            ("fig7/Schematic/sort/2000", 1_000_000),
        ] {
            reg.record_span(&format!("job/{job}"), nanos);
        }
        *reg.counters.entry("cache/hit/run".into()).or_default() = 3;
        *reg.counters.entry("cache/miss/run".into()).or_default() = 1;
        *reg.counters.entry("cache/miss/fig7".into()).or_default() = 1;
        let report = render_service_report(&reg, 2);
        // Top-K truncates to the two slowest by mean.
        assert!(report.contains("top 2 slowest jobs"));
        assert!(report.contains("run/Schematic/fft/10000"));
        assert!(report.contains("run/Schematic/crc/10000"));
        assert!(!report.contains("run/Mementos/crc/10000"));
        // Hit rates are integer percents per kind.
        assert!(report.contains("75%"), "{report}");
        assert!(report.contains("0%"), "{report}");
        // Technique x benchmark rollup covers each pair.
        assert!(report.contains("job wall latency by technique x benchmark"));
        assert!(report.contains("Mementos"));
        let empty = render_service_report(&Registry::default(), 5);
        assert!(empty.contains("0 spans"));
    }

    #[test]
    fn expo_line_grammar_is_enforced() {
        for good in [
            "gridd_batches_total 3",
            "gridd_counter_total{name=\"cache/hit\"} 12",
            "gridd_span_nanos{name=\"job/run\",quantile=\"p95\"} 9000000",
        ] {
            assert!(expo_line_ok(good), "{good}");
        }
        for bad in [
            "",
            "Gridd_total 1",
            "gridd_total  1",
            "gridd_total 1.5",
            "gridd_total -1",
            "gridd_total{unterminated 1",
            "gridd_total",
            "gridd_total{x=\"y\"}1",
        ] {
            assert!(!expo_line_ok(bad), "{bad}");
        }
        // The sanitizer keeps label values inside the grammar even when
        // the raw name carries quotes, braces, or newlines.
        let mut lines = Vec::new();
        expo_push(
            &mut lines,
            "gridd_counter_total",
            &[("name", "we\"ird}\n\\x")],
            7,
        );
        assert!(expo_line_ok(&lines[0]), "{:?}", lines[0]);
    }

    #[test]
    fn stats_frames_survive_truncation_oversize_and_garbage() {
        // A realistic stats response frame, then every prefix of it.
        let mut d = Daemon::new(GridMode::Quick, None, 0);
        let (resp, _) = d.handle(&crate::grid::obj(vec![("op", Json::Str("stats".into()))]));
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp).unwrap();
        for cut in 1..buf.len() {
            let mut r = Cursor::new(&buf[..cut]);
            assert_eq!(read_frame(&mut r), Err(FrameError::Truncated), "cut {cut}");
        }
        // Oversize prefix on a stats-shaped body.
        let mut oversize = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        oversize.extend_from_slice(&buf[4..]);
        assert_eq!(
            read_frame(&mut Cursor::new(oversize)),
            Err(FrameError::Oversize(MAX_FRAME + 1))
        );
        // Garbage mutations of the payload must parse-fail or decode to
        // something StatsSnapshot::parse rejects — never panic.
        let mut rng = Rng(0x57A7_57A7);
        for _ in 0..200 {
            let mut mutated = buf.clone();
            let idx = 4 + (rng.next() as usize) % (mutated.len() - 4);
            mutated[idx] = (rng.next() & 0xFF) as u8;
            if let Ok(Some(json)) = read_frame(&mut Cursor::new(&mutated)) {
                let _ = StatsSnapshot::parse(&json);
            }
        }
        // A stats request with stray fields still answers.
        let (resp, stop) = d.handle(&crate::grid::obj(vec![
            ("op", Json::Str("stats".into())),
            ("extra", Json::UInt(7)),
        ]));
        assert!(!stop);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }
}
