//! The persistent evaluation service: framed protocol and daemon core.
//!
//! `gridd` keeps predecoded benchmark programs and the content-addressed
//! cell cache warm across grid invocations, so a client pays process
//! startup, decode, and cache load once instead of per run. This module
//! holds everything testable without sockets:
//!
//! * **Frames** — each protocol message is a 4-byte big-endian length
//!   prefix followed by that many bytes of JSON (via [`crate::json`]).
//!   [`read_frame`] returns `Ok(None)` on a clean EOF at a frame
//!   boundary; a torn prefix, a truncated body, an oversized length
//!   ([`MAX_FRAME`]) or non-JSON payload is an error — never a panic —
//!   because the listener must survive any bytes a client throws at it.
//! * **Requests** — JSON objects tagged by `"op"`:
//!   `{"op":"submit","jobs":["run/Schematic/crc/10000",…]}` evaluates a
//!   batch (cache-first, optionally fanned out to worker processes),
//!   `{"op":"status"}` reports store and cache tallies, `{"op":"fetch"}`
//!   returns every accumulated cell as artifact objects, and
//!   `{"op":"shutdown"}` stops the daemon. Errors come back as
//!   `{"ok":false,"error":…}` — a bad request never kills the service.
//! * **[`Daemon`]** — the state machine behind the socket loop:
//!   [`Daemon::handle`] maps one request to one response plus a
//!   shutdown flag. The `gridd` binary owns the `TcpListener` and feeds
//!   frames through it.

use crate::cache::{self, CellCache, SourceDigests};
use crate::grid::{CellStore, GridError, GridMode, Job};
use crate::json::Json;
use schematic_energy::CostTable;
use std::fmt;
use std::io::{Read, Write};

/// Upper bound on one frame's payload (16 MiB — a full-grid fetch is
/// well under 1 MiB; anything bigger is a corrupt or hostile prefix).
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(String),
    /// The stream ended inside a length prefix or frame body.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize(usize),
    /// The payload is not UTF-8 JSON.
    Syntax(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "stream error: {e}"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversize(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Syntax(e) => write!(f, "frame payload is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one length-prefixed JSON frame and flushes.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the encoded payload exceeds
/// [`MAX_FRAME`]; [`FrameError::Io`] on stream failure.
pub fn write_frame(w: &mut impl Write, json: &Json) -> Result<(), FrameError> {
    let text = json.encode();
    let bytes = text.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(FrameError::Oversize(bytes.len()));
    }
    let io = |e: std::io::Error| FrameError::Io(e.to_string());
    w.write_all(&(bytes.len() as u32).to_be_bytes())
        .map_err(io)?;
    w.write_all(bytes).map_err(io)?;
    w.flush().map_err(io)
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream *between*
/// frames (the peer closed after a complete exchange); any mid-frame
/// end is [`FrameError::Truncated`].
///
/// # Errors
///
/// Never panics: torn, oversized, or garbage frames come back as the
/// matching [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversize(len));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e.to_string())
        }
    })?;
    let text =
        String::from_utf8(buf).map_err(|_| FrameError::Syntax("payload is not UTF-8".into()))?;
    match Json::parse(&text) {
        Ok(json) => Ok(Some(json)),
        Err(e) => Err(FrameError::Syntax(e.to_string())),
    }
}

/// One client round-trip: write `req`, read the response frame.
///
/// # Errors
///
/// Any [`FrameError`]; a stream the server closed without answering is
/// [`FrameError::Truncated`].
pub fn request(stream: &mut (impl Read + Write), req: &Json) -> Result<Json, FrameError> {
    write_frame(stream, req)?;
    read_frame(stream)?.ok_or(FrameError::Truncated)
}

fn ok_response(mut fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut fields);
    crate::grid::obj(pairs)
}

fn error_response(message: String) -> Json {
    crate::grid::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message)),
    ])
}

/// The daemon's state: the accumulated cell store, the warm cache, and
/// batch tallies. One instance serves the whole process; requests are
/// handled synchronously in arrival order, which is also the
/// single-writer discipline the cache file needs.
pub struct Daemon {
    mode: GridMode,
    cache: Option<CellCache>,
    /// Worker processes per submit batch; `0` computes in-process.
    workers: usize,
    store: CellStore,
    sources: SourceDigests,
    batches: u64,
    hits: u64,
    computed: u64,
}

impl Daemon {
    /// A fresh daemon. `cache` is the warm disk cache (`None` for
    /// `--no-cache`); `workers` > 0 dispatches each batch's misses to
    /// that many `gridrun --jobs` child processes.
    pub fn new(mode: GridMode, cache: Option<CellCache>, workers: usize) -> Daemon {
        Daemon {
            mode,
            cache,
            workers,
            store: CellStore::new(),
            sources: SourceDigests::new(),
            batches: 0,
            hits: 0,
            computed: 0,
        }
    }

    /// The grid mode the daemon serves.
    pub fn mode(&self) -> GridMode {
        self.mode
    }

    /// Maps one request to `(response, shutdown)`. Never panics on a
    /// malformed request: the error goes back to the client and the
    /// daemon keeps serving.
    pub fn handle(&mut self, req: &Json) -> (Json, bool) {
        let _span = schematic_obs::span("daemon/request");
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return (error_response("missing field 'op'".into()), false),
        };
        schematic_obs::gcount(&format!("daemon/op/{op}"), 1);
        match op.as_str() {
            "submit" => (self.submit(req), false),
            "status" => (self.status(), false),
            "fetch" => (self.fetch(), false),
            "shutdown" => (ok_response(vec![]), true),
            other => (error_response(format!("unknown op '{other}'")), false),
        }
    }

    fn submit(&mut self, req: &Json) -> Json {
        let Some(Json::Arr(items)) = req.get("jobs") else {
            return error_response("missing or non-array field 'jobs'".into());
        };
        let mut jobs = Vec::with_capacity(items.len());
        for item in items {
            let Some(key) = item.as_str() else {
                return error_response(format!("non-string job key {}", item.encode()));
            };
            match Job::parse(key) {
                Ok(job) => jobs.push(job),
                Err(e) => return error_response(e),
            }
        }
        jobs.sort();
        jobs.dedup();
        let requested = jobs.len();
        let needed: Vec<Job> = jobs
            .into_iter()
            .filter(|j| self.store.get(j).is_none())
            .collect();
        let result = if self.workers == 0 {
            self.compute_inline(&needed)
        } else {
            self.compute_dispatched(&needed)
        };
        match result {
            Ok((hits, computed)) => {
                self.batches += 1;
                self.hits += hits as u64;
                self.computed += computed as u64;
                ok_response(vec![
                    ("requested", Json::UInt(requested as u64)),
                    ("hits", Json::UInt(hits as u64)),
                    ("computed", Json::UInt(computed as u64)),
                    ("cells", Json::UInt(self.store.len() as u64)),
                ])
            }
            Err(e) => error_response(e.to_string()),
        }
    }

    fn compute_inline(&mut self, needed: &[Job]) -> Result<(usize, usize), GridError> {
        let (batch, stats) = cache::compute_cached(needed, self.cache.as_mut(), false, &|_, _| {})?;
        self.store.merge_from(batch)?;
        Ok((stats.hits, stats.computed))
    }

    /// Resolves hits from the warm cache, partitions the misses
    /// round-robin over `workers` child `gridrun --jobs` processes, and
    /// folds their extended artifacts (cell + instrumented-module
    /// digests) back into the store *and* the cache — the daemon stays
    /// the file's only writer because children never open it.
    fn compute_dispatched(&mut self, needed: &[Job]) -> Result<(usize, usize), GridError> {
        let table = CostTable::msp430fr5969();
        let (hits, misses) = match &self.cache {
            Some(cache) => cache::resolve(needed, cache, &table, &mut self.sources),
            None => (Vec::new(), needed.to_vec()),
        };
        for (job, value) in &hits {
            self.store.insert(job.clone(), value.clone())?;
        }
        if misses.is_empty() {
            return Ok((hits.len(), 0));
        }
        let outputs = self.run_workers(&misses)?;
        let mut folded = 0;
        for text in outputs {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                let (job, value, ims) = cache::parse_worker_line(line)?;
                if let Some(cache) = &mut self.cache {
                    let source = self.sources.digest(&job.benchmark);
                    let ck = cache::cell_key(&job, &table, &ims);
                    cache.memo_put(cache::memo_key(&job, &table, source), ims);
                    cache.cell_put(ck, &job, value.clone());
                }
                self.store.insert(job, value)?;
                folded += 1;
            }
        }
        if folded != misses.len() {
            return Err(GridError(format!(
                "workers returned {folded} cells for {} dispatched jobs",
                misses.len()
            )));
        }
        Ok((hits.len(), folded))
    }

    /// Spawns the worker processes and collects their artifact texts.
    fn run_workers(&mut self, misses: &[Job]) -> Result<Vec<String>, GridError> {
        let gridrun = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("gridrun")))
            .ok_or_else(|| GridError("cannot locate the gridrun binary".into()))?;
        let dir = std::env::temp_dir().join(format!(
            "gridd-{}-batch{}",
            std::process::id(),
            self.batches
        ));
        std::fs::create_dir_all(&dir).map_err(|e| GridError(format!("mkdir: {e}")))?;
        let n = self.workers.min(misses.len());
        let mut children = Vec::with_capacity(n);
        for i in 0..n {
            let jobs_path = dir.join(format!("jobs-{i}.txt"));
            let out_path = dir.join(format!("out-{i}.jsonl"));
            let keys: String = misses
                .iter()
                .skip(i)
                .step_by(n)
                .map(|j| format!("{j}\n"))
                .collect();
            std::fs::write(&jobs_path, keys).map_err(|e| GridError(format!("write jobs: {e}")))?;
            let mut cmd = std::process::Command::new(&gridrun);
            if self.mode == GridMode::Quick {
                cmd.arg("--quick");
            }
            cmd.arg("--jobs").arg(&jobs_path).arg("-o").arg(&out_path);
            let child = cmd
                .spawn()
                .map_err(|e| GridError(format!("spawn {}: {e}", gridrun.display())))?;
            children.push((child, out_path));
        }
        let mut outputs = Vec::with_capacity(n);
        let mut failed = 0usize;
        for (mut child, out_path) in children {
            let status = child.wait().map_err(|e| GridError(format!("wait: {e}")))?;
            if !status.success() {
                failed += 1;
                continue;
            }
            outputs.push(
                std::fs::read_to_string(&out_path)
                    .map_err(|e| GridError(format!("read {}: {e}", out_path.display())))?,
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        if failed > 0 {
            return Err(GridError(format!("{failed} worker process(es) failed")));
        }
        Ok(outputs)
    }

    fn status(&self) -> Json {
        let (memos, cells) = self.cache.as_ref().map_or((0, 0), CellCache::len);
        ok_response(vec![
            ("cells", Json::UInt(self.store.len() as u64)),
            ("batches", Json::UInt(self.batches)),
            ("hits", Json::UInt(self.hits)),
            ("computed", Json::UInt(self.computed)),
            ("cache_memos", Json::UInt(memos as u64)),
            ("cache_cells", Json::UInt(cells as u64)),
        ])
    }

    fn fetch(&self) -> Json {
        let store_lines = self.store.to_jsonl();
        let cells: Vec<Json> = store_lines
            .lines()
            .map(|line| Json::parse(line).expect("store serialization is valid JSON"))
            .collect();
        ok_response(vec![("cells", Json::Arr(cells))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// SplitMix64 — the deterministic fuzz driver.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn frames_roundtrip() {
        let msgs = [
            Json::Null,
            Json::Str("hello \u{1F600} \"quoted\"".into()),
            crate::grid::obj(vec![
                ("op", Json::Str("submit".into())),
                (
                    "jobs",
                    Json::Arr(vec![Json::Str("run/Schematic/crc/10000".into())]),
                ),
            ]),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut r = Cursor::new(buf);
        for m in &msgs {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(m));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frames_error_at_every_cut() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &crate::grid::obj(vec![("op", Json::Str("status".into()))]),
        )
        .unwrap();
        for cut in 1..buf.len() {
            let mut r = Cursor::new(&buf[..cut]);
            assert_eq!(
                read_frame(&mut r),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
        }
        // Cut at zero is a clean EOF, not an error.
        assert_eq!(read_frame(&mut Cursor::new(&buf[..0])), Ok(None));
    }

    #[test]
    fn oversize_prefix_is_rejected_without_allocation() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"whatever");
        assert_eq!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::Oversize(u32::MAX as usize))
        );
    }

    #[test]
    fn garbage_frames_never_panic() {
        let mut rng = Rng(0xC0FFEE);
        for round in 0..500 {
            let len = (rng.next() % 64) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                bytes.push((rng.next() & 0xFF) as u8);
            }
            // Whatever comes back, it must be a value, not a panic.
            let _ = read_frame(&mut Cursor::new(&bytes));
            // Same bytes framed as a payload: length is valid, body is
            // garbage — must parse-fail or succeed, never panic.
            let mut framed = (len as u32).to_be_bytes().to_vec();
            framed.extend_from_slice(&bytes);
            let r = read_frame(&mut Cursor::new(&framed));
            assert!(
                !matches!(r, Err(FrameError::Truncated)),
                "round {round}: complete frame misread as truncated"
            );
        }
    }

    #[test]
    fn daemon_serves_a_batch_lifecycle() {
        let mut d = Daemon::new(GridMode::Quick, None, 0);
        let submit = crate::grid::obj(vec![
            ("op", Json::Str("submit".into())),
            (
                "jobs",
                Json::Arr(vec![
                    Json::Str("support/Schematic/crc/0".into()),
                    Json::Str("support/Mementos/crc/0".into()),
                    // A duplicate collapses.
                    Json::Str("support/Schematic/crc/0".into()),
                ]),
            ),
        ]);
        let (resp, stop) = d.handle(&submit);
        assert!(!stop);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("requested").and_then(Json::as_u64), Some(2));
        assert_eq!(resp.get("computed").and_then(Json::as_u64), Some(2));
        // Resubmitting is free: the store already has both cells.
        let (resp, _) = d.handle(&submit);
        assert_eq!(resp.get("computed").and_then(Json::as_u64), Some(0));
        let (status, _) = d.handle(&crate::grid::obj(vec![("op", Json::Str("status".into()))]));
        assert_eq!(status.get("cells").and_then(Json::as_u64), Some(2));
        assert_eq!(status.get("batches").and_then(Json::as_u64), Some(2));
        let (fetch, _) = d.handle(&crate::grid::obj(vec![("op", Json::Str("fetch".into()))]));
        let Some(Json::Arr(cells)) = fetch.get("cells") else {
            panic!("fetch returns cells");
        };
        assert_eq!(cells.len(), 2);
        let (resp, stop) = d.handle(&crate::grid::obj(vec![(
            "op",
            Json::Str("shutdown".into()),
        )]));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert!(stop);
    }

    #[test]
    fn daemon_rejects_bad_requests_without_dying() {
        let mut d = Daemon::new(GridMode::Quick, None, 0);
        for bad in [
            Json::Null,
            crate::grid::obj(vec![("op", Json::Str("explode".into()))]),
            crate::grid::obj(vec![("op", Json::Str("submit".into()))]),
            crate::grid::obj(vec![
                ("op", Json::Str("submit".into())),
                ("jobs", Json::Arr(vec![Json::Str("not-a-job".into())])),
            ]),
        ] {
            let (resp, stop) = d.handle(&bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{}", bad.encode());
            assert!(!stop);
        }
        // Still alive and serving.
        let (status, _) = d.handle(&crate::grid::obj(vec![("op", Json::Str("status".into()))]));
        assert_eq!(status.get("ok"), Some(&Json::Bool(true)));
    }
}
