//! Content-addressed cell cache: skip re-evaluating grid cells whose
//! inputs have not changed.
//!
//! A cell's value is a pure function of four things: the job key, the
//! platform cost table, the configurations the kernel compiles and runs
//! with, and the compiled programs themselves. The cache captures that
//! dependency chain with **two** content-addressed record kinds instead
//! of one, so the warm path can skip the compile too:
//!
//! * A **memo** record maps the *compile inputs* — job, cost table,
//!   configs, and the stable digest of the benchmark's *source* module —
//!   to the digests of every [`InstrumentedModule`] the kernel produced
//!   ([`memo_key`]). Building a source module and hashing it costs
//!   microseconds; compiling and placing checkpoints does not.
//! * A **cell** record maps the *evaluation inputs* — job, cost table,
//!   configs, and the instrumented-module digests — to the cell's value
//!   ([`cell_key`]). Routing the cell key through the memo's digests
//!   means an edited benchmark or perturbed platform constant misses the
//!   memo, which misses the cell, which recomputes — no staleness by
//!   construction.
//!
//! Both keys also fold in [`KEY_SCHEMA_VERSION`]; bump it whenever the
//! *kernel code* changes what a cell means (the one input content
//! addressing cannot see).
//!
//! The store is an append-only JSONL file (one record per line, via
//! [`crate::json`]). Loading is tolerant: unparsable or truncated lines
//! — a crashed writer's torn tail — and records from another schema are
//! skipped, never fatal; the cache is advisory and a lost record only
//! costs a recompute. Duplicate keys resolve last-writer-wins, and
//! [`CellCache::open`] compacts the file (rewrite-then-rename) when more
//! than a third of its lines are dead. Single-writer discipline is the
//! caller's job: `gridrun` child shards run with the cache off, and in
//! daemon mode `gridd` is the sole writer.

use crate::grid::{
    cell_from_json, cell_to_json, evaluate_traced, write_job_identity, CellStore, CellValue,
    GridError, Job,
};
use crate::json::Json;
use crate::parallel::par_map;
use schematic_energy::CostTable;
use schematic_ir::hash::{hash_module, Digest, StableHasher};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version of the key derivation *and* of the meaning of the kernels
/// behind it. Bump on any change to what a cell computes that the
/// content-addressed inputs cannot express (kernel edits, metric
/// semantics); every old record then misses and the grid recomputes.
///
/// v2: index-sensitive WAR analysis (per-element footprints, region
/// downgrades, re-execution bounds) changed soundness verdicts.
///
/// v3: the pluggable power-scenario layer replaced the raw `tbpf` job
/// field with a [`crate::Scenario`] (periodic / stochastic / recorded
/// trace) in keys and artifact lines.
pub const KEY_SCHEMA_VERSION: u64 = 3;

/// Identity of the static soundness analysis the cells' verdicts come
/// from, folded into every key: cells computed under the
/// index-insensitive analysis invalidate by construction instead of
/// replaying stale region classifications.
pub const ANALYSIS_VERSION: &str = "anomaly/index-sensitive-v1";

/// Shared prefix of both keys: schema version, analysis tag, domain
/// separator, the full job key, the platform identity, and every
/// configuration the job's kernel will compile or run with.
fn write_key_prefix(h: &mut StableHasher, domain: &str, job: &Job, table: &CostTable) {
    h.write_u64(KEY_SCHEMA_VERSION);
    h.write_str(ANALYSIS_VERSION);
    h.write_str(domain);
    h.write_str(job.kind.name());
    h.write_str(&job.technique);
    h.write_str(&job.benchmark);
    job.scenario.identity_into(h);
    table.identity_into(h);
    write_job_identity(job, table, h);
}

/// The compile-memo key: everything that determines *which instrumented
/// modules* a job's kernel produces — including `source`, the
/// [`hash_module`] digest of the benchmark's built module.
pub fn memo_key(job: &Job, table: &CostTable, source: Digest) -> Digest {
    let mut h = StableHasher::new();
    write_key_prefix(&mut h, "memo", job, table);
    h.write_u64(source.hi);
    h.write_u64(source.lo);
    h.finish()
}

/// The cell-value key: everything that determines a job's value given
/// the compiled programs — `ims` are the instrumented-module digests the
/// kernel reported (in kernel order; empty when nothing compiled).
pub fn cell_key(job: &Job, table: &CostTable, ims: &[Digest]) -> Digest {
    let mut h = StableHasher::new();
    write_key_prefix(&mut h, "cell", job, table);
    h.write_u64(ims.len() as u64);
    for d in ims {
        h.write_u64(d.hi);
        h.write_u64(d.lo);
    }
    h.finish()
}

/// Per-process memo of benchmark source digests: building a module and
/// hashing it is cheap but not free, and the warm path does it once per
/// benchmark, not once per cell.
#[derive(Debug, Default)]
pub struct SourceDigests {
    map: BTreeMap<String, Digest>,
}

impl SourceDigests {
    /// An empty memo.
    pub fn new() -> SourceDigests {
        SourceDigests::default()
    }

    /// The stable digest of `benchmark`'s built source module.
    ///
    /// # Panics
    ///
    /// On an unknown benchmark name (same contract as the grid kernels).
    pub fn digest(&mut self, benchmark: &str) -> Digest {
        if let Some(d) = self.map.get(benchmark) {
            return *d;
        }
        let b = schematic_benchsuite::by_name(benchmark)
            .unwrap_or_else(|| panic!("unknown benchmark '{benchmark}'"));
        let d = hash_module(&(b.build)(crate::SEED));
        self.map.insert(benchmark.to_string(), d);
        d
    }
}

fn hex(d: Digest) -> Json {
    Json::Str(d.to_hex())
}

fn digest_field(json: &Json, key: &str) -> Option<Digest> {
    Digest::from_hex(json.get(key)?.as_str()?)
}

/// The disk-backed cache: memo and cell records keyed by digest.
#[derive(Debug)]
pub struct CellCache {
    path: PathBuf,
    memos: BTreeMap<Digest, Vec<Digest>>,
    cells: BTreeMap<Digest, (Job, CellValue)>,
    /// Lines in the backing file that are not live records (superseded
    /// duplicates, torn tails, foreign schemas) — the compaction
    /// trigger.
    dead: usize,
}

impl CellCache {
    /// Opens (or creates on first write) the cache at `path`, loading
    /// every live record. Never fails: an unreadable file or line is an
    /// empty/shorter cache, not an error. Compacts the file in place
    /// when dead lines outnumber a third of the total.
    pub fn open(path: impl AsRef<Path>) -> CellCache {
        let path = path.as_ref().to_path_buf();
        let mut cache = CellCache {
            path,
            memos: BTreeMap::new(),
            cells: BTreeMap::new(),
            dead: 0,
        };
        let text = fs::read_to_string(&cache.path).unwrap_or_default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if !cache.load_line(line) {
                cache.dead += 1;
            }
        }
        let live = cache.memos.len() + cache.cells.len();
        if cache.dead > 0 && cache.dead * 2 > live {
            let _ = cache.compact();
        }
        cache
    }

    /// Parses one record line into the in-memory maps; `false` when the
    /// line is not a live record of this schema.
    fn load_line(&mut self, line: &str) -> bool {
        let json = match Json::parse(line) {
            Ok(j) => j,
            Err(_) => return false,
        };
        if json.get("schema").and_then(Json::as_u64) != Some(KEY_SCHEMA_VERSION) {
            return false;
        }
        let Some(key) = digest_field(&json, "k") else {
            return false;
        };
        match json.get("t").and_then(Json::as_str) {
            Some("memo") => {
                let Some(Json::Arr(items)) = json.get("ims") else {
                    return false;
                };
                let mut ims = Vec::with_capacity(items.len());
                for item in items {
                    match item.as_str().and_then(Digest::from_hex) {
                        Some(d) => ims.push(d),
                        None => return false,
                    }
                }
                if self.memos.insert(key, ims).is_some() {
                    self.dead += 1; // superseded duplicate
                }
                true
            }
            Some("cell") => {
                let Some(cell) = json.get("cell") else {
                    return false;
                };
                let Ok((job, value)) = cell_from_json(cell) else {
                    return false;
                };
                if self.cells.insert(key, (job, value)).is_some() {
                    self.dead += 1;
                }
                true
            }
            _ => false,
        }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Live `(memo, cell)` record counts.
    pub fn len(&self) -> (usize, usize) {
        (self.memos.len(), self.cells.len())
    }

    /// Whether the cache holds no records.
    pub fn is_empty(&self) -> bool {
        self.memos.is_empty() && self.cells.is_empty()
    }

    /// The instrumented-module digests memoized for a compile-inputs
    /// key.
    pub fn memo_get(&self, key: Digest) -> Option<&[Digest]> {
        self.memos.get(&key).map(Vec::as_slice)
    }

    /// Records a compile memo and appends it to the backing file
    /// (best-effort: an append failure costs a future recompute, never
    /// the current run).
    pub fn memo_put(&mut self, key: Digest, ims: Vec<Digest>) {
        let record = crate::grid::obj(vec![
            ("schema", Json::UInt(KEY_SCHEMA_VERSION)),
            ("t", Json::Str("memo".into())),
            ("k", hex(key)),
            ("ims", Json::Arr(ims.iter().map(|&d| hex(d)).collect())),
        ]);
        if self.memos.insert(key, ims).is_some() {
            self.dead += 1;
        }
        self.append(&record);
    }

    /// The cached value for a cell key.
    pub fn cell_get(&self, key: Digest) -> Option<&CellValue> {
        self.cells.get(&key).map(|(_, v)| v)
    }

    /// Records a cell value and appends it to the backing file
    /// (best-effort, like [`CellCache::memo_put`]).
    pub fn cell_put(&mut self, key: Digest, job: &Job, value: CellValue) {
        let record = crate::grid::obj(vec![
            ("schema", Json::UInt(KEY_SCHEMA_VERSION)),
            ("t", Json::Str("cell".into())),
            ("k", hex(key)),
            ("cell", cell_to_json(job, &value)),
        ]);
        if self.cells.insert(key, (job.clone(), value)).is_some() {
            self.dead += 1;
        }
        self.append(&record);
    }

    fn append(&self, record: &Json) {
        let mut line = record.encode();
        line.push('\n');
        let opened = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path);
        if let Ok(mut f) = opened {
            let _ = f.write_all(line.as_bytes());
        }
    }

    /// Rewrites the backing file with only the live records (memos
    /// first, then cells, in key order), via a temporary file and an
    /// atomic rename so a crash never leaves a half-written cache.
    ///
    /// # Errors
    ///
    /// The underlying filesystem error, if any.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let mut out = String::new();
        for (&key, ims) in &self.memos {
            let record = crate::grid::obj(vec![
                ("schema", Json::UInt(KEY_SCHEMA_VERSION)),
                ("t", Json::Str("memo".into())),
                ("k", hex(key)),
                ("ims", Json::Arr(ims.iter().map(|&d| hex(d)).collect())),
            ]);
            out.push_str(&record.encode());
            out.push('\n');
        }
        for (&key, (job, value)) in &self.cells {
            let record = crate::grid::obj(vec![
                ("schema", Json::UInt(KEY_SCHEMA_VERSION)),
                ("t", Json::Str("cell".into())),
                ("k", hex(key)),
                ("cell", cell_to_json(job, value)),
            ]);
            out.push_str(&record.encode());
            out.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, &self.path)?;
        self.dead = 0;
        Ok(())
    }
}

/// Pass 1 of a cached evaluation (serial, cheap): splits `jobs` into
/// cache hits (with their values) and misses, tallying both on the
/// process-global `cache/hit` / `cache/miss` counters. Shared by
/// [`compute_cached`] and the daemon's worker-dispatch path, which
/// resolves hits locally and farms only the misses out.
pub fn resolve(
    jobs: &[Job],
    cache: &CellCache,
    table: &CostTable,
    sources: &mut SourceDigests,
) -> (Vec<(Job, CellValue)>, Vec<Job>) {
    let mut hits: Vec<(Job, CellValue)> = Vec::new();
    let mut misses: Vec<Job> = Vec::new();
    let mut hit_kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut miss_kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    for job in jobs {
        let source = sources.digest(&job.benchmark);
        let cached = cache
            .memo_get(memo_key(job, table, source))
            .map(|ims| cell_key(job, table, ims))
            .and_then(|ck| cache.cell_get(ck));
        match cached {
            Some(value) => {
                *hit_kinds.entry(job.kind.name()).or_default() += 1;
                hits.push((job.clone(), value.clone()));
            }
            None => {
                *miss_kinds.entry(job.kind.name()).or_default() += 1;
                misses.push(job.clone());
            }
        }
    }
    schematic_obs::gcount("cache/hit", hits.len() as u64);
    schematic_obs::gcount("cache/miss", misses.len() as u64);
    // Per-report-kind tallies drive the service renderer's hit-rate
    // table; the aggregates above stay the queue-accounting invariant
    // (hits + misses == resolved jobs).
    for (kind, n) in hit_kinds {
        schematic_obs::gcount(&format!("cache/hit/{kind}"), n);
    }
    for (kind, n) in miss_kinds {
        schematic_obs::gcount(&format!("cache/miss/{kind}"), n);
    }
    (hits, misses)
}

/// Tallies of one [`compute_cached`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells answered from the cache.
    pub hits: usize,
    /// Cells evaluated from scratch (and written back).
    pub computed: usize,
}

/// Evaluates `jobs` into a [`CellStore`], answering from `cache` where
/// possible and writing every miss back. With `cache = None` this is
/// exactly [`CellStore::compute_with_progress`]. `progress(done, total)`
/// reports *computed* cells only — hits are effectively free and would
/// drown the signal.
///
/// With `verify` set, cache hits are additionally recomputed and
/// compared — the paranoia mode `gridrun --cache-verify` exposes; any
/// divergence (a stale or corrupt cache that content addressing should
/// have made impossible) is a hard error naming the cells.
///
/// # Errors
///
/// A [`GridError`] listing mismatched cells in verify mode.
pub fn compute_cached(
    jobs: &[Job],
    cache: Option<&mut CellCache>,
    verify: bool,
    progress: &(impl Fn(usize, usize) + Sync),
) -> Result<(CellStore, CacheStats), GridError> {
    let Some(cache) = cache else {
        let store = CellStore::compute_with_progress(jobs, progress);
        let stats = CacheStats {
            hits: 0,
            computed: jobs.len(),
        };
        return Ok((store, stats));
    };
    let table = CostTable::msp430fr5969();
    let mut sources = SourceDigests::new();
    let (hits, misses) = resolve(jobs, cache, &table, &mut sources);

    // Pass 2 (parallel): evaluate the misses — and, in verify mode,
    // re-evaluate the hits to cross-check the cache.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let total = misses.len();
    let done = AtomicUsize::new(0);
    let computed: Vec<(CellValue, Vec<Digest>)> = par_map(&misses, |job| {
        let out = evaluate_traced(job, &table);
        progress(done.fetch_add(1, Ordering::Relaxed) + 1, total);
        out
    });
    if verify {
        schematic_obs::gcount("cache/verify", hits.len() as u64);
        let fresh = par_map(&hits, |(job, _)| evaluate_traced(job, &table).0);
        let mismatched: Vec<String> = hits
            .iter()
            .zip(&fresh)
            .filter(|((_, cached), fresh)| *cached != **fresh)
            .map(|((job, _), _)| job.to_string())
            .collect();
        if !mismatched.is_empty() {
            return Err(GridError(format!(
                "cache verification failed: {} stale cell(s): {}",
                mismatched.len(),
                mismatched.join(", ")
            )));
        }
    }

    // Pass 3 (serial): write misses back and assemble the store.
    let mut store = CellStore::new();
    for (job, value) in &hits {
        store
            .insert(job.clone(), value.clone())
            .expect("cached cells are deterministic");
    }
    for (job, (value, ims)) in misses.iter().zip(computed) {
        let source = sources.digest(&job.benchmark);
        let ck = cell_key(job, &table, &ims);
        cache.memo_put(memo_key(job, &table, source), ims);
        cache.cell_put(ck, job, value.clone());
        store
            .insert(job.clone(), value)
            .expect("computed cells are deterministic");
    }
    Ok((
        store,
        CacheStats {
            hits: hits.len(),
            computed: misses.len(),
        },
    ))
}

/// Per-job telemetry a worker attaches to its artifact line: the job's
/// wall-clock nanoseconds plus everything the job's [`schematic_obs`]
/// capture recorded (phase spans, counters, events).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerTelemetry {
    /// Wall-clock nanoseconds the worker spent evaluating the job.
    pub wall_nanos: u64,
    /// The job's captured observation registry.
    pub registry: schematic_obs::Registry,
}

/// Encodes one worker-shard output line: the cell plus its
/// instrumented-module digests, so a parent with the cache (the daemon)
/// can append both record kinds without recompiling anything.
pub fn worker_line(job: &Job, value: &CellValue, ims: &[Digest]) -> String {
    worker_record(job, value, ims, None).encode()
}

/// [`worker_line`] with per-job telemetry attached: the registry rides
/// the line as an embedded [`schematic_obs::codec`] string, so the
/// digest-carrying artifact stream doubles as the telemetry channel —
/// no second file, no second protocol.
pub fn worker_line_telemetry(
    job: &Job,
    value: &CellValue,
    ims: &[Digest],
    telemetry: &WorkerTelemetry,
) -> String {
    worker_record(job, value, ims, Some(telemetry)).encode()
}

fn worker_record(
    job: &Job,
    value: &CellValue,
    ims: &[Digest],
    telemetry: Option<&WorkerTelemetry>,
) -> Json {
    let mut pairs = vec![
        ("cell", cell_to_json(job, value)),
        ("ims", Json::Arr(ims.iter().map(|&d| hex(d)).collect())),
    ];
    if let Some(t) = telemetry {
        pairs.push(("wall_nanos", Json::UInt(t.wall_nanos)));
        pairs.push((
            "telemetry",
            Json::Str(schematic_obs::codec::encode(&t.registry)),
        ));
    }
    crate::grid::obj(pairs)
}

/// Decodes a [`worker_line`], ignoring any telemetry fields — the
/// cell-folding path a parent without a registry uses.
///
/// # Errors
///
/// A [`GridError`] describing the malformed field.
pub fn parse_worker_line(line: &str) -> Result<(Job, CellValue, Vec<Digest>), GridError> {
    parse_worker_line_telemetry(line).map(|(job, value, ims, _)| (job, value, ims))
}

/// Decodes a worker line including its optional telemetry: `None` when
/// the line came from a telemetry-off worker (both spellings stay
/// parseable so mixed fleets interoperate).
///
/// # Errors
///
/// A [`GridError`] describing the malformed field — including a
/// present-but-corrupt telemetry payload, which must not silently
/// vanish from service aggregates.
pub fn parse_worker_line_telemetry(
    line: &str,
) -> Result<(Job, CellValue, Vec<Digest>, Option<WorkerTelemetry>), GridError> {
    let json = Json::parse(line).map_err(|e| GridError(e.to_string()))?;
    let cell = json
        .get("cell")
        .ok_or_else(|| GridError("missing field 'cell'".into()))?;
    let (job, value) = cell_from_json(cell)?;
    let Some(Json::Arr(items)) = json.get("ims") else {
        return Err(GridError("missing or non-array field 'ims'".into()));
    };
    let mut ims = Vec::with_capacity(items.len());
    for item in items {
        let d = item
            .as_str()
            .and_then(Digest::from_hex)
            .ok_or_else(|| GridError("field 'ims' holds a non-digest entry".into()))?;
        ims.push(d);
    }
    let telemetry = match (json.get("wall_nanos"), json.get("telemetry")) {
        (None, None) => None,
        (Some(wall), Some(text)) => {
            let wall_nanos = wall
                .as_u64()
                .ok_or_else(|| GridError("non-integer field 'wall_nanos'".into()))?;
            let encoded = text
                .as_str()
                .ok_or_else(|| GridError("non-string field 'telemetry'".into()))?;
            let registry = schematic_obs::codec::parse(encoded)
                .map_err(|e| GridError(format!("bad telemetry payload: {e}")))?;
            Some(WorkerTelemetry {
                wall_nanos,
                registry,
            })
        }
        _ => {
            return Err(GridError(
                "fields 'wall_nanos' and 'telemetry' must appear together".into(),
            ))
        }
    };
    Ok((job, value, ims, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("schematic-cache-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn quick_jobs() -> Vec<Job> {
        vec![
            Job::support("Schematic", "crc"),
            Job::support("Mementos", "crc"),
            Job::bare("crc"),
            Job::run("Schematic", "crc", 10_000),
        ]
    }

    #[test]
    fn keys_are_sensitive_to_every_input() {
        let table = CostTable::msp430fr5969();
        let job = Job::run("Schematic", "crc", 10_000);
        let src = Digest { hi: 1, lo: 2 };
        let base = memo_key(&job, &table, src);
        // Same inputs, same key.
        assert_eq!(base, memo_key(&job, &table, src));
        // Any job field.
        assert_ne!(
            base,
            memo_key(&Job::run("Ratchet", "crc", 10_000), &table, src)
        );
        assert_ne!(
            base,
            memo_key(&Job::run("Schematic", "fft", 10_000), &table, src)
        );
        assert_ne!(
            base,
            memo_key(&Job::run("Schematic", "crc", 1_000), &table, src)
        );
        // The source module.
        assert_ne!(base, memo_key(&job, &table, Digest { hi: 1, lo: 3 }));
        // A platform constant.
        let mut perturbed = CostTable::msp430fr5969();
        perturbed.nvm_write_pj += 1;
        assert_ne!(base, memo_key(&job, &perturbed, src));
        // Memo and cell keys are domain-separated even over identical
        // trailing digests.
        assert_ne!(base, cell_key(&job, &table, &[src]));
        // The cell key sees the compiled programs.
        let ims = [Digest { hi: 9, lo: 9 }];
        assert_ne!(cell_key(&job, &table, &ims), cell_key(&job, &table, &[]));
    }

    #[test]
    fn warm_run_computes_nothing_and_matches_cold() {
        let path = tmp("warm.jsonl");
        let _ = fs::remove_file(&path);
        let jobs = quick_jobs();
        let mut cache = CellCache::open(&path);
        let (cold, s1) = compute_cached(&jobs, Some(&mut cache), false, &|_, _| {}).unwrap();
        assert_eq!((s1.hits, s1.computed), (0, jobs.len()));
        // Reopen from disk: everything must hit, and byte-identically.
        let mut cache = CellCache::open(&path);
        assert_eq!(cache.len(), (jobs.len(), jobs.len()));
        let (warm, s2) = compute_cached(&jobs, Some(&mut cache), false, &|_, _| {}).unwrap();
        assert_eq!((s2.hits, s2.computed), (jobs.len(), 0));
        assert_eq!(cold.to_jsonl(), warm.to_jsonl());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn poisoned_memo_invalidates_exactly_one_cell() {
        let path = tmp("poison.jsonl");
        let _ = fs::remove_file(&path);
        let jobs = quick_jobs();
        let mut cache = CellCache::open(&path);
        let (cold, _) = compute_cached(&jobs, Some(&mut cache), false, &|_, _| {}).unwrap();
        // Simulate an edited benchmark: the victim's memo now names a
        // compile output that has no cached cell.
        let table = CostTable::msp430fr5969();
        let victim = &jobs[3];
        let src = SourceDigests::new().digest(&victim.benchmark);
        cache.memo_put(
            memo_key(victim, &table, src),
            vec![Digest {
                hi: 0xDEAD,
                lo: 0xBEEF,
            }],
        );
        let (warm, stats) = compute_cached(&jobs, Some(&mut cache), false, &|_, _| {}).unwrap();
        assert_eq!((stats.hits, stats.computed), (jobs.len() - 1, 1));
        // The recompute repairs the memo and reproduces the value.
        assert_eq!(cold.to_jsonl(), warm.to_jsonl());
        let (_, healed) = compute_cached(&jobs, Some(&mut cache), false, &|_, _| {}).unwrap();
        assert_eq!((healed.hits, healed.computed), (jobs.len(), 0));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn verify_mode_accepts_a_consistent_cache() {
        let path = tmp("verify.jsonl");
        let _ = fs::remove_file(&path);
        let jobs = quick_jobs();
        let mut cache = CellCache::open(&path);
        compute_cached(&jobs, Some(&mut cache), false, &|_, _| {}).unwrap();
        let (_, stats) = compute_cached(&jobs, Some(&mut cache), true, &|_, _| {}).unwrap();
        assert_eq!(stats.hits, jobs.len());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_and_foreign_lines_are_skipped_then_compacted() {
        let path = tmp("torn.jsonl");
        let _ = fs::remove_file(&path);
        let jobs = quick_jobs();
        let mut cache = CellCache::open(&path);
        compute_cached(&jobs, Some(&mut cache), false, &|_, _| {}).unwrap();
        let live = cache.len();
        // A crashed writer's torn tail, garbage, and a foreign schema.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"not json at all\n{\"schema\":99,\"t\":\"memo\"}\n{\"schema\":1,\"t\":\"ce")
            .unwrap();
        drop(f);
        let cache = CellCache::open(&path);
        assert_eq!(cache.len(), live);
        // 3 dead lines > (live/2 is 4 for 8 live... ) — force-check the
        // compaction path explicitly instead of relying on the ratio.
        let mut cache = cache;
        cache.compact().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), live.0 + live.1);
        assert_eq!(CellCache::open(&path).len(), live);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn worker_line_roundtrips() {
        let job = Job::run("Schematic", "crc", 10_000);
        let value = CellValue::Run {
            outcome: None,
            reason: Some("no sound placement: x".into()),
        };
        let ims = vec![Digest { hi: 5, lo: 6 }];
        let line = worker_line(&job, &value, &ims);
        let (j2, v2, i2) = parse_worker_line(&line).unwrap();
        assert_eq!((j2, v2, i2), (job.clone(), value.clone(), ims.clone()));
        // A plain line carries no telemetry.
        let (_, _, _, t) = parse_worker_line_telemetry(&line).unwrap();
        assert!(t.is_none());
        assert!(parse_worker_line("garbage").is_err());
        assert!(parse_worker_line("{\"cell\":{}}").is_err());

        // The telemetry spelling round-trips registry and wall time.
        let mut registry = schematic_obs::Registry::default();
        registry.record_span("cell/compile", 1234);
        registry.record_span(&format!("job/{job}"), 5678);
        *registry.counters.entry("cells".into()).or_default() += 1;
        let telemetry = WorkerTelemetry {
            wall_nanos: 5678,
            registry,
        };
        let line = worker_line_telemetry(&job, &value, &ims, &telemetry);
        let (j2, v2, i2, t2) = parse_worker_line_telemetry(&line).unwrap();
        assert_eq!((j2, v2, i2), (job, value, ims));
        assert_eq!(t2, Some(telemetry));
        // The telemetry-blind parser still folds the cell.
        assert!(parse_worker_line(&line).is_ok());
        // A corrupt telemetry payload is an error, not a silent drop.
        assert!(parse_worker_line_telemetry(
            &line.replace("\\\"t\\\":\\\"reg\\\"", "\\\"t\\\":\\\"wat\\\"")
        )
        .is_err());
    }
}
