//! Power scenarios: the grid's pluggable supply axis.
//!
//! The paper evaluates at three fixed TBPFs; a [`Scenario`] generalizes
//! that axis so a grid cell can also run under a seeded stochastic
//! supply or a recorded harvest trace, without the rest of the pipeline
//! (job keys, artifacts, cache digests, renders) knowing more than one
//! spelling:
//!
//! | scenario | key spelling | example |
//! |----------|--------------|---------|
//! | periodic | the bare TBPF in cycles (legacy) | `10000` |
//! | stochastic | `stoch:MEAN:JITTER:SEED` | `stoch:10000:2000:3` |
//! | recorded trace | `trace:ID` | `trace:rf-office` |
//!
//! Trace ids name files under the repo's `traces/` directory
//! (`traces/<ID>.trace`, window lengths in cycles, one per line — see
//! [`schematic_emu::parse_trace`]); `SCHEMATIC_TRACES` overrides the
//! directory. Files are loaded once and interned process-wide so the
//! emulator's [`PowerModel`] stays `Copy`.
//!
//! Placement is keyed to [`Scenario::min_window_cycles`] — the
//! guaranteed shortest window — so SCHEMATIC's soundness argument
//! (checkpoint intervals fit the window budget) carries over to bursty
//! supplies unchanged. For the periodic scenario this is exactly the
//! legacy TBPF-derived budget.

use schematic_emu::{intern_trace, parse_trace, trace_by_name, PowerModel, TraceId};
use std::fmt;
use std::path::PathBuf;

/// One point on the grid's power axis. The variant order (periodic
/// first) keeps every legacy job's position in the grid's stable total
/// order unchanged.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scenario {
    /// A power failure every `tbpf` cycles (the paper's model). `0` is
    /// the canonical placeholder for job kinds whose power model is
    /// fixed or absent.
    Periodic {
        /// Time between power failures, in cycles.
        tbpf: u64,
    },
    /// Window lengths drawn uniformly from `mean_tbpf ± jitter`,
    /// deterministic per seed.
    Stochastic {
        /// Mean time between power failures, in cycles.
        mean_tbpf: u64,
        /// Half-width of the window-length distribution (< mean).
        jitter: u64,
        /// SplitMix64 stream seed.
        seed: u64,
    },
    /// A recorded harvest trace from `traces/<id>.trace`.
    Trace {
        /// The trace file's stem (`[A-Za-z0-9_-]+`).
        id: String,
    },
}

impl Scenario {
    /// The periodic scenario for a raw TBPF (the legacy axis).
    pub fn periodic(tbpf: u64) -> Scenario {
        Scenario::Periodic { tbpf }
    }

    /// The raw TBPF when this is the periodic scenario.
    pub fn as_periodic(&self) -> Option<u64> {
        match *self {
            Scenario::Periodic { tbpf } => Some(tbpf),
            _ => None,
        }
    }

    /// Parses the key spelling (inverse of `Display`).
    ///
    /// # Errors
    ///
    /// A reason string naming the malformed field.
    pub fn parse(s: &str) -> Result<Scenario, String> {
        if let Some(rest) = s.strip_prefix("stoch:") {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 3 {
                return Err(format!(
                    "stochastic scenario {s:?}: want stoch:MEAN:JITTER:SEED"
                ));
            }
            let num = |what: &str, p: &str| {
                p.parse::<u64>()
                    .map_err(|_| format!("stochastic scenario {s:?}: bad {what} {p:?}"))
            };
            let (mean_tbpf, jitter, seed) = (
                num("mean", parts[0])?,
                num("jitter", parts[1])?,
                num("seed", parts[2])?,
            );
            if jitter >= mean_tbpf {
                return Err(format!(
                    "stochastic scenario {s:?}: jitter {jitter} must be below the mean {mean_tbpf}"
                ));
            }
            Ok(Scenario::Stochastic {
                mean_tbpf,
                jitter,
                seed,
            })
        } else if let Some(id) = s.strip_prefix("trace:") {
            if id.is_empty()
                || !id
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(format!(
                    "trace scenario {s:?}: id must be non-empty [A-Za-z0-9_-]"
                ));
            }
            Ok(Scenario::Trace { id: id.to_string() })
        } else {
            s.parse::<u64>()
                .map(|tbpf| Scenario::Periodic { tbpf })
                .map_err(|_| {
                    format!("scenario {s:?}: want a TBPF in cycles, stoch:MEAN:JITTER:SEED, or trace:ID")
                })
        }
    }

    /// Resolves the emulator power model, loading and interning the
    /// trace file on first use.
    ///
    /// # Errors
    ///
    /// A reason string when a trace file is missing or malformed.
    pub fn power_model(&self) -> Result<PowerModel, String> {
        match self {
            Scenario::Periodic { tbpf } => Ok(PowerModel::Periodic { tbpf: *tbpf }),
            Scenario::Stochastic {
                mean_tbpf,
                jitter,
                seed,
            } => Ok(PowerModel::Stochastic {
                mean_tbpf: *mean_tbpf,
                jitter: *jitter,
                seed: *seed,
            }),
            Scenario::Trace { id } => Ok(PowerModel::Trace {
                id: load_trace(id)?,
            }),
        }
    }

    /// The guaranteed shortest window in cycles — what placement (the
    /// energy budget `EB`) is keyed to under every scenario.
    ///
    /// # Errors
    ///
    /// Propagates trace-loading failures.
    pub fn min_window_cycles(&self) -> Result<u64, String> {
        self.power_model().map(|m| m.min_window_cycles())
    }

    /// Feeds the scenario's identity into a stable hasher (cache keys).
    /// A trace scenario hashes the interned window *contents*, so
    /// editing a trace file invalidates its cached cells.
    pub fn identity_into(&self, h: &mut schematic_ir::hash::StableHasher) {
        match self {
            Scenario::Periodic { tbpf } => {
                h.write_tag(0xA0);
                h.write_u64(*tbpf);
            }
            Scenario::Stochastic {
                mean_tbpf,
                jitter,
                seed,
            } => {
                h.write_tag(0xA1);
                h.write_u64(*mean_tbpf);
                h.write_u64(*jitter);
                h.write_u64(*seed);
            }
            Scenario::Trace { id } => {
                h.write_tag(0xA2);
                h.write_str(id);
                let windows =
                    schematic_emu::trace_windows(load_trace(id).expect("trace loads for hashing"));
                h.write_usize(windows.len());
                for &w in windows {
                    h.write_u64(w);
                }
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scenario::Periodic { tbpf } => write!(f, "{tbpf}"),
            Scenario::Stochastic {
                mean_tbpf,
                jitter,
                seed,
            } => write!(f, "stoch:{mean_tbpf}:{jitter}:{seed}"),
            Scenario::Trace { id } => write!(f, "trace:{id}"),
        }
    }
}

/// The recorded-trace directory: `SCHEMATIC_TRACES`, or the repo's
/// `traces/` next to the workspace root.
pub fn traces_dir() -> PathBuf {
    match std::env::var_os("SCHEMATIC_TRACES") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../traces")),
    }
}

/// Loads and interns `traces/<id>.trace`, returning the process-wide
/// handle. Idempotent: a trace already interned under `id` is returned
/// without touching the filesystem.
///
/// # Errors
///
/// A reason string naming the file on IO or parse failure.
pub fn load_trace(id: &str) -> Result<TraceId, String> {
    if let Some(tid) = trace_by_name(id) {
        return Ok(tid);
    }
    let path = traces_dir().join(format!("{id}.trace"));
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("trace {:?}: {e}", path.display()))?;
    let windows = parse_trace(&text).map_err(|e| format!("trace {:?}: {e}", path.display()))?;
    Ok(intern_trace(id, windows))
}

/// The trace ids available in [`traces_dir`] (sorted `*.trace` stems).
pub fn available_traces() -> Vec<String> {
    let mut ids = Vec::new();
    if let Ok(entries) = std::fs::read_dir(traces_dir()) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("trace") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    ids.push(stem.to_string());
                }
            }
        }
    }
    ids.sort();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spellings_round_trip() {
        for s in [
            Scenario::periodic(0),
            Scenario::periodic(10_000),
            Scenario::Stochastic {
                mean_tbpf: 10_000,
                jitter: 2_000,
                seed: 3,
            },
            Scenario::Trace {
                id: "rf-office".into(),
            },
        ] {
            assert_eq!(Scenario::parse(&s.to_string()), Ok(s.clone()), "{s}");
        }
        // The legacy periodic spelling is the bare number.
        assert_eq!(Scenario::periodic(10_000).to_string(), "10000");
    }

    #[test]
    fn parse_rejects_malformed_fields_with_reasons() {
        for (input, needle) in [
            ("bogus", "want a TBPF"),
            ("stoch:10", "want stoch:MEAN:JITTER:SEED"),
            ("stoch:a:b:c", "bad mean"),
            ("stoch:100:100:1", "below the mean"),
            ("trace:", "non-empty"),
            ("trace:../etc", "[A-Za-z0-9_-]"),
        ] {
            let err = Scenario::parse(input).unwrap_err();
            assert!(err.contains(needle), "{input}: {err}");
        }
    }

    #[test]
    fn periodic_sorts_before_other_variants() {
        // The grid's stable total order relies on legacy (periodic)
        // jobs keeping their relative positions.
        let mut v = [
            Scenario::Trace { id: "a".into() },
            Scenario::Stochastic {
                mean_tbpf: 1,
                jitter: 0,
                seed: 0,
            },
            Scenario::periodic(u64::MAX),
        ];
        v.sort();
        assert_eq!(v[0], Scenario::periodic(u64::MAX));
    }

    #[test]
    fn min_window_is_the_placement_floor() {
        assert_eq!(Scenario::periodic(10_000).min_window_cycles(), Ok(10_000));
        let s = Scenario::Stochastic {
            mean_tbpf: 10_000,
            jitter: 2_000,
            seed: 1,
        };
        assert_eq!(s.min_window_cycles(), Ok(8_000));
        let missing = Scenario::Trace {
            id: "no-such-trace".into(),
        };
        assert!(missing.min_window_cycles().is_err());
    }
}
