//! Hand-rolled minimal JSON, for the grid artifact format.
//!
//! The workspace builds offline with no external dependencies, so the
//! cell artifacts of [`crate::grid`] carry their own (de)serializer.
//! The dialect is deliberately narrow — exactly what integer-exact
//! round-tripping of experiment cells needs:
//!
//! * numbers are **unsigned integers** only (`u64`): every measured
//!   quantity in the repo is integer picojoules / cycles / counts, so
//!   floats (and their cross-platform formatting hazards) never enter
//!   the artifact;
//! * objects preserve insertion order (encoded as a `Vec` of pairs), so
//!   encoding is deterministic;
//! * strings escape `"`, `\`, the common control shorthands and other
//!   control characters as `\u00XX`; non-ASCII text (`†`, multi-byte
//!   benchmarks-to-come) is emitted raw as UTF-8, which JSON permits.
//!
//! The parser accepts standard JSON spellings for everything it can
//! represent (including `\uXXXX` escapes with surrogate pairs) and
//! rejects the rest — floats, negative numbers — with a positioned
//! error, rather than silently rounding.

use std::fmt;

/// A JSON value in the artifact dialect (no floats, no negatives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order so encoding is
    /// deterministic.
    Obj(Vec<(String, Json)>),
}

/// A parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes to compact JSON (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => {
                out.push_str(&n.to_string());
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value; trailing content (other than whitespace)
    /// is an error.
    ///
    /// # Errors
    ///
    /// Malformed input, floats and negative numbers all return a
    /// positioned [`JsonError`].
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.err("negative numbers are not part of the artifact dialect")),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the artifact dialect"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| self.err("integer does not fit in u64"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat("{")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape consumed everything
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one multi-byte UTF-8 scalar. Validate at most
                    // the next 4 bytes — validating the whole remaining
                    // input here made string parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next().expect("non-empty"),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .expect("non-empty")
                        }
                        Err(_) => {
                            return Err(JsonError {
                                message: "invalid UTF-8".into(),
                                at: self.pos,
                            })
                        }
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the `\u` is already
    /// consumed), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            self.eat("\\u")
                .map_err(|_| self.err("high surrogate not followed by low surrogate"))?;
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("lone surrogate"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.encode();
        assert_eq!(&Json::parse(&text).unwrap(), v, "{text}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::UInt(0));
        roundtrip(&Json::UInt(u64::MAX));
    }

    #[test]
    fn tricky_strings_roundtrip() {
        for s in [
            "",
            "plain",
            "quote\"backslash\\slash/",
            "newline\nreturn\rtab\t",
            "dagger † and emoji 🦀",
            "control\u{1}\u{1f}chars",
            "mixed †\n\"x\"\\",
        ] {
            roundtrip(&Json::Str(s.to_string()));
        }
    }

    #[test]
    fn nested_roundtrip() {
        roundtrip(&Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::UInt(1), Json::Null])),
            (
                "b †".into(),
                Json::Obj(vec![("c".into(), Json::Bool(true))]),
            ),
            ("empty".into(), Json::Arr(Vec::new())),
        ]));
    }

    #[test]
    fn parses_standard_spellings() {
        assert_eq!(
            Json::parse("  { \"a\" : [ 1 , \"\\u0041\\u00e9\" ] }  ").unwrap(),
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![Json::UInt(1), Json::Str("Aé".into())])
            )])
        );
        // Surrogate pair: U+1D11E (musical G clef).
        assert_eq!(
            Json::parse("\"\\ud834\\udd1e\"").unwrap(),
            Json::Str("\u{1D11E}".into())
        );
    }

    #[test]
    fn rejects_out_of_dialect() {
        assert!(Json::parse("-1").is_err());
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("18446744073709551616").is_err()); // u64::MAX + 1
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("\"\\ud834\"").is_err()); // lone high surrogate
    }

    #[test]
    fn control_chars_escape_as_u00xx() {
        assert_eq!(Json::Str("\u{1}".into()).encode(), "\"\\u0001\"");
        assert_eq!(
            Json::parse("\"\\u0001\"").unwrap(),
            Json::Str("\u{1}".into())
        );
    }
}
