//! Extension: ablations of SCHEMATIC's design choices (not a paper
//! figure; DESIGN.md §6).
//!
//! * **liveness** — Eq. 2's liveness-aware save/restore filtering on/off;
//! * **ratio** — gain/size candidate ordering vs naive gain ordering;
//! * **conditional back-edge checkpointing** is exercised implicitly by
//!   every kernel (Algorithm 1); its effect shows in the save column.
//!
//! Thin wrapper: computes this report's slice of the experiment grid
//! into a cell store (`schematic_bench::grid`), then renders it.

fn main() {
    print!("{}", schematic_bench::experiments::ablations_report());
}
