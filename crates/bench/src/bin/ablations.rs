//! Extension: ablations of SCHEMATIC's design choices (not a paper
//! figure; DESIGN.md §6).
//!
//! * **liveness** — Eq. 2's liveness-aware save/restore filtering on/off;
//! * **ratio** — gain/size candidate ordering vs naive gain ordering;
//! * **conditional back-edge checkpointing** is exercised implicitly by
//!   every kernel (Algorithm 1); its effect shows in the save column.

use schematic_bench::{eb_for_tbpf, render_table, uj, ENERGY_TBPF, SEED, SVM_BYTES};
use schematic_core::{compile, SchematicConfig};
use schematic_emu::{Machine, PowerModel, RunConfig};
use schematic_energy::CostTable;

fn main() {
    println!("Ablations of SCHEMATIC design choices (TBPF = {ENERGY_TBPF}, uJ)\n");
    let table = CostTable::msp430fr5969();
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let variants: [(&str, bool, bool); 3] = [
        ("full", true, true),
        ("no-liveness", false, true),
        ("no-ratio", true, false),
    ];
    let headers: Vec<String> = [
        "benchmark",
        "variant",
        "computation",
        "save",
        "restore",
        "total",
        "peak VM",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    for b in schematic_benchsuite::all() {
        let m = (b.build)(SEED);
        for (label, liveness, ratio) in variants {
            let mut config = SchematicConfig::new(eb);
            config.svm_bytes = SVM_BYTES;
            config.liveness_opt = liveness;
            config.ratio_ordering = ratio;
            let compiled = match compile(&m, &table, &config) {
                Ok(c) => c,
                Err(e) => {
                    rows.push(vec![
                        b.name.to_string(),
                        label.to_string(),
                        format!("error: {e}"),
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                    ]);
                    continue;
                }
            };
            let cfg = RunConfig {
                power: PowerModel::Periodic { tbpf: ENERGY_TBPF },
                ..RunConfig::default()
            };
            let out = Machine::new(&compiled.instrumented, &table, cfg)
                .run()
                .expect("no traps");
            assert!(out.completed(), "{} {label}", b.name);
            assert_eq!(out.result, Some((b.oracle)(SEED)), "{} {label}", b.name);
            let mt = &out.metrics;
            rows.push(vec![
                b.name.to_string(),
                label.to_string(),
                uj(mt.computation),
                uj(mt.save),
                uj(mt.restore),
                uj(mt.total_energy()),
                format!("{} B", mt.peak_vm_bytes),
            ]);
        }
    }
    println!("{}", render_table(&headers, &rows));
    println!(
        "expected shapes: no-liveness saves/restores more bytes per\n\
         checkpoint (higher save+restore); no-ratio wastes VM capacity on\n\
         fewer, larger variables when space is contested."
    );

    // §VII future work, implemented: a retentive sleep mode (SRAM kept
    // alive during the standby) removes the wake-up restores entirely.
    println!("\nRetentive-sleep extension (paper §VII future work), total uJ:");
    for b in schematic_benchsuite::all() {
        let m = (b.build)(SEED);
        let mut config = SchematicConfig::new(eb);
        config.svm_bytes = SVM_BYTES;
        let compiled = compile(&m, &table, &config).expect("compiles");
        let mut total = [0.0f64; 2];
        for (i, retentive) in [false, true].into_iter().enumerate() {
            let cfg = RunConfig {
                power: PowerModel::Periodic { tbpf: ENERGY_TBPF },
                retentive_sleep: retentive,
                ..RunConfig::default()
            };
            let out = Machine::new(&compiled.instrumented, &table, cfg)
                .run()
                .expect("no traps");
            assert!(out.completed());
            assert_eq!(out.result, Some((b.oracle)(SEED)));
            total[i] = out.metrics.total_energy().as_uj();
        }
        println!(
            "  {:>10}: deep-sleep {:>10.3}  retentive {:>10.3}  ({:.0} % saved)",
            b.name,
            total[0],
            total[1],
            100.0 * (1.0 - total[1] / total[0])
        );
    }
}
