//! Figure 7 — quality of SCHEMATIC's memory allocation (§IV-E):
//! SCHEMATIC vs the All-NVM ablation (same placement machinery, zero VM),
//! computation energy split into CPU (no memory accesses), VM accesses
//! and NVM accesses, plus the save/restore overheads.

use schematic_bench::{eb_for_tbpf, render_table, uj, ENERGY_TBPF, SEED, SVM_BYTES};
use schematic_core::{compile, SchematicConfig};
use schematic_emu::{Machine, PowerModel, RunConfig};
use schematic_energy::CostTable;

fn main() {
    println!(
        "Figure 7: Schematic vs All-NVM computation split at TBPF = {ENERGY_TBPF} (uJ)\n"
    );
    let table = CostTable::msp430fr5969();
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let headers: Vec<String> = [
        "benchmark",
        "variant",
        "no-mem CPU",
        "VM acc",
        "NVM acc",
        "save",
        "restore",
        "total",
        "VM acc share",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    let mut hybrid_sum = 0.0;
    let mut nvm_sum = 0.0;
    let mut vm_fracs = Vec::new();
    for b in schematic_benchsuite::all() {
        let m = (b.build)(SEED);
        for (label, all_nvm) in [("Schematic", false), ("All-NVM", true)] {
            let mut config = SchematicConfig::new(eb);
            config.svm_bytes = if all_nvm { 0 } else { SVM_BYTES };
            let compiled = compile(&m, &table, &config).expect("compiles");
            let cfg = RunConfig {
                power: PowerModel::Periodic { tbpf: ENERGY_TBPF },
                ..RunConfig::default()
            };
            let out = Machine::new(&compiled.instrumented, &table, cfg)
                .run()
                .expect("no traps");
            assert!(out.completed(), "{} {label}", b.name);
            assert_eq!(out.result, Some((b.oracle)(SEED)));
            let mt = &out.metrics;
            let exec_total = mt.computation + mt.save + mt.restore;
            if all_nvm {
                nvm_sum += mt.computation.as_uj();
            } else {
                hybrid_sum += mt.computation.as_uj();
                vm_fracs.push(mt.vm_access_fraction());
            }
            rows.push(vec![
                b.name.to_string(),
                label.to_string(),
                uj(mt.cpu_energy),
                uj(mt.vm_access_energy),
                uj(mt.nvm_access_energy),
                uj(mt.save),
                uj(mt.restore),
                uj(exec_total),
                format!("{:.0} %", 100.0 * mt.vm_access_fraction()),
            ]);
        }
    }
    println!("{}", render_table(&headers, &rows));
    let reduction = 100.0 * (1.0 - hybrid_sum / nvm_sum);
    let avg_vm = 100.0 * vm_fracs.iter().sum::<f64>() / vm_fracs.len() as f64;
    println!(
        "\ncomputation-energy reduction vs All-NVM: {reduction:.1} % (paper: 25 %)\n\
         average share of accesses hitting VM:    {avg_vm:.0} % (paper: 69 %)"
    );
}
