//! Figure 7 — quality of SCHEMATIC's memory allocation (§IV-E):
//! SCHEMATIC vs the All-NVM ablation (same placement machinery, zero VM),
//! computation energy split into CPU (no memory accesses), VM accesses
//! and NVM accesses, plus the save/restore overheads.

fn main() {
    print!("{}", schematic_bench::experiments::fig7_report());
}
