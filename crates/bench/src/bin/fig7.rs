//! Figure 7 — quality of SCHEMATIC's memory allocation (§IV-E):
//! SCHEMATIC vs the All-NVM ablation (same placement machinery, zero VM),
//! computation energy split into CPU (no memory accesses), VM accesses
//! and NVM accesses, plus the save/restore overheads.
//!
//! Thin wrapper: computes this report's slice of the experiment grid
//! into a cell store (`schematic_bench::grid`), then renders it.

fn main() {
    print!("{}", schematic_bench::experiments::fig7_report());
}
