//! Runs every experiment in sequence (Tables I–III, Figures 6–8,
//! ablations). Convenient for regenerating all numbers in
//! `EXPERIMENTS.md` in one go:
//!
//! ```text
//! cargo run --release -p schematic-bench --bin exp_all
//! ```
//!
//! The reports are generated in-process (no per-binary `cargo run`
//! spawns), and the independent experiment cells inside each report fan
//! out over worker threads — set `SCHEMATIC_JOBS` to pin the count.

fn main() {
    print!("{}", schematic_bench::experiments::exp_all_report());
}
