//! Runs every experiment in sequence (Tables I–III, Figures 6–8,
//! ablations). Convenient for regenerating all numbers in
//! `EXPERIMENTS.md` in one go:
//!
//! ```text
//! cargo run --release -p schematic-bench --bin exp_all
//! ```
//!
//! The full experiment grid is computed **once** into a shared cell
//! store (`schematic_bench::grid`) — cells shared between reports
//! (Table III's runs feed Figures 6 and 8; Table I/II share the bare
//! profiles) are not recomputed — and every report is then rendered
//! from that store. Independent cells fan out over worker threads; set
//! `SCHEMATIC_JOBS` to pin the count. For multi-process or multi-host
//! sharding of the same grid, see the `gridrun` binary.

fn main() {
    print!("{}", schematic_bench::experiments::exp_all_report());
}
