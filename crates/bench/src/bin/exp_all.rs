//! Runs every experiment binary's logic in sequence (Tables I–III,
//! Figures 6–8, ablations). Convenient for regenerating all numbers in
//! `EXPERIMENTS.md` in one go:
//!
//! ```text
//! cargo run --release -p schematic-bench --bin exp_all
//! ```

use std::process::Command;

fn main() {
    // Run through cargo so every sibling binary is rebuilt from the
    // current sources (running target/ binaries directly can execute
    // stale builds).
    for bin in ["table1", "table2", "table3", "fig6", "fig7", "fig8", "ablations"] {
        println!("\n================ {bin} ================\n");
        let status = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--release", "-p", "schematic-bench", "--bin", bin])
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
