//! Performance smoke test: measures the hot paths this repo optimizes
//! and records before/after numbers in `BENCH_perf.json` at the repo
//! root.
//!
//! The emulator/analysis "before" constants were measured on the tree
//! just before the predecoded superblock engine landed (the state after
//! the PR-1 hot-path overhaul: per-opcode cost cache, memoized plan
//! lookups, cached block pointer); the `exp_all` "before" is the
//! execution-tier-ladder HEAD just before the non-resident
//! block-dispatch fast path landed. "after" is measured live by
//! this binary. Criterion was dropped with the offline build, so this
//! is the lightweight replacement:
//!
//! ```text
//! cargo run --release -p schematic-bench --bin perfsmoke
//! ```
//!
//! Flags and environment:
//!
//! - `--quick`: short measurement windows and a single analysis
//!   iteration, and the results are *not* written to `BENCH_perf.json`
//!   (used by `scripts/ci.sh` to surface throughput in CI logs without
//!   committing jittery numbers).
//! - `--emu-only`: measure just the crc/fft emulator throughput (no
//!   tier ladder, analysis or experiment sections) and print one line
//!   per benchmark; never writes `BENCH_perf.json`. For iterating on
//!   the emulator hot path.
//! - `SCHEMATIC_PERF_WINDOW_S` / `SCHEMATIC_PERF_REPS`: override the
//!   measurement window length (seconds) and window count — longer
//!   windows ride out scheduler noise on shared hosts.
//! - `SCHEMATIC_PERF_ASSERT=1`: assert the crc/fft emulator speedups
//!   reach the 2.0× floor over the recorded baselines (off by default —
//!   absolute throughput is host-specific).

use schematic_bench::experiments::ROBUST_JITTER;
use schematic_bench::grid::{GridMode, GridSpec};
use schematic_bench::{eb_for_tbpf, ENERGY_TBPF, SEED, SVM_BYTES};
use schematic_core::SchematicConfig;
use schematic_emu::{DecodedModule, ExecTier, InstrumentedModule, Machine, PowerModel, RunConfig};
use schematic_energy::CostTable;
use schematic_obs::Histogram;
use std::time::Instant;

/// Pre-superblock measurements (same host, release build).
const BEFORE_CRC_IPS: f64 = 94_972_875.0;
const BEFORE_FFT_IPS: f64 = 98_476_670.0;
const BEFORE_ANALYSIS_S: f64 = 0.033;
/// `exp_all` wall time on the execution-tier-ladder HEAD, just before
/// the non-resident block-dispatch fast path landed (re-baselined from
/// the pre-cell-store 0.913 s: the tier ladder's general trace
/// machinery had regressed profiling runs — `step_trace`'s per-head
/// setup and tally commit on every single-block dispatch — which the
/// lean `step_block_unit` path now bypasses).
const BEFORE_EXP_ALL_S: f64 = 1.170;

/// Required emulator speedup when `SCHEMATIC_PERF_ASSERT=1`.
/// Conservative: the direct-threaded/AOT engine measures well above
/// this on a quiet host, but CI shares cores, so the floor only
/// catches wholesale regressions (losing a tier), not jitter.
const SPEEDUP_FLOOR: f64 = 2.0;

/// Required warm-over-cold speedup for the full-grid cell cache when
/// `SCHEMATIC_PERF_ASSERT=1`. A warm run answers every cell from the
/// cache — compile, profile and emulation all skipped — so anything
/// under this floor means the cache is recomputing cells it should
/// have hit.
const GRID_WARM_FLOOR: f64 = 5.0;

/// Ceiling on the `exp_all` slowdown with telemetry collection enabled
/// when `SCHEMATIC_PERF_ASSERT=1`. Span guards are one relaxed atomic
/// load when off and a clock read plus map update when on; the worker
/// telemetry design (`gridrun --jobs` → `gridd` stats) only holds if
/// switching collection on stays in the noise.
const TELEMETRY_OVERHEAD_CEILING: f64 = 0.05;

/// A repeated throughput measurement: the best window plus the p50/p95
/// of the per-window samples (log-linear histogram, ~4% bucket error).
struct Sample {
    best: f64,
    p50: u64,
    p95: u64,
}

/// Runs `measure` for `reps` windows and summarizes the distribution.
fn sample(reps: usize, measure: impl Fn() -> f64) -> Sample {
    let mut hist = Histogram::new();
    let mut best = 0.0f64;
    for _ in 0..reps {
        let v = measure();
        hist.record(v as u64);
        if v > best {
            best = v;
        }
    }
    Sample {
        best,
        p50: hist.quantile(50, 100),
        p95: hist.quantile(95, 100),
    }
}

fn bare_vm_config() -> RunConfig {
    RunConfig {
        svm_bytes: usize::MAX / 2,
        ..RunConfig::default()
    }
}

/// Emulated instructions per second for one benchmark under continuous
/// power, all data in VM (pure stepping, no checkpoint machinery), at
/// the given execution tier. The program is predecoded once and shared
/// across runs, as the experiment drivers do for repeated cells.
fn emulator_ips_tier(name: &str, table: &CostTable, window_s: f64, tier: ExecTier) -> f64 {
    let b = schematic_benchsuite::by_name(name).expect("benchmark exists");
    let im = InstrumentedModule::bare_all_vm((b.build)(SEED));
    let decoded = DecodedModule::new(&im, table);
    let cfg = RunConfig {
        tier,
        ..bare_vm_config()
    };
    let _ = Machine::with_decoded(&decoded, cfg.clone())
        .run()
        .expect("warmup");
    let mut insts = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < window_s {
        let out = Machine::with_decoded(&decoded, cfg.clone())
            .run()
            .expect("no traps");
        insts += out.metrics.insts_retired;
    }
    insts as f64 / start.elapsed().as_secs_f64()
}

/// The default-tier measurement (the "after" number).
fn emulator_ips(name: &str, table: &CostTable, window_s: f64) -> f64 {
    emulator_ips_tier(name, table, window_s, RunConfig::default().tier)
}

/// One measurement window per rung of the tier ladder, for the
/// `tier_insts_per_sec` breakdown.
fn tier_breakdown(name: &str, table: &CostTable, window_s: f64) -> [f64; 4] {
    [
        ExecTier::Interp,
        ExecTier::Fused,
        ExecTier::Trace,
        ExecTier::Aot,
    ]
    .map(|tier| emulator_ips_tier(name, table, window_s, tier))
}

/// Same measurement through [`Machine::new`], which predecodes on every
/// run — isolates the per-run lowering overhead from the stepping win.
fn emulator_ips_cold_decode(name: &str, table: &CostTable, window_s: f64) -> f64 {
    let b = schematic_benchsuite::by_name(name).expect("benchmark exists");
    let im = InstrumentedModule::bare_all_vm((b.build)(SEED));
    let cfg = bare_vm_config();
    let _ = Machine::new(&im, table, cfg.clone()).run().expect("warmup");
    let mut insts = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < window_s {
        let out = Machine::new(&im, table, cfg.clone())
            .run()
            .expect("no traps");
        insts += out.metrics.insts_retired;
    }
    insts as f64 / start.elapsed().as_secs_f64()
}

/// Emulated instructions per second for a Schematic-compiled benchmark
/// under the robustness report's stochastic supply — this is the
/// robust-grid hot path, where the window redraw (one SplitMix64 mix
/// per power failure) and the checkpoint/restore machinery ride the
/// emulator loop.
fn emulator_ips_stochastic(name: &str, table: &CostTable, window_s: f64) -> f64 {
    let b = schematic_benchsuite::by_name(name).expect("benchmark exists");
    let power = PowerModel::Stochastic {
        mean_tbpf: ENERGY_TBPF,
        jitter: ROBUST_JITTER,
        seed: 1,
    };
    let eb = eb_for_tbpf(table, power.min_window_cycles());
    let im = schematic_bench::compile_technique("Schematic", &(b.build)(SEED), table, eb)
        .expect("compiles");
    let decoded = DecodedModule::new(&im, table);
    let cfg = schematic_bench::intermittent_run_config_model(power);
    let _ = Machine::with_decoded(&decoded, cfg.clone())
        .run()
        .expect("warmup");
    let mut insts = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < window_s {
        let out = Machine::with_decoded(&decoded, cfg.clone())
            .run()
            .expect("no traps");
        insts += out.metrics.insts_retired;
    }
    insts as f64 / start.elapsed().as_secs_f64()
}

/// One SCHEMATIC compile (profile + RCG analysis + allocation +
/// instrumentation + verification) of all eight benchmarks.
fn analysis_seconds(table: &CostTable) -> f64 {
    let eb = eb_for_tbpf(table, ENERGY_TBPF);
    let start = Instant::now();
    for b in schematic_benchsuite::all() {
        let m = (b.build)(SEED);
        let mut config = SchematicConfig::new(eb);
        config.svm_bytes = SVM_BYTES;
        let compiled = schematic_core::compile(&m, table, &config).expect("compiles");
        std::hint::black_box(&compiled);
    }
    start.elapsed().as_secs_f64()
}

/// Cold-vs-warm wall time for the full experiment grid through the
/// content-addressed cell cache: the cold pass computes every cell into
/// a fresh cache file, the warm pass reopens that file and must answer
/// every cell from it (asserted — a single recomputed cell fails the
/// smoke). Uses a process-scoped temp file, removed afterwards.
fn grid_cache_wall() -> (f64, f64) {
    use schematic_bench::cache::{compute_cached, CellCache};
    let jobs = GridSpec::full_grid(GridMode::Full).jobs().to_vec();
    let path = std::env::temp_dir().join(format!("perfsmoke-cache-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let progress = |_: usize, _: usize| {};

    let mut cache = CellCache::open(&path);
    let start = Instant::now();
    let (_, stats) = compute_cached(&jobs, Some(&mut cache), false, &progress).expect("cold grid");
    let cold = start.elapsed().as_secs_f64();
    assert_eq!(
        stats.computed,
        jobs.len(),
        "fresh cache computes every cell"
    );
    drop(cache);

    let mut cache = CellCache::open(&path);
    let start = Instant::now();
    let (_, stats) = compute_cached(&jobs, Some(&mut cache), false, &progress).expect("warm grid");
    let warm = start.elapsed().as_secs_f64();
    assert_eq!(stats.computed, 0, "warm cache answers every cell");
    drop(cache);
    let _ = std::fs::remove_file(&path);
    (cold, warm)
}

/// Wall time of one full `exp_all_report` with telemetry collection
/// forced on or off. The report contents are identical either way (see
/// the `service_telemetry` integration test); this measures only the
/// instrumentation cost.
fn exp_all_wall(telemetry: bool) -> f64 {
    schematic_obs::set_enabled(telemetry);
    let start = Instant::now();
    let report = schematic_bench::experiments::exp_all_report();
    let wall = start.elapsed().as_secs_f64();
    schematic_obs::set_enabled(false);
    std::hint::black_box(report.len());
    wall
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let emu_only = std::env::args().any(|a| a == "--emu-only");
    let env_f64 = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<f64>().ok());
    let env_usize = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
    let window_s = env_f64("SCHEMATIC_PERF_WINDOW_S").unwrap_or(if quick { 0.25 } else { 0.5 });
    let reps = env_usize("SCHEMATIC_PERF_REPS").unwrap_or(if quick { 3 } else { 8 });
    let analysis_iters = if quick { 1 } else { 5 };
    let table = CostTable::msp430fr5969();

    if emu_only {
        for name in ["crc", "fft"] {
            let s = sample(reps, || emulator_ips(name, &table, window_s));
            println!("{name}: best {:.0} p50 {} p95 {}", s.best, s.p50, s.p95);
        }
        return;
    }

    let crc = sample(reps, || emulator_ips("crc", &table, window_s));
    let fft = sample(reps, || emulator_ips("fft", &table, window_s));
    let crc_cold_ips = emulator_ips_cold_decode("crc", &table, window_s);
    let fft_cold_ips = emulator_ips_cold_decode("fft", &table, window_s);
    let (crc_ips, fft_ips) = (crc.best, fft.best);
    let [crc_interp, crc_fused, crc_trace, crc_aot] = tier_breakdown("crc", &table, window_s);
    let [fft_interp, fft_fused, fft_trace, fft_aot] = tier_breakdown("fft", &table, window_s);
    let crc_stoch = sample(reps, || emulator_ips_stochastic("crc", &table, window_s));
    let fft_stoch = sample(reps, || emulator_ips_stochastic("fft", &table, window_s));

    // Best of N: compile times are short enough to jitter.
    let analysis_s = (0..analysis_iters)
        .map(|_| analysis_seconds(&table))
        .fold(f64::INFINITY, f64::min);

    let start = Instant::now();
    let report = schematic_bench::experiments::exp_all_report();
    let exp_all_s = start.elapsed().as_secs_f64();
    assert!(report.contains("Table I"), "exp_all produced a real report");

    let (grid_cold_s, grid_warm_s) = grid_cache_wall();

    // Telemetry overhead: best-of-N `exp_all` walls with collection off
    // vs on, interleaved so host drift hits both sides equally.
    let telemetry_reps = if quick { 2 } else { 3 };
    let (mut exp_off_s, mut exp_on_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..telemetry_reps {
        exp_off_s = exp_off_s.min(exp_all_wall(false));
        exp_on_s = exp_on_s.min(exp_all_wall(true));
    }
    let telemetry_overhead = exp_on_s / exp_off_s - 1.0;

    // Cell-store dedup: cells the reports would compute if each report
    // evaluated its own grid slice, vs the unique cells the shared
    // store actually computes.
    let per_report = GridSpec::naive_job_count(GridMode::Full);
    let unique = GridSpec::full_grid(GridMode::Full).len();

    let json = format!(
        r#"{{
  "description": "SCHEMATIC repro hot-path performance (release build, same host). Emulator/analysis 'before' is pre-superblock; exp_all 'before' is the tier-ladder HEAD just before the non-resident block-dispatch fast path landed. 'after' is the best of repeated measurement windows sharing one predecoded program; p50/p95 summarize the per-window distribution; 'cold_decode' re-lowers per run via Machine::new. grid_cache is the full experiment grid evaluated through a fresh (cold) then pre-populated (warm) content-addressed cell cache. stochastic_supply is a Schematic-compiled benchmark emulated under the robustness report's seeded stochastic supply (mean=ENERGY_TBPF, jitter=ROBUST_JITTER) — the robust-grid hot path, including the per-failure window redraw. Regenerate with `cargo run --release -p schematic-bench --bin perfsmoke`.",
  "emulator_insts_per_sec": {{
    "crc": {{"before": {BEFORE_CRC_IPS:.0}, "after": {crc_ips:.0}, "p50": {}, "p95": {}, "cold_decode": {crc_cold_ips:.0}, "speedup": {:.2}}},
    "fft": {{"before": {BEFORE_FFT_IPS:.0}, "after": {fft_ips:.0}, "p50": {}, "p95": {}, "cold_decode": {fft_cold_ips:.0}, "speedup": {:.2}}}
  }},
  "tier_insts_per_sec": {{
    "crc": {{"interp": {crc_interp:.0}, "fused": {crc_fused:.0}, "trace": {crc_trace:.0}, "aot": {crc_aot:.0}}},
    "fft": {{"interp": {fft_interp:.0}, "fused": {fft_fused:.0}, "trace": {fft_trace:.0}, "aot": {fft_aot:.0}}}
  }},
  "stochastic_supply_insts_per_sec": {{
    "crc": {{"best": {:.0}, "p50": {}, "p95": {}}},
    "fft": {{"best": {:.0}, "p50": {}, "p95": {}}}
  }},
  "analysis_seconds_8_benchmarks": {{"before": {BEFORE_ANALYSIS_S}, "after": {analysis_s:.3}, "speedup": {:.1}}},
  "exp_all_wall_seconds": {{"before": {BEFORE_EXP_ALL_S}, "after": {exp_all_s:.3}, "speedup": {:.1}}},
  "telemetry_exp_all_wall_seconds": {{"off": {exp_off_s:.3}, "on": {exp_on_s:.3}, "overhead_pct": {:.1}}},
  "grid_cache_wall_seconds": {{"cold": {grid_cold_s:.3}, "warm": {grid_warm_s:.3}, "speedup": {:.0}}},
  "grid_cells_full_mode": {{"per_report_total": {per_report}, "unique_in_store": {unique}, "dedup_saved": {}}}
}}
"#,
        crc.p50,
        crc.p95,
        crc_ips / BEFORE_CRC_IPS,
        fft.p50,
        fft.p95,
        fft_ips / BEFORE_FFT_IPS,
        crc_stoch.best,
        crc_stoch.p50,
        crc_stoch.p95,
        fft_stoch.best,
        fft_stoch.p50,
        fft_stoch.p95,
        BEFORE_ANALYSIS_S / analysis_s,
        BEFORE_EXP_ALL_S / exp_all_s,
        telemetry_overhead * 100.0,
        grid_cold_s / grid_warm_s,
        per_report - unique,
    );

    if quick {
        print!("{json}");
        eprintln!("--quick: not writing BENCH_perf.json");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
        std::fs::write(path, &json).expect("write BENCH_perf.json");
        print!("{json}");
        eprintln!("wrote {path}");
    }

    if std::env::var("SCHEMATIC_PERF_ASSERT").as_deref() == Ok("1") {
        let crc_speedup = crc_ips / BEFORE_CRC_IPS;
        let fft_speedup = fft_ips / BEFORE_FFT_IPS;
        assert!(
            crc_speedup >= SPEEDUP_FLOOR,
            "crc emulator speedup {crc_speedup:.2} below the {SPEEDUP_FLOOR}x floor"
        );
        assert!(
            fft_speedup >= SPEEDUP_FLOOR,
            "fft emulator speedup {fft_speedup:.2} below the {SPEEDUP_FLOOR}x floor"
        );
        let grid_speedup = grid_cold_s / grid_warm_s;
        assert!(
            grid_speedup >= GRID_WARM_FLOOR,
            "warm grid-cache speedup {grid_speedup:.1} below the {GRID_WARM_FLOOR}x floor"
        );
        assert!(
            telemetry_overhead < TELEMETRY_OVERHEAD_CEILING,
            "telemetry-on exp_all overhead {:.1}% at or above the {:.0}% ceiling \
             (off {exp_off_s:.3}s, on {exp_on_s:.3}s)",
            telemetry_overhead * 100.0,
            TELEMETRY_OVERHEAD_CEILING * 100.0
        );
        eprintln!(
            "perf floor passed: crc {crc_speedup:.2}x, fft {fft_speedup:.2}x, \
             warm grid cache {grid_speedup:.0}x, telemetry overhead {:.1}%",
            telemetry_overhead * 100.0
        );
    }
}
