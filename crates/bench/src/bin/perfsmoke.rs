//! Performance smoke test: measures the hot paths this repo optimizes
//! and records before/after numbers in `BENCH_perf.json` at the repo
//! root.
//!
//! The "before" constants were measured on the pre-optimization tree
//! (per-step instruction clones in the emulator, 16 redundant profiling
//! runs per compile, one `cargo run` subprocess per experiment binary);
//! "after" is measured live by this binary. Criterion was dropped with
//! the offline build, so this is the lightweight replacement:
//!
//! ```text
//! cargo run --release -p schematic-bench --bin perfsmoke
//! ```

use schematic_bench::{eb_for_tbpf, ENERGY_TBPF, SEED, SVM_BYTES};
use schematic_core::SchematicConfig;
use schematic_emu::{InstrumentedModule, Machine, RunConfig};
use schematic_energy::CostTable;
use std::time::Instant;

/// Pre-optimization measurements (same host, release build).
const BEFORE_CRC_IPS: f64 = 41_273_455.0;
const BEFORE_FFT_IPS: f64 = 44_176_564.0;
const BEFORE_ANALYSIS_S: f64 = 0.969;
const BEFORE_EXP_ALL_S: f64 = 10.836;

/// Emulated instructions per second for one benchmark under continuous
/// power, all data in VM (pure stepping, no checkpoint machinery).
fn emulator_ips(name: &str, table: &CostTable) -> f64 {
    let b = schematic_benchsuite::by_name(name).expect("benchmark exists");
    let im = InstrumentedModule::bare_all_vm((b.build)(SEED));
    let cfg = RunConfig {
        svm_bytes: usize::MAX / 2,
        ..RunConfig::default()
    };
    let _ = Machine::new(&im, table, cfg.clone()).run().expect("warmup");
    let mut insts = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < 1.0 {
        let out = Machine::new(&im, table, cfg.clone())
            .run()
            .expect("no traps");
        insts += out.metrics.insts_retired;
    }
    insts as f64 / start.elapsed().as_secs_f64()
}

/// One SCHEMATIC compile (profile + RCG analysis + allocation +
/// instrumentation + verification) of all eight benchmarks.
fn analysis_seconds(table: &CostTable) -> f64 {
    let eb = eb_for_tbpf(table, ENERGY_TBPF);
    let start = Instant::now();
    for b in schematic_benchsuite::all() {
        let m = (b.build)(SEED);
        let mut config = SchematicConfig::new(eb);
        config.svm_bytes = SVM_BYTES;
        let compiled = schematic_core::compile(&m, table, &config).expect("compiles");
        std::hint::black_box(&compiled);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let table = CostTable::msp430fr5969();

    let crc_ips = emulator_ips("crc", &table);
    let fft_ips = emulator_ips("fft", &table);

    // Best of three: compile times are short enough to jitter.
    let analysis_s = (0..3)
        .map(|_| analysis_seconds(&table))
        .fold(f64::INFINITY, f64::min);

    let start = Instant::now();
    let report = schematic_bench::experiments::exp_all_report();
    let exp_all_s = start.elapsed().as_secs_f64();
    assert!(report.contains("Table I"), "exp_all produced a real report");

    let json = format!(
        r#"{{
  "description": "SCHEMATIC repro hot-path performance: pre- vs post-optimization (release build, same host). Regenerate with `cargo run --release -p schematic-bench --bin perfsmoke`.",
  "emulator_insts_per_sec": {{
    "crc": {{"before": {BEFORE_CRC_IPS:.0}, "after": {crc_ips:.0}, "speedup": {:.2}}},
    "fft": {{"before": {BEFORE_FFT_IPS:.0}, "after": {fft_ips:.0}, "speedup": {:.2}}}
  }},
  "analysis_seconds_8_benchmarks": {{"before": {BEFORE_ANALYSIS_S}, "after": {analysis_s:.3}, "speedup": {:.1}}},
  "exp_all_wall_seconds": {{"before": {BEFORE_EXP_ALL_S}, "after": {exp_all_s:.3}, "speedup": {:.1}}}
}}
"#,
        crc_ips / BEFORE_CRC_IPS,
        fft_ips / BEFORE_FFT_IPS,
        BEFORE_ANALYSIS_S / analysis_s,
        BEFORE_EXP_ALL_S / exp_all_s,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    std::fs::write(path, &json).expect("write BENCH_perf.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
