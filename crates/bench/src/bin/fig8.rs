//! Figure 8 — impact of the capacitor size on `crc` (§IV-F).
//!
//! Like the paper, the capacitor size is varied through the resulting
//! TBPF ∈ {1k, 10k, 100k}: a small capacitor means a small time between
//! power failures. The intermittency-management overhead (save +
//! restore + re-execution) should shrink as the budget grows — fastest
//! for the techniques that adapt their placement (SCHEMATIC, ROCKCLIMB).
//!
//! Thin wrapper: computes this report's slice of the experiment grid
//! into a cell store (`schematic_bench::grid`), then renders it.

fn main() {
    print!("{}", schematic_bench::experiments::fig8_report());
}
