//! Figure 8 — impact of the capacitor size on `crc` (§IV-F).
//!
//! Like the paper, the capacitor size is varied through the resulting
//! TBPF ∈ {1k, 10k, 100k}: a small capacitor means a small time between
//! power failures. The intermittency-management overhead (save +
//! restore + re-execution) should shrink as the budget grows — fastest
//! for the techniques that adapt their placement (SCHEMATIC, ROCKCLIMB).

use schematic_bench::{render_table, run_cell, technique_names, uj, TBPFS};
use schematic_energy::CostTable;

fn main() {
    println!("Figure 8: impact of capacitor size, benchmark crc (uJ)\n");
    let table = CostTable::msp430fr5969();
    let bench = schematic_benchsuite::by_name("crc").expect("crc exists");
    let headers: Vec<String> = [
        "technique",
        "TBPF",
        "computation",
        "save",
        "restore",
        "re-execution",
        "total",
        "status",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    for tech in technique_names() {
        for &tbpf in &TBPFS {
            let cell = run_cell(tech, &bench, &table, tbpf);
            let row = match &cell.outcome {
                None => vec![
                    tech.to_string(),
                    tbpf.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "X".into(),
                ],
                Some((_, _, m)) => vec![
                    tech.to_string(),
                    tbpf.to_string(),
                    uj(m.computation),
                    uj(m.save),
                    uj(m.restore),
                    uj(m.reexecution),
                    uj(m.total_energy()),
                    if cell.ok() { "ok" } else { "X" }.into(),
                ],
            };
            rows.push(row);
        }
    }
    println!("{}", render_table(&headers, &rows));
    println!(
        "paper's shape: management overhead decreases with EB for everyone,\n\
         but fastest for Schematic (fewer checkpoints are placed) while\n\
         Ratchet/Alfred placements are EB-oblivious and Rockclimb keeps\n\
         checkpointing every loop header."
    );
}
