//! `tracereport` — renders a grid trace artifact written by
//! `gridrun --trace F`.
//!
//! ```text
//! tracereport FILE                       # phase-time table + hottest cells
//! tracereport FILE --top K               # show the K hottest cells (default 10)
//! tracereport FILE --cell run/Schematic/crc/10000
//!                                        # also render that cell's epoch timeline
//! ```
//!
//! The timeline's closing "Fig. 6 split" line is computed purely from
//! the event stream's cumulative energy snapshots, so it reproduces the
//! cell's computation/save/restore/re-execution breakdown exactly as
//! the grid reports print it.
//!
//! Exit codes: 0 on success, 2 on usage or artifact errors.

use schematic_bench::trace::{from_jsonl, parse_job_key, render_trace_report};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: tracereport FILE [--cell KIND/TECHNIQUE/BENCHMARK/TBPF] [--top K]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut cell = None;
    let mut top_k = 10usize;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cell" => {
                let key = it.next().unwrap_or_else(|| usage());
                cell = Some(parse_job_key(&key).unwrap_or_else(|| {
                    eprintln!(
                        "tracereport: bad cell key '{key}' (want KIND/TECHNIQUE/BENCHMARK/TBPF)"
                    );
                    std::process::exit(2);
                }));
            }
            "--top" => {
                top_k = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => usage(),
        }
    }
    let file = file.unwrap_or_else(|| usage());
    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("tracereport: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    match from_jsonl(&text) {
        Ok(traces) => {
            print!("{}", render_trace_report(&traces, cell.as_ref(), top_k));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tracereport: {file}: {e}");
            ExitCode::from(2)
        }
    }
}
