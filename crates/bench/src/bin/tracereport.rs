//! `tracereport` — renders a grid trace artifact written by
//! `gridrun --trace F`.
//!
//! ```text
//! tracereport FILE                       # phase-time table + hottest cells
//! tracereport FILE --top K               # show the K hottest cells (default 10)
//! tracereport FILE --cell run/Schematic/crc/10000
//!                                        # also render that cell's epoch timeline
//! tracereport --diff BASE.jsonl CAND.jsonl [--threshold PCT]
//!                                        # phase-by-phase comparison; flags cells
//!                                        # whose wall time regressed > PCT % (25)
//! tracereport --service FILE [--top K]   # render a service registry dumped by
//!                                        # `gridrun --connect ADDR --stats -o FILE`:
//!                                        # top-K slowest jobs, cache hit rate per
//!                                        # report kind, latency per technique x benchmark
//! ```
//!
//! The timeline's closing "Fig. 6 split" line is computed purely from
//! the event stream's cumulative energy snapshots, so it reproduces the
//! cell's computation/save/restore/re-execution breakdown exactly as
//! the grid reports print it.
//!
//! Exit codes: 0 on success, 1 when `--diff` flags a regressed cell,
//! 2 on usage or artifact errors.

use schematic_bench::trace::{from_jsonl, parse_job_key, render_trace_diff, render_trace_report};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: tracereport FILE [--cell KIND/TECHNIQUE/BENCHMARK/TBPF] [--top K]\n\
         usage: tracereport --diff BASE.jsonl CAND.jsonl [--threshold PCT]\n\
         usage: tracereport --service FILE [--top K]"
    );
    std::process::exit(2);
}

fn load(file: &str) -> Vec<schematic_bench::trace::CellTrace> {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("tracereport: {file}: {e}");
        std::process::exit(2);
    });
    from_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("tracereport: {file}: {e}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut cell = None;
    let mut top_k = 10usize;
    let mut diff = false;
    let mut service = false;
    let mut threshold_pct = 25.0f64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--diff" => diff = true,
            "--service" => service = true,
            "--threshold" => {
                threshold_pct = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|p: &f64| p.is_finite() && *p >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--cell" => {
                let key = it.next().unwrap_or_else(|| usage());
                cell = Some(parse_job_key(&key).unwrap_or_else(|| {
                    eprintln!(
                        "tracereport: bad cell key '{key}' (want KIND/TECHNIQUE/BENCHMARK/TBPF)"
                    );
                    std::process::exit(2);
                }));
            }
            "--top" => {
                top_k = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ if !arg.starts_with('-') => files.push(arg),
            _ => usage(),
        }
    }
    if service {
        if files.len() != 1 || diff || cell.is_some() {
            usage();
        }
        let text = std::fs::read_to_string(&files[0]).unwrap_or_else(|e| {
            eprintln!("tracereport: {}: {e}", files[0]);
            std::process::exit(2);
        });
        let registry = schematic_obs::codec::parse(&text).unwrap_or_else(|e| {
            eprintln!("tracereport: {}: {e}", files[0]);
            std::process::exit(2);
        });
        print!(
            "{}",
            schematic_bench::service::render_service_report(&registry, top_k)
        );
        return ExitCode::SUCCESS;
    }
    if diff {
        if files.len() != 2 || cell.is_some() {
            usage();
        }
        let baseline = load(&files[0]);
        let candidate = load(&files[1]);
        let (report, flagged) = render_trace_diff(&baseline, &candidate, threshold_pct / 100.0);
        print!("{report}");
        return if flagged {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }
    if files.len() != 1 {
        usage();
    }
    let traces = load(&files[0]);
    print!("{}", render_trace_report(&traces, cell.as_ref(), top_k));
    ExitCode::SUCCESS
}
