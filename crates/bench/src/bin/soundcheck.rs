//! Soundness check — static WAR-hazard / idempotence classification of
//! every inter-checkpoint region, per technique × benchmark, with
//! emulator cross-validation (see `schematic_core::anomaly`).
//!
//! ```text
//! cargo run --release -p schematic-bench --bin soundcheck [-- --quick] [--explain]
//! ```
//!
//! `--quick` sweeps Schematic + Ratchet with the static analysis only
//! (the CI configuration); the default sweeps all five techniques and
//! additionally runs every cell under each TBPF with the emulator's
//! shadow recorder, checking that every observed per-element WAR was
//! covered by a statically predicted anomaly footprint.
//!
//! `--explain` appends per-region verdicts — WAR variables with their
//! offending footprints and sites, the index facts behind each
//! idempotence downgrade, re-execution bounds — and a greppable
//! region-class histogram (`^hist ` lines) that CI diffs against
//! `tests/goldens/region_classes.txt`.
//!
//! Exits nonzero when any region is `hazardous` under Schematic or
//! Ratchet, or when the shadow recorder observes an unpredicted WAR.
//!
//! Thin wrapper: computes the soundcheck slice of the experiment grid
//! (static `sound` cells, plus `shadow` cells in full mode) into a cell
//! store (`schematic_bench::grid`), then renders it.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let explain = std::env::args().any(|a| a == "--explain");
    let (report, pass) = schematic_bench::experiments::soundcheck_report(quick);
    print!("{report}");
    if explain {
        print!(
            "{}",
            schematic_bench::experiments::render_soundcheck_explain(quick)
        );
    }
    if !pass {
        std::process::exit(1);
    }
}
