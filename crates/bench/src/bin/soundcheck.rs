//! Soundness check — static WAR-hazard / idempotence classification of
//! every inter-checkpoint region, per technique × benchmark, with
//! emulator cross-validation (see `schematic_core::anomaly`).
//!
//! ```text
//! cargo run --release -p schematic-bench --bin soundcheck [-- --quick]
//! ```
//!
//! `--quick` sweeps Schematic + Ratchet with the static analysis only
//! (the CI configuration); the default sweeps all five techniques and
//! additionally runs every cell under each TBPF with the emulator's
//! shadow recorder, checking that every observed WAR was statically
//! predicted.
//!
//! Exits nonzero when any region is `hazardous` under Schematic or
//! Ratchet, or when the shadow recorder observes an unpredicted WAR.
//!
//! Thin wrapper: computes the soundcheck slice of the experiment grid
//! (static `sound` cells, plus `shadow` cells in full mode) into a cell
//! store (`schematic_bench::grid`), then renders it.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (report, pass) = schematic_bench::experiments::soundcheck_report(quick);
    print!("{report}");
    if !pass {
        std::process::exit(1);
    }
}
