//! Table II — execution time and minimal number of power failures
//! (§IV-C).
//!
//! Execution time is measured in clock cycles under continuous power
//! with all data in VM, exactly as the paper does; the minimal number of
//! power failures for a TBPF is then `floor(cycles / TBPF)`.

use schematic_bench::{render_table, SEED, TBPFS};
use schematic_emu::{InstrumentedModule, Machine, RunConfig};
use schematic_energy::CostTable;

fn main() {
    println!("Table II: execution time and minimal power failures\n");
    let table = CostTable::msp430fr5969();
    let mut headers = vec!["benchmark".to_string(), "cycles".to_string()];
    headers.extend(TBPFS.iter().map(|t| format!("TBPF={t}")));

    let mut rows = Vec::new();
    for b in schematic_benchsuite::all() {
        let im = InstrumentedModule::bare_all_vm((b.build)(SEED));
        let cfg = RunConfig {
            svm_bytes: usize::MAX / 2, // Table II ignores the VM limit
            ..RunConfig::default()
        };
        let out = Machine::new(&im, &table, cfg).run().expect("no traps");
        assert!(out.completed());
        assert_eq!(out.result, Some((b.oracle)(SEED)), "{}", b.name);
        let cycles = out.metrics.active_cycles;
        let mut row = vec![b.name.to_string(), cycles.to_string()];
        row.extend(TBPFS.iter().map(|t| (cycles / t).to_string()));
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));
    println!(
        "paper (cycles): aes 1079k, basicmath 170k, bitcount 819k, crc 41k,\n\
         dijkstra 1382k, fft 378k, randmath 15k, rc4 437k."
    );
}
