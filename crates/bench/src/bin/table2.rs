//! Table II — execution time and minimal number of power failures
//! (§IV-C).
//!
//! Execution time is measured in clock cycles under continuous power
//! with all data in VM, exactly as the paper does; the minimal number of
//! power failures for a TBPF is then `floor(cycles / TBPF)`.
//!
//! Thin wrapper: computes this report's slice of the experiment grid
//! into a cell store (`schematic_bench::grid`), then renders it.

fn main() {
    print!("{}", schematic_bench::experiments::table2_report());
}
