//! Figure 6 — overall energy consumption, split into computation /
//! save / restore / re-execution, for every benchmark and technique at
//! TBPF = 10k cycles (§IV-D).

use schematic_bench::{render_table, run_cell, technique_names, uj, ENERGY_TBPF};
use schematic_energy::{CostTable, Energy};

fn main() {
    println!("Figure 6: energy breakdown at TBPF = {ENERGY_TBPF} cycles (uJ)\n");
    let table = CostTable::msp430fr5969();
    let headers: Vec<String> = [
        "benchmark",
        "technique",
        "computation",
        "save",
        "restore",
        "re-execution",
        "total",
        "status",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut schematic_totals: Vec<f64> = Vec::new();
    let mut baseline_totals: Vec<f64> = Vec::new();
    let mut schematic_cycles: Vec<f64> = Vec::new();
    let mut baseline_cycles: Vec<f64> = Vec::new();

    let mut rows = Vec::new();
    for b in schematic_benchsuite::all() {
        let mut schematic_total: Option<Energy> = None;
        let mut bench_baselines: Vec<Energy> = Vec::new();
        for tech in technique_names() {
            let cell = run_cell(tech, &b, &table, ENERGY_TBPF);
            let row = match &cell.outcome {
                None => vec![
                    b.name.to_string(),
                    tech.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "X (cannot run)".into(),
                ],
                Some((status, correct, m)) => {
                    let total = m.total_energy();
                    if cell.ok() {
                        if tech == "Schematic" {
                            schematic_total = Some(total);
                            schematic_cycles.push(m.active_cycles as f64);
                        } else {
                            bench_baselines.push(total);
                            baseline_cycles.push(m.active_cycles as f64);
                        }
                    }
                    vec![
                        b.name.to_string(),
                        tech.to_string(),
                        uj(m.computation),
                        uj(m.save),
                        uj(m.restore),
                        uj(m.reexecution),
                        uj(total),
                        if cell.ok() {
                            "ok".into()
                        } else {
                            format!("X {status:?} correct={correct}")
                        },
                    ]
                }
            };
            rows.push(row);
        }
        if let Some(s) = schematic_total {
            for base in bench_baselines {
                schematic_totals.push(s.as_uj());
                baseline_totals.push(base.as_uj());
            }
        }
    }
    println!("{}", render_table(&headers, &rows));

    // Headline: average reduction vs completed baselines (§IV-D: 51 %).
    if !schematic_totals.is_empty() {
        let ratios: Vec<f64> = schematic_totals
            .iter()
            .zip(&baseline_totals)
            .map(|(s, b)| 1.0 - s / b)
            .collect();
        let avg = 100.0 * ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "\nSCHEMATIC vs completed baselines: average energy reduction = {avg:.1} % \
             (paper: 51 %)"
        );
        // §IV-D also reports a 54 % average *execution time* reduction
        // (active cycles; standby time excluded on both sides).
        let ours: f64 = schematic_cycles.iter().sum::<f64>() / schematic_cycles.len() as f64;
        let theirs: f64 = baseline_cycles.iter().sum::<f64>() / baseline_cycles.len() as f64;
        println!(
            "average active-cycle reduction = {:.1} % (paper: 54 % execution time)",
            100.0 * (1.0 - ours / theirs)
        );
    }
}
