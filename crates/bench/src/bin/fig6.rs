//! Figure 6 — overall energy consumption, split into computation /
//! save / restore / re-execution, for every benchmark and technique at
//! TBPF = 10k cycles (§IV-D).

fn main() {
    print!("{}", schematic_bench::experiments::fig6_report());
}
