//! Figure 6 — overall energy consumption, split into computation /
//! save / restore / re-execution, for every benchmark and technique at
//! TBPF = 10k cycles (§IV-D).
//!
//! Thin wrapper: computes this report's slice of the experiment grid
//! into a cell store (`schematic_bench::grid`), then renders it.

fn main() {
    print!("{}", schematic_bench::experiments::fig6_report());
}
