//! `gridrun` — the sharded experiment-grid pipeline from the command
//! line.
//!
//! ```text
//! gridrun                       # compute the full grid in-process, render every report
//! gridrun --quick               # CI-sized grid (soundcheck static-only, Schematic+Ratchet)
//! gridrun --list                # print the job list, one `kind/technique/benchmark/tbpf` per line
//! gridrun --shard i/N -o F      # compute shard i of N, write the cells as JSONL to F ('-' = stdout)
//! gridrun --merge F...          # load shard artifacts, merge, verify coverage, render every report
//! gridrun --spawn N             # drive N `--shard` child processes, merge their artifacts,
//!                               # assert the render is byte-identical to the in-process run
//! gridrun --trace F             # compute in-process with tracing on; write the per-cell
//!                               # trace artifact (JSONL, see `tracereport`) to F
//! ```
//!
//! Shards partition the grid deterministically (every N-th job), so any
//! split computed anywhere — other processes, other hosts — merges back
//! into the same store and renders byte-identical reports. `--merge`
//! refuses stores with missing cells (it lists them) or conflicting
//! duplicates; overlapping shards are fine as long as they agree.
//!
//! Exit codes: 0 on success, 2 on usage/artifact/coverage errors,
//! 3 when `--spawn`'s parity assertion fails.

use schematic_bench::experiments::render_all;
use schematic_bench::grid::{CellStore, GridMode, GridSpec};
use schematic_bench::trace;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct Options {
    mode: GridMode,
    command: Command,
    /// `--trace FILE`: capture per-cell traces (in-process runs only).
    trace: Option<String>,
}

enum Command {
    /// Compute everything in-process and render.
    Direct,
    /// Print the job list.
    List,
    /// Compute one shard into an artifact file.
    Shard {
        index: usize,
        count: usize,
        out: String,
    },
    /// Merge artifacts and render.
    Merge { files: Vec<String> },
    /// Drive child processes over all shards, merge, verify parity.
    Spawn { count: usize },
}

fn usage() -> ! {
    eprintln!(
        "usage: gridrun [--quick] [--trace FILE] \
         [--list | --shard i/N -o FILE | --merge FILE... | --spawn N]"
    );
    std::process::exit(2);
}

fn parse_shard_spec(spec: &str) -> Option<(usize, usize)> {
    let (i, n) = spec.split_once('/')?;
    let (i, n) = (i.parse().ok()?, n.parse().ok()?);
    if n == 0 || i >= n {
        return None;
    }
    Some((i, n))
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = GridMode::Full;
    let mut command = None;
    let mut trace = None;
    let mut it = args.into_iter().peekable();
    let set = |c: Command, command: &mut Option<Command>| {
        if command.is_some() {
            usage();
        }
        *command = Some(c);
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => mode = GridMode::Quick,
            "--trace" => {
                if trace.is_some() {
                    usage();
                }
                trace = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--list" => set(Command::List, &mut command),
            "--shard" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (index, count) = parse_shard_spec(&spec).unwrap_or_else(|| usage());
                let out = match (it.next().as_deref(), it.next()) {
                    (Some("-o"), Some(path)) => path,
                    _ => usage(),
                };
                set(Command::Shard { index, count, out }, &mut command);
            }
            "--merge" => {
                let files: Vec<String> = it.by_ref().collect();
                if files.is_empty() {
                    usage();
                }
                set(Command::Merge { files }, &mut command);
            }
            "--spawn" => {
                let count: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                set(Command::Spawn { count }, &mut command);
            }
            _ => usage(),
        }
    }
    let command = command.unwrap_or(Command::Direct);
    if trace.is_some() && !matches!(command, Command::Direct) {
        eprintln!("gridrun: --trace only applies to the in-process (default) run");
        usage();
    }
    Options {
        mode,
        command,
        trace,
    }
}

/// Loads and merges shard artifacts, then verifies they cover `spec`.
fn merge_files(spec: &GridSpec, files: &[PathBuf]) -> Result<CellStore, String> {
    let mut store = CellStore::new();
    for file in files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let shard = CellStore::from_jsonl(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        store
            .merge_from(shard)
            .map_err(|e| format!("{}: {e}", file.display()))?;
    }
    let missing = store.missing(spec.jobs());
    if !missing.is_empty() {
        let mut msg = format!(
            "merged store covers {} of {} grid cells; missing:",
            spec.len() - missing.len(),
            spec.len()
        );
        for job in missing.iter().take(10) {
            msg.push_str(&format!("\n  {job}"));
        }
        if missing.len() > 10 {
            msg.push_str(&format!("\n  … and {} more", missing.len() - 10));
        }
        return Err(msg);
    }
    Ok(store)
}

fn write_artifact(path: &str, text: &str) -> Result<(), String> {
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(Path::new(path), text).map_err(|e| format!("{path}: {e}"))
    }
}

/// `--spawn N`: compute every shard in a child `gridrun --shard`
/// process, merge the artifacts, and demand byte-parity with the
/// in-process pipeline.
fn spawn_children(spec: &GridSpec, mode: GridMode, count: usize) -> Result<String, ExitCode> {
    let exe = std::env::current_exe().expect("own executable path");
    let dir = std::env::temp_dir().join(format!("gridrun-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard scratch dir");
    let files: Vec<PathBuf> = (0..count)
        .map(|i| dir.join(format!("shard_{i}.jsonl")))
        .collect();

    let mut children = Vec::new();
    for (i, file) in files.iter().enumerate() {
        let mut cmd = std::process::Command::new(&exe);
        if mode == GridMode::Quick {
            cmd.arg("--quick");
        }
        cmd.arg("--shard")
            .arg(format!("{i}/{count}"))
            .arg("-o")
            .arg(file);
        children.push((i, cmd.spawn().expect("spawn shard child")));
    }
    for (i, child) in &mut children {
        let status = child.wait().expect("wait for shard child");
        if !status.success() {
            eprintln!("gridrun: shard {i}/{count} child failed: {status}");
            return Err(ExitCode::from(2));
        }
    }

    let merged = merge_files(spec, &files).map_err(|e| {
        eprintln!("gridrun: {e}");
        ExitCode::from(2)
    })?;
    let _ = std::fs::remove_dir_all(&dir);

    let rendered = render_all(&merged, mode);
    let direct = render_all(&CellStore::compute(spec.jobs()), mode);
    if rendered != direct {
        eprintln!(
            "gridrun: PARITY FAILURE — merged {count}-shard render differs from the \
             in-process render"
        );
        return Err(ExitCode::from(3));
    }
    eprintln!(
        "gridrun: {count} shards · {} cells · merged render byte-identical to in-process",
        merged.len()
    );
    Ok(rendered)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let spec = GridSpec::full_grid(opts.mode);
    match opts.command {
        Command::Direct => {
            let store = match &opts.trace {
                None => CellStore::compute(spec.jobs()),
                Some(path) => {
                    let (store, traces) = trace::capture_grid(spec.jobs());
                    if let Err(e) = write_artifact(path, &trace::to_jsonl(&traces)) {
                        eprintln!("gridrun: {e}");
                        return ExitCode::from(2);
                    }
                    eprintln!(
                        "gridrun: wrote {} cell traces ({} events) to {path}",
                        traces.len(),
                        traces.iter().map(|t| t.events.len()).sum::<usize>()
                    );
                    store
                }
            };
            print!("{}", render_all(&store, opts.mode));
            ExitCode::SUCCESS
        }
        Command::List => {
            for job in spec.jobs() {
                println!("{job}");
            }
            ExitCode::SUCCESS
        }
        Command::Shard { index, count, out } => {
            let jobs = spec.shard(index, count);
            let start = Instant::now();
            let last_beat = AtomicU64::new(0);
            eprintln!(
                "gridrun: shard {index}/{count} starting: 0/{} cells",
                jobs.len()
            );
            let store = CellStore::compute_with_progress(&jobs, &|done, total| {
                let elapsed = start.elapsed();
                let secs = elapsed.as_secs();
                let prev = last_beat.load(Ordering::Relaxed);
                let due = secs > prev
                    && last_beat
                        .compare_exchange(prev, secs, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok();
                if due || done == total {
                    eprintln!(
                        "gridrun: shard {index}/{count} heartbeat: {done}/{total} cells, \
                         {:.1}s elapsed",
                        elapsed.as_secs_f64()
                    );
                }
            });
            match write_artifact(&out, &store.to_jsonl()) {
                Ok(()) => {
                    eprintln!(
                        "gridrun: shard {index}/{count} computed {} of {} cells",
                        jobs.len(),
                        spec.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridrun: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Command::Merge { files } => {
            let paths: Vec<PathBuf> = files.iter().map(PathBuf::from).collect();
            match merge_files(&spec, &paths) {
                Ok(store) => {
                    print!("{}", render_all(&store, opts.mode));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridrun: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Command::Spawn { count } => match spawn_children(&spec, opts.mode, count) {
            Ok(rendered) => {
                print!("{rendered}");
                ExitCode::SUCCESS
            }
            Err(code) => code,
        },
    }
}
