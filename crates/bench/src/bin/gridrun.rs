//! `gridrun` — the sharded experiment-grid pipeline from the command
//! line.
//!
//! ```text
//! gridrun                       # compute the full grid in-process, render every report
//! gridrun --quick               # CI-sized grid (soundcheck static-only, Schematic+Ratchet)
//! gridrun --list                # print the job list, one `kind/technique/benchmark/tbpf` per line
//! gridrun --shard i/N -o F      # compute shard i of N, write the cells as JSONL to F ('-' = stdout)
//! gridrun --merge F...          # load shard artifacts, merge, verify coverage, render every report
//! gridrun --spawn N             # drive N `--shard` child processes, merge their artifacts,
//!                               # assert the render is byte-identical to the in-process run
//! gridrun --trace F             # compute in-process with tracing on; write the per-cell
//!                               # trace artifact (JSONL, see `tracereport`) to F
//! gridrun --report robust       # multi-seed robustness report: completion rate and energy
//!          [--seeds N]          # spread per technique x benchmark across N stochastic
//!                               # seeds (default 8) plus every recorded trace in traces/
//! gridrun --resume F [-o OUT]   # load a (possibly partial) artifact, compute only the
//!                               # missing cells, render; OUT gets the completed artifact
//! gridrun --jobs F -o OUT       # worker mode: evaluate the job keys listed in F, write
//!                               # extended cell lines (cell + program digests + telemetry) to OUT
//! gridrun --connect ADDR ...    # thin client for a running `gridd`:
//!                               #   --submit SPEC   evaluate 'all' or shard 'i/N' remotely
//!                               #   --status        print daemon tallies
//!                               #   --fetch -o F    download accumulated cells as JSONL
//!                               #   --stats [--format expo] [-o F]
//!                               #                   print merged service telemetry (human or
//!                               #                   Prometheus-style exposition); -o dumps the
//!                               #                   registry for `tracereport --service`
//!                               #   --shutdown      stop the daemon
//! ```
//!
//! Worker mode captures a per-job [`schematic_obs`] registry (span
//! timings, per-job wall latency) and ships it on each artifact line;
//! `SCHEMATIC_TELEMETRY=0` disables the capture. The ~1 Hz `--shard`
//! heartbeats follow `SCHEMATIC_PROGRESS` (`0` off, `1` on, unset =
//! only when stderr is a terminal), so daemon worker children stay
//! silent by default.
//!
//! In-process computes (the default run and `--resume`) go through the
//! content-addressed cell cache at `target/gridcache.jsonl`
//! (`SCHEMATIC_CACHE` or `--cache F` overrides, `--no-cache` disables,
//! `--cache-verify` recomputes every hit and fails on divergence).
//! Shard, worker and merge modes never touch the cache: shards may run
//! concurrently, and the cache file has a single writer by design.
//!
//! Shards partition the grid deterministically (every N-th job), so any
//! split computed anywhere — other processes, other hosts — merges back
//! into the same store and renders byte-identical reports. `--merge`
//! refuses stores with missing cells (it lists them) or conflicting
//! duplicates; overlapping shards are fine as long as they agree.
//!
//! Exit codes: 0 on success, 2 on usage/artifact/coverage errors,
//! 3 when `--spawn`'s parity assertion fails.

use schematic_bench::cache::{
    compute_cached, worker_line, worker_line_telemetry, CellCache, WorkerTelemetry,
};
use schematic_bench::experiments::{render_all, render_robust, robust_jobs};
use schematic_bench::grid::{evaluate_traced, CellStore, GridMode, GridSpec, Job};
use schematic_bench::json::Json;
use schematic_bench::parallel::par_map;
use schematic_bench::{service, trace};
use schematic_energy::CostTable;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct Options {
    mode: GridMode,
    command: Command,
    /// `--trace FILE`: capture per-cell traces (in-process runs only).
    trace: Option<String>,
    /// `--cache FILE` / `--no-cache`.
    cache: CacheOpt,
    /// `--cache-verify`: recompute hits and compare.
    verify: bool,
}

enum CacheOpt {
    /// `target/gridcache.jsonl`, or `SCHEMATIC_CACHE` when set.
    Default,
    Path(String),
    Off,
}

impl CacheOpt {
    fn open(&self) -> Option<CellCache> {
        let path = match self {
            CacheOpt::Off => return None,
            CacheOpt::Path(p) => p.clone(),
            CacheOpt::Default => {
                std::env::var("SCHEMATIC_CACHE").unwrap_or_else(|_| "target/gridcache.jsonl".into())
            }
        };
        Some(CellCache::open(path))
    }
}

enum Command {
    /// Compute everything in-process and render.
    Direct,
    /// Print the job list.
    List,
    /// Compute one shard into an artifact file.
    Shard {
        index: usize,
        count: usize,
        out: String,
    },
    /// Merge artifacts and render.
    Merge { files: Vec<String> },
    /// Drive child processes over all shards, merge, verify parity.
    Spawn { count: usize },
    /// Load a partial artifact, compute the rest, render.
    Resume {
        artifact: String,
        out: Option<String>,
    },
    /// Worker mode: evaluate listed job keys into extended cell lines.
    Jobs { file: String, out: String },
    /// `--report robust`: the multi-seed robustness report.
    Robust { seeds: u64 },
    /// Thin client against a running daemon.
    Connect { addr: String, action: ClientAction },
}

enum ClientAction {
    Submit { spec: String },
    Status,
    Fetch { out: String },
    Stats { expo: bool, out: Option<String> },
    Shutdown,
}

fn usage() -> ! {
    eprintln!(
        "usage: gridrun [--quick] [--trace FILE] [--cache FILE | --no-cache] [--cache-verify] \
         [--list | --shard i/N -o FILE | --merge FILE... | --spawn N | \
         --resume FILE [-o FILE] | --jobs FILE -o FILE | \
         --report robust [--seeds N] | \
         --connect ADDR (--submit all|i/N | --status | --fetch -o FILE | \
         --stats [--format expo] [-o FILE] | --shutdown)]"
    );
    std::process::exit(2);
}

fn parse_shard_spec(spec: &str) -> Option<(usize, usize)> {
    let (i, n) = spec.split_once('/')?;
    let (i, n) = (i.parse().ok()?, n.parse().ok()?);
    if n == 0 || i >= n {
        return None;
    }
    Some((i, n))
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = GridMode::Full;
    let mut command = None;
    let mut trace = None;
    let mut cache = CacheOpt::Default;
    let mut verify = false;
    let mut seeds = None;
    let mut it = args.into_iter().peekable();
    let set = |c: Command, command: &mut Option<Command>| {
        if command.is_some() {
            usage();
        }
        *command = Some(c);
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => mode = GridMode::Quick,
            "--trace" => {
                if trace.is_some() {
                    usage();
                }
                trace = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--cache" => cache = CacheOpt::Path(it.next().unwrap_or_else(|| usage())),
            "--no-cache" => cache = CacheOpt::Off,
            "--cache-verify" => verify = true,
            "--list" => set(Command::List, &mut command),
            "--shard" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (index, count) = parse_shard_spec(&spec).unwrap_or_else(|| usage());
                let out = match (it.next().as_deref(), it.next()) {
                    (Some("-o"), Some(path)) => path,
                    _ => usage(),
                };
                set(Command::Shard { index, count, out }, &mut command);
            }
            "--merge" => {
                let files: Vec<String> = it.by_ref().collect();
                if files.is_empty() {
                    usage();
                }
                set(Command::Merge { files }, &mut command);
            }
            "--spawn" => {
                let count: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                set(Command::Spawn { count }, &mut command);
            }
            "--resume" => {
                let artifact = it.next().unwrap_or_else(|| usage());
                let out = if it.peek().map(String::as_str) == Some("-o") {
                    it.next();
                    Some(it.next().unwrap_or_else(|| usage()))
                } else {
                    None
                };
                set(Command::Resume { artifact, out }, &mut command);
            }
            "--jobs" => {
                let file = it.next().unwrap_or_else(|| usage());
                let out = match (it.next().as_deref(), it.next()) {
                    (Some("-o"), Some(path)) => path,
                    _ => usage(),
                };
                set(Command::Jobs { file, out }, &mut command);
            }
            "--report" => match it.next().as_deref() {
                Some("robust") => set(Command::Robust { seeds: 8 }, &mut command),
                _ => usage(),
            },
            "--seeds" => {
                seeds = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--connect" => {
                let addr = it.next().unwrap_or_else(|| usage());
                let action = match it.next().as_deref() {
                    Some("--submit") => ClientAction::Submit {
                        spec: it.next().unwrap_or_else(|| usage()),
                    },
                    Some("--status") => ClientAction::Status,
                    Some("--fetch") => match (it.next().as_deref(), it.next()) {
                        (Some("-o"), Some(path)) => ClientAction::Fetch { out: path },
                        _ => usage(),
                    },
                    Some("--stats") => {
                        let mut expo = false;
                        let mut out = None;
                        while let Some(next) = it.peek().map(String::as_str) {
                            match next {
                                "--format" => {
                                    it.next();
                                    match it.next().as_deref() {
                                        Some("expo") => expo = true,
                                        _ => usage(),
                                    }
                                }
                                "-o" => {
                                    it.next();
                                    out = Some(it.next().unwrap_or_else(|| usage()));
                                }
                                _ => usage(),
                            }
                        }
                        ClientAction::Stats { expo, out }
                    }
                    Some("--shutdown") => ClientAction::Shutdown,
                    _ => usage(),
                };
                set(Command::Connect { addr, action }, &mut command);
            }
            _ => usage(),
        }
    }
    let mut command = command.unwrap_or(Command::Direct);
    if trace.is_some() && !matches!(command, Command::Direct) {
        eprintln!("gridrun: --trace only applies to the in-process (default) run");
        usage();
    }
    match (&mut command, seeds) {
        (Command::Robust { seeds }, Some(n)) => *seeds = n,
        (_, Some(_)) => {
            eprintln!("gridrun: --seeds only applies to --report robust");
            usage();
        }
        _ => {}
    }
    Options {
        mode,
        command,
        trace,
        cache,
        verify,
    }
}

/// Loads and merges shard artifacts, then verifies they cover `spec`.
fn merge_files(spec: &GridSpec, files: &[PathBuf]) -> Result<CellStore, String> {
    let mut store = CellStore::new();
    for file in files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let shard = CellStore::from_jsonl(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        store
            .merge_from(shard)
            .map_err(|e| format!("{}: {e}", file.display()))?;
    }
    let missing = store.missing(spec.jobs());
    if !missing.is_empty() {
        let mut msg = format!(
            "merged store covers {} of {} grid cells; missing:",
            spec.len() - missing.len(),
            spec.len()
        );
        for job in missing.iter().take(10) {
            msg.push_str(&format!("\n  {job}"));
        }
        if missing.len() > 10 {
            msg.push_str(&format!("\n  … and {} more", missing.len() - 10));
        }
        return Err(msg);
    }
    Ok(store)
}

fn write_artifact(path: &str, text: &str) -> Result<(), String> {
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(Path::new(path), text).map_err(|e| format!("{path}: {e}"))
    }
}

/// `--spawn N`: compute every shard in a child `gridrun --shard`
/// process, merge the artifacts, and demand byte-parity with the
/// in-process pipeline.
fn spawn_children(spec: &GridSpec, mode: GridMode, count: usize) -> Result<String, ExitCode> {
    let exe = std::env::current_exe().expect("own executable path");
    let dir = std::env::temp_dir().join(format!("gridrun-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard scratch dir");
    let files: Vec<PathBuf> = (0..count)
        .map(|i| dir.join(format!("shard_{i}.jsonl")))
        .collect();

    let mut children = Vec::new();
    for (i, file) in files.iter().enumerate() {
        let mut cmd = std::process::Command::new(&exe);
        if mode == GridMode::Quick {
            cmd.arg("--quick");
        }
        cmd.arg("--shard")
            .arg(format!("{i}/{count}"))
            .arg("-o")
            .arg(file);
        children.push((i, cmd.spawn().expect("spawn shard child")));
    }
    for (i, child) in &mut children {
        let status = child.wait().expect("wait for shard child");
        if !status.success() {
            eprintln!("gridrun: shard {i}/{count} child failed: {status}");
            return Err(ExitCode::from(2));
        }
    }

    let merged = merge_files(spec, &files).map_err(|e| {
        eprintln!("gridrun: {e}");
        ExitCode::from(2)
    })?;
    let _ = std::fs::remove_dir_all(&dir);

    let rendered = render_all(&merged, mode);
    let direct = render_all(&CellStore::compute(spec.jobs()), mode);
    if rendered != direct {
        eprintln!(
            "gridrun: PARITY FAILURE — merged {count}-shard render differs from the \
             in-process render"
        );
        return Err(ExitCode::from(3));
    }
    eprintln!(
        "gridrun: {count} shards · {} cells · merged render byte-identical to in-process",
        merged.len()
    );
    Ok(rendered)
}

/// Cache-aware compute of `jobs`, reporting hit/computed tallies on
/// stderr. `--no-cache` falls through to the plain compute path.
fn compute(jobs: &[Job], opts: &Options) -> Result<CellStore, String> {
    let mut cache = opts.cache.open();
    let (store, stats) =
        compute_cached(jobs, cache.as_mut(), opts.verify, &|_, _| {}).map_err(|e| e.to_string())?;
    match &cache {
        Some(c) => eprintln!(
            "gridrun: cache {}: {} hits, {} computed{}",
            c.path().display(),
            stats.hits,
            stats.computed,
            if opts.verify { " (hits verified)" } else { "" }
        ),
        None => eprintln!("gridrun: cache off: {} computed", stats.computed),
    }
    Ok(store)
}

/// `--resume F`: complete a partial artifact and render it.
fn resume(
    spec: &GridSpec,
    artifact: &str,
    out: Option<&str>,
    opts: &Options,
) -> Result<String, String> {
    let text = std::fs::read_to_string(artifact).map_err(|e| format!("{artifact}: {e}"))?;
    let mut store = CellStore::from_jsonl(&text).map_err(|e| format!("{artifact}: {e}"))?;
    let loaded = store.len();
    let missing: Vec<Job> = store.missing(spec.jobs()).into_iter().cloned().collect();
    let computed = compute(&missing, opts)?;
    store.merge_from(computed).map_err(|e| e.to_string())?;
    eprintln!(
        "gridrun: resume {artifact}: {loaded} cells loaded, {} missing computed, {} total",
        missing.len(),
        store.len()
    );
    if let Some(out) = out {
        write_artifact(out, &store.to_jsonl())?;
    }
    Ok(render_all(&store, opts.mode))
}

/// `--jobs F -o OUT`: the worker half of the daemon's dispatch — parse
/// one job key per line, evaluate each (no cache: the parent owns it),
/// and emit extended artifact lines carrying the program digests plus,
/// unless `SCHEMATIC_TELEMETRY=0`, a captured per-job registry the
/// daemon merges into its service telemetry.
fn run_jobs(file: &str, out: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let job = Job::parse(line.trim()).map_err(|e| format!("{file}:{}: {e}", lineno + 1))?;
        jobs.push(job);
    }
    let table = CostTable::msp430fr5969();
    let telemetry_on = std::env::var("SCHEMATIC_TELEMETRY").map_or(true, |v| v != "0");
    if telemetry_on {
        schematic_obs::set_enabled(true);
    }
    let results = par_map(&jobs, |job| {
        if !telemetry_on {
            let (value, ims) = evaluate_traced(job, &table);
            return (value, ims, None);
        }
        let t0 = Instant::now();
        let ((value, ims), mut registry) = schematic_obs::capture(|| evaluate_traced(job, &table));
        let wall_nanos = t0.elapsed().as_nanos() as u64;
        registry.record_span(&format!("job/{job}"), wall_nanos);
        (
            value,
            ims,
            Some(WorkerTelemetry {
                wall_nanos,
                registry,
            }),
        )
    });
    let mut artifact = String::new();
    for (job, (value, ims, telemetry)) in jobs.iter().zip(&results) {
        artifact.push_str(&match telemetry {
            Some(t) => worker_line_telemetry(job, value, ims, t),
            None => worker_line(job, value, ims),
        });
        artifact.push('\n');
    }
    write_artifact(out, &artifact)?;
    eprintln!("gridrun: worker evaluated {} cells to {out}", jobs.len());
    Ok(())
}

/// Whether progress heartbeats go to stderr: `SCHEMATIC_PROGRESS=0`
/// silences them, `=1` (or any other value) forces them, and unset
/// follows whether stderr is attached to a terminal.
fn progress_enabled() -> bool {
    use std::io::IsTerminal as _;
    match std::env::var("SCHEMATIC_PROGRESS") {
        Ok(v) => v != "0",
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// `--connect ADDR`: one request against a running daemon.
fn connect(spec: &GridSpec, addr: &str, action: &ClientAction) -> Result<(), String> {
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let obj = |pairs: Vec<(&str, Json)>| {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let req = match action {
        ClientAction::Submit { spec: which } => {
            let jobs: Vec<Job> = match which.as_str() {
                "all" => spec.jobs().to_vec(),
                shard => {
                    let (i, n) = parse_shard_spec(shard)
                        .ok_or_else(|| format!("bad --submit spec '{shard}' (want all or i/N)"))?;
                    spec.shard(i, n)
                }
            };
            obj(vec![
                ("op", Json::Str("submit".into())),
                (
                    "jobs",
                    Json::Arr(jobs.iter().map(|j| Json::Str(j.to_string())).collect()),
                ),
            ])
        }
        ClientAction::Status => obj(vec![("op", Json::Str("status".into()))]),
        ClientAction::Fetch { .. } => obj(vec![("op", Json::Str("fetch".into()))]),
        ClientAction::Stats { .. } => obj(vec![("op", Json::Str("stats".into()))]),
        ClientAction::Shutdown => obj(vec![("op", Json::Str("shutdown".into()))]),
    };
    let resp = service::request(&mut stream, &req).map_err(|e| e.to_string())?;
    if resp.get("ok") != Some(&Json::Bool(true)) {
        let detail = resp
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed response");
        return Err(format!("daemon error: {detail}"));
    }
    match action {
        ClientAction::Fetch { out } => {
            let Some(Json::Arr(cells)) = resp.get("cells") else {
                return Err("daemon error: fetch response carries no cells".into());
            };
            let mut artifact = String::new();
            for cell in cells {
                artifact.push_str(&cell.encode());
                artifact.push('\n');
            }
            write_artifact(out, &artifact)?;
            eprintln!("gridrun: fetched {} cells from {addr}", cells.len());
        }
        ClientAction::Stats { expo, out } => {
            let snap =
                service::StatsSnapshot::parse(&resp).map_err(|e| format!("daemon error: {e}"))?;
            if let Some(out) = out {
                let text = resp
                    .get("registry")
                    .and_then(Json::as_str)
                    .expect("StatsSnapshot::parse checked the registry field");
                write_artifact(out, text)?;
                eprintln!("gridrun: dumped service registry from {addr} to {out}");
            }
            if *expo {
                print!("{}", service::render_stats_expo(&snap));
            } else {
                print!("{}", service::render_stats(&snap));
            }
        }
        _ => {
            // Print the response fields (minus the ok flag) as a flat
            // summary line.
            let Json::Obj(pairs) = &resp else {
                return Err("daemon error: non-object response".into());
            };
            let summary: Vec<String> = pairs
                .iter()
                .filter(|(k, _)| k != "ok")
                .map(|(k, v)| format!("{k}={}", v.encode()))
                .collect();
            println!(
                "gridrun: {addr}: {}",
                if summary.is_empty() {
                    "ok".to_string()
                } else {
                    summary.join(" ")
                }
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut opts = parse_args();
    let spec = GridSpec::full_grid(opts.mode);
    match std::mem::replace(&mut opts.command, Command::List) {
        Command::Direct => {
            let store = match &opts.trace {
                None => match compute(spec.jobs(), &opts) {
                    Ok(store) => store,
                    Err(e) => {
                        eprintln!("gridrun: {e}");
                        return ExitCode::from(2);
                    }
                },
                // A real file streams: overflow event chunks spill to
                // disk during capture, so no event is ever dropped.
                // Stdout ("-") keeps the buffered ring-capped path.
                Some(path) if path != "-" => {
                    let file = match std::fs::File::create(Path::new(path)) {
                        Ok(f) => f,
                        Err(e) => {
                            eprintln!("gridrun: {path}: {e}");
                            return ExitCode::from(2);
                        }
                    };
                    let writer = std::io::BufWriter::new(file);
                    let (store, traces) = match trace::capture_grid_streaming(spec.jobs(), writer) {
                        Ok(out) => out,
                        Err(e) => {
                            eprintln!("gridrun: {path}: {e}");
                            return ExitCode::from(2);
                        }
                    };
                    eprintln!(
                        "gridrun: wrote {} cell traces ({} events resident, {} streamed) to {path}",
                        traces.len(),
                        traces.iter().map(|t| t.events.len()).sum::<usize>(),
                        traces.iter().map(|t| t.spilled_events).sum::<u64>()
                    );
                    store
                }
                Some(path) => {
                    let (store, traces) = trace::capture_grid(spec.jobs());
                    if let Err(e) = write_artifact(path, &trace::to_jsonl(&traces)) {
                        eprintln!("gridrun: {e}");
                        return ExitCode::from(2);
                    }
                    eprintln!(
                        "gridrun: wrote {} cell traces ({} events) to {path}",
                        traces.len(),
                        traces.iter().map(|t| t.events.len()).sum::<usize>()
                    );
                    store
                }
            };
            print!("{}", render_all(&store, opts.mode));
            ExitCode::SUCCESS
        }
        Command::List => {
            for job in spec.jobs() {
                println!("{job}");
            }
            ExitCode::SUCCESS
        }
        Command::Shard { index, count, out } => {
            let jobs = spec.shard(index, count);
            let start = Instant::now();
            let last_beat = AtomicU64::new(0);
            let progress = progress_enabled();
            if progress {
                eprintln!(
                    "gridrun: shard {index}/{count} starting: 0/{} cells",
                    jobs.len()
                );
            }
            let store = CellStore::compute_with_progress(&jobs, &|done, total| {
                if !progress {
                    return;
                }
                let elapsed = start.elapsed();
                let secs = elapsed.as_secs();
                let prev = last_beat.load(Ordering::Relaxed);
                let due = secs > prev
                    && last_beat
                        .compare_exchange(prev, secs, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok();
                if due || done == total {
                    eprintln!(
                        "gridrun: shard {index}/{count} heartbeat: {done}/{total} cells, \
                         {:.1}s elapsed",
                        elapsed.as_secs_f64()
                    );
                }
            });
            match write_artifact(&out, &store.to_jsonl()) {
                Ok(()) => {
                    eprintln!(
                        "gridrun: shard {index}/{count} computed {} of {} cells",
                        jobs.len(),
                        spec.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridrun: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Command::Merge { files } => {
            let paths: Vec<PathBuf> = files.iter().map(PathBuf::from).collect();
            match merge_files(&spec, &paths) {
                Ok(store) => {
                    print!("{}", render_all(&store, opts.mode));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridrun: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Command::Spawn { count } => match spawn_children(&spec, opts.mode, count) {
            Ok(rendered) => {
                print!("{rendered}");
                ExitCode::SUCCESS
            }
            Err(code) => code,
        },
        Command::Resume { artifact, out } => {
            match resume(&spec, &artifact, out.as_deref(), &opts) {
                Ok(rendered) => {
                    print!("{rendered}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gridrun: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Command::Jobs { file, out } => match run_jobs(&file, &out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gridrun: {e}");
                ExitCode::from(2)
            }
        },
        // The robustness grid goes through the same cache-aware compute
        // as the paper grid, so `--cache-verify` covers scenario cells.
        Command::Robust { seeds } => match compute(&robust_jobs(seeds), &opts) {
            Ok(store) => {
                print!("{}", render_robust(&store, seeds));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gridrun: {e}");
                ExitCode::from(2)
            }
        },
        Command::Connect { addr, action } => match connect(&spec, &addr, &action) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gridrun: {e}");
                ExitCode::from(2)
            }
        },
    }
}
