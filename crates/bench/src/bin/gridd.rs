//! `gridd` — the persistent grid evaluation daemon.
//!
//! ```text
//! gridd [--quick] [--addr HOST:PORT] [--cache FILE | --no-cache] [--workers N]
//! ```
//!
//! Binds a TCP listener (default `127.0.0.1:0` — an ephemeral port) and
//! prints `gridd: listening on ADDR` once ready, so scripts can scrape
//! the address. Each connection then speaks the length-prefixed JSON
//! frame protocol of [`schematic_bench::service`]: `submit` evaluates a
//! batch of job keys (content-addressed cache first, then either
//! in-process compute or, with `--workers N`, a fan-out over child
//! `gridrun --jobs` processes), `status` reports tallies, `fetch`
//! returns every accumulated cell, `stats` returns the live service
//! telemetry — worker registries merged with daemon spans, queue and
//! utilization gauges, cache hit/miss/verify counters (render it with
//! `gridrun --connect ADDR --stats [--format expo]`) — and `shutdown`
//! stops the daemon.
//!
//! What staying resident buys: the cell cache is loaded once and kept
//! warm in memory, compiled-program digests are memoized across
//! batches, and repeat submissions of already-evaluated cells are
//! answered from the store without touching the cache at all. The
//! daemon is the cache file's only writer — worker children never open
//! it — so concurrent shard corruption cannot happen by construction.
//!
//! Requests are served synchronously in arrival order; the daemon is a
//! sequencer, not a parallel server (the parallelism lives inside each
//! batch's evaluation).

use schematic_bench::cache::CellCache;
use schematic_bench::grid::GridMode;
use schematic_bench::json::Json;
use schematic_bench::service::{read_frame, write_frame, Daemon, FrameError};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;

struct Options {
    mode: GridMode,
    addr: String,
    cache: Option<String>,
    no_cache: bool,
    workers: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: gridd [--quick] [--addr HOST:PORT] [--cache FILE | --no-cache] [--workers N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        mode: GridMode::Full,
        addr: "127.0.0.1:0".into(),
        cache: None,
        no_cache: false,
        workers: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.mode = GridMode::Quick,
            "--addr" => opts.addr = it.next().unwrap_or_else(|| usage()),
            "--cache" => opts.cache = Some(it.next().unwrap_or_else(|| usage())),
            "--no-cache" => opts.no_cache = true,
            "--workers" => {
                opts.workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    if opts.no_cache && opts.cache.is_some() {
        usage();
    }
    opts
}

/// Serves one connection until the peer closes it. Returns `true` when
/// a `shutdown` request was handled.
fn serve(daemon: &mut Daemon, stream: &mut TcpStream) -> bool {
    loop {
        let req = match read_frame(stream) {
            Ok(Some(req)) => req,
            Ok(None) => return false, // clean disconnect
            Err(e) => {
                // A torn or garbage frame ends this connection, not the
                // daemon; try to tell the peer why.
                let resp = schematic_bench::json::Json::Obj(vec![
                    ("ok".into(), Json::Bool(false)),
                    ("error".into(), Json::Str(e.to_string())),
                ]);
                let _ = write_frame(stream, &resp);
                if !matches!(e, FrameError::Syntax(_) | FrameError::Oversize(_)) {
                    return false;
                }
                continue;
            }
        };
        let (resp, shutdown) = daemon.handle(&req);
        if write_frame(stream, &resp).is_err() {
            return shutdown;
        }
        if shutdown {
            return true;
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let cache = if opts.no_cache {
        None
    } else {
        let path = opts.cache.clone().unwrap_or_else(|| {
            std::env::var("SCHEMATIC_CACHE").unwrap_or_else(|_| "target/gridcache.jsonl".into())
        });
        Some(CellCache::open(path))
    };
    if let Some(c) = &cache {
        let (memos, cells) = c.len();
        eprintln!(
            "gridd: cache {} loaded ({memos} memos, {cells} cells)",
            c.path().display()
        );
    }
    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gridd: bind {}: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gridd: local_addr: {e}");
            return ExitCode::from(2);
        }
    };
    // The scrape line scripts wait for; stdout, flushed by the newline.
    println!("gridd: listening on {addr}");
    let mut daemon = Daemon::new(opts.mode, cache, opts.workers);
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("gridd: accept: {e}");
                continue;
            }
        };
        if serve(&mut daemon, &mut stream) {
            break;
        }
    }
    eprintln!("gridd: shutting down");
    ExitCode::SUCCESS
}
