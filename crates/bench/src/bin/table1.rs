//! Table I — ability to support limited VM space (§IV-B).
//!
//! For each technique and benchmark: can the program execute on the
//! MSP430FR5969's 2 KB VM? All-VM techniques (MEMENTOS, ALFRED) need the
//! whole data segment in VM; all-NVM techniques (RATCHET, ROCKCLIMB)
//! need none; SCHEMATIC sizes its allocation to the VM by construction.

use schematic_bench::{render_table, technique_names, technique_supports, SVM_BYTES};

fn main() {
    println!("Table I: ability to support limited VM space (SVM = {SVM_BYTES} B)\n");
    let benches = schematic_benchsuite::all();
    let mut headers = vec!["technique".to_string()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));

    let mut rows = Vec::new();
    for tech in technique_names() {
        let mut row = vec![tech.to_string()];
        for b in &benches {
            let m = (b.build)(schematic_bench::SEED);
            row.push(if technique_supports(tech, &m) { "ok" } else { "X" }.into());
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));
    println!("data footprints:");
    for b in &benches {
        let m = (b.build)(schematic_bench::SEED);
        println!("  {:>10}: {:>6} B", b.name, m.data_bytes());
    }
    println!(
        "\npaper: Ratchet/Rockclimb/Schematic support all eight; Mementos and\n\
         Alfred fail dijkstra, fft and rc4 (data larger than the 2 KB VM)."
    );
}
