//! Table I — ability to support limited VM space (§IV-B).
//!
//! For each technique and benchmark: can the program execute on the
//! MSP430FR5969's 2 KB VM? All-VM techniques (MEMENTOS, ALFRED) need the
//! whole data segment in VM; all-NVM techniques (RATCHET, ROCKCLIMB)
//! need none; SCHEMATIC sizes its allocation to the VM by construction.
//!
//! Thin wrapper: computes this report's slice of the experiment grid
//! into a cell store (`schematic_bench::grid`), then renders it.

fn main() {
    print!("{}", schematic_bench::experiments::table1_report());
}
