//! Table III — ability to enforce forward progress (§IV-C).
//!
//! Each technique runs each benchmark under periodic power failures for
//! TBPF ∈ {1k, 10k, 100k} cycles. ✓ = the benchmark terminated with the
//! correct result; ✗ = it could not complete (livelock, or the program
//! cannot run at all on the platform).

use schematic_bench::{render_table, run_cell, technique_names, TBPFS};
use schematic_energy::CostTable;

fn main() {
    println!("Table III: ability to enforce forward progress\n");
    let table = CostTable::msp430fr5969();
    let benches = schematic_benchsuite::all();

    for &tbpf in &TBPFS {
        println!("TBPF = {tbpf} cycles");
        let mut headers = vec!["technique".to_string()];
        headers.extend(benches.iter().map(|b| b.name.to_string()));
        let mut rows = Vec::new();
        for tech in technique_names() {
            let mut row = vec![tech.to_string()];
            for b in &benches {
                let cell = run_cell(tech, b, &table, tbpf);
                row.push(if cell.ok() { "ok" } else { "X" }.into());
            }
            rows.push(row);
        }
        println!("{}", render_table(&headers, &rows));
    }
    println!(
        "paper: Rockclimb and Schematic complete everything at every TBPF;\n\
         Ratchet fails aes at 1k; Mementos fails most at 1k/10k and the\n\
         VM-oversized kernels everywhere; Alfred fails several at 1k/10k."
    );
}
