//! Table III — ability to enforce forward progress (§IV-C).
//!
//! Each technique runs each benchmark under periodic power failures for
//! TBPF ∈ {1k, 10k, 100k} cycles. ✓ = the benchmark terminated with the
//! correct result; ✗ = it could not complete (livelock, or the program
//! cannot run at all on the platform).
//!
//! Thin wrapper: computes this report's slice of the experiment grid
//! into a cell store (`schematic_bench::grid`), then renders it.

fn main() {
    print!("{}", schematic_bench::experiments::table3_report());
}
