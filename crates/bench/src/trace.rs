//! Grid tracing: per-cell observation capture, the trace artifact
//! codec, and the `tracereport` renderers.
//!
//! [`capture_grid`] evaluates a job list like
//! [`CellStore::compute`](crate::grid::CellStore::compute) while
//! collecting, per cell, the compiler/driver phase timings
//! ([`schematic_obs`] spans), decision counters, and the emulator's
//! lifecycle event stream ([`schematic_emu::trace`]). Because every
//! job runs wholly on one worker thread and its observations are
//! scoped with [`schematic_obs::capture`], the per-cell traces are
//! identical regardless of worker count or scheduling — and the cell
//! *values* are bit-identical to an untraced run (tracing only turns
//! off the emulator's fused dispatch, which is metrics-neutral by
//! construction).
//!
//! Traces serialize through the same offline JSON dialect as the cell
//! artifacts ([`crate::json`]): one JSON object per cell per line.
//! `gridrun --trace F` writes the artifact; the `tracereport` binary
//! renders it — a phase-time table across the grid, the top-K hottest
//! cells, and a per-run epoch timeline whose final row reproduces the
//! cell's Fig. 6 energy split exactly from the event stream alone.
//!
//! Event streams used to be hard-capped at [`obs::MAX_EVENTS`] per
//! cell (ring semantics: oldest dropped). [`capture_grid_streaming`]
//! lifts the cap by spilling: when a cell's resident buffer fills, the
//! oldest half is written to the artifact *immediately* as a
//! `{"spill":{job,seq,events}}` chunk line, and [`from_jsonl`]
//! reassembles chunks (by per-cell sequence number) back in front of
//! the cell's resident tail — so `tracereport` sees the complete,
//! ordered stream no matter how long the run was, while peak memory
//! stays bounded at the cap.

use crate::grid::{self, evaluate, CellStore, GridError, Job, JobKind};
use crate::json::Json;
use crate::parallel::par_map;
use crate::{render_table, uj};
use schematic_energy::{CostTable, Energy};
use schematic_obs as obs;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Aggregated timings of one span name within one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseLine {
    /// Span name (e.g. `"cell/emulate"` or `"analyze/rcg"`).
    pub name: String,
    /// Completed spans under this name.
    pub calls: u64,
    /// Total wall-clock nanoseconds (inclusive; spans may nest).
    pub total_nanos: u64,
    /// Median per-call nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile per-call nanoseconds.
    pub p95_nanos: u64,
}

/// Everything one traced cell recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrace {
    /// The cell's grid key.
    pub job: Job,
    /// Wall-clock nanoseconds of the whole cell evaluation.
    pub wall_nanos: u64,
    /// Per-phase timings, sorted by span name.
    pub phases: Vec<PhaseLine>,
    /// Decision counters (e.g. `alloc/picks`), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Structured events in emission order (compiler decision log +
    /// emulator lifecycle stream), capped at [`obs::MAX_EVENTS`].
    pub events: Vec<obs::Event>,
    /// Events discarded past the cap.
    pub dropped_events: u64,
    /// Events streamed to the artifact as spill chunks instead of
    /// dropped (streaming captures only; [`from_jsonl`] reassembles
    /// them back into [`CellTrace::events`]).
    pub spilled_events: u64,
}

impl CellTrace {
    fn from_registry(job: Job, wall_nanos: u64, reg: obs::Registry) -> CellTrace {
        let phases = reg
            .spans
            .iter()
            .map(|(name, s)| PhaseLine {
                name: name.clone(),
                calls: s.calls,
                total_nanos: s.total_nanos,
                p50_nanos: s.hist.quantile(50, 100),
                p95_nanos: s.hist.quantile(95, 100),
            })
            .collect();
        CellTrace {
            job,
            wall_nanos,
            phases,
            counters: reg.counters.into_iter().collect(),
            events: reg.events.into(),
            dropped_events: reg.dropped_events,
            spilled_events: reg.spilled_events,
        }
    }
}

/// The shared artifact writer streaming captures spill into: worker
/// threads serialize chunk writes through the mutex.
type SharedSink = Arc<Mutex<Box<dyn Write + Send>>>;

/// Captures one cell's evaluation. With a `sink`, a spill hook is
/// installed for the duration: whenever the cell's event buffer hits
/// [`obs::MAX_EVENTS`], the oldest half is written to the sink as one
/// `{"spill":…}` chunk line instead of being ring-dropped.
fn capture_cell<T>(job: &Job, sink: Option<&SharedSink>, f: impl FnOnce() -> T) -> (T, CellTrace) {
    let start = Instant::now();
    let prev_spill = sink.map(|sink| {
        let sink = Arc::clone(sink);
        let job = job.clone();
        let mut seq = 0u64;
        obs::set_spill(Some(Box::new(move |events: Vec<obs::Event>| {
            let chunk = spill_to_json(&job, seq, &events);
            seq += 1;
            if let Ok(mut w) = sink.lock() {
                let _ = writeln!(w, "{}", chunk.encode());
            }
        })))
    });
    let (value, reg) = obs::capture(f);
    if prev_spill.is_some() {
        obs::set_spill(prev_spill.flatten());
    }
    let wall = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (value, CellTrace::from_registry(job.clone(), wall, reg))
}

fn capture_grid_with_sink(jobs: &[Job], sink: Option<&SharedSink>) -> (CellStore, Vec<CellTrace>) {
    let prev_obs = obs::enabled();
    let prev_forced = schematic_emu::trace::forced();
    obs::set_enabled(true);
    schematic_emu::trace::set_forced(true);
    let table = CostTable::msp430fr5969();
    let results = par_map(jobs, |job| {
        capture_cell(job, sink, || evaluate(job, &table))
    });
    schematic_emu::trace::set_forced(prev_forced);
    obs::set_enabled(prev_obs);
    let mut store = CellStore::new();
    let mut traces = Vec::with_capacity(jobs.len());
    for (job, (value, trace)) in jobs.iter().zip(results) {
        store
            .insert(job.clone(), value)
            .expect("computed cells are deterministic");
        traces.push(trace);
    }
    (store, traces)
}

/// Evaluates `jobs` with observation capture enabled: the cell store
/// (bit-identical to [`CellStore::compute`]) plus one [`CellTrace`]
/// per job, in job order. Per-cell event streams keep the in-memory
/// ring cap (oldest dropped past [`obs::MAX_EVENTS`]); use
/// [`capture_grid_streaming`] to lift it.
///
/// Enables the [`schematic_obs`] collector and forces emulator
/// lifecycle tracing ([`schematic_emu::trace::set_forced`]) for the
/// duration of the call, restoring both flags afterwards.
pub fn capture_grid(jobs: &[Job]) -> (CellStore, Vec<CellTrace>) {
    capture_grid_with_sink(jobs, None)
}

/// Like [`capture_grid`], but writes the complete artifact to `writer`
/// incrementally: overflow event chunks stream out *during* capture
/// (so no event is ever dropped and peak memory stays at the cap), and
/// the per-cell trace lines follow once evaluation finishes. The
/// returned traces hold only each cell's resident tail —
/// [`from_jsonl`] on the written artifact reassembles the full
/// streams.
///
/// # Errors
///
/// The underlying writer error from the trailing trace lines; chunk
/// writes during capture are best-effort (a torn artifact still parses
/// up to the tear).
pub fn capture_grid_streaming(
    jobs: &[Job],
    writer: impl Write + Send + 'static,
) -> std::io::Result<(CellStore, Vec<CellTrace>)> {
    let sink: SharedSink = Arc::new(Mutex::new(Box::new(writer)));
    let (store, traces) = capture_grid_with_sink(jobs, Some(&sink));
    let mut w = sink.lock().expect("no worker holds the sink any more");
    for t in &traces {
        writeln!(w, "{}", trace_to_json(t).encode())?;
    }
    w.flush()?;
    Ok((store, traces))
}

// ---------------------------------------------------------------------
// Artifact codec
// ---------------------------------------------------------------------

fn value_to_json(v: &obs::Value) -> Json {
    match v {
        obs::Value::U64(n) => Json::UInt(*n),
        obs::Value::Str(s) => Json::Str(s.clone()),
    }
}

fn value_from_json(json: &Json) -> Result<obs::Value, GridError> {
    match json {
        Json::UInt(n) => Ok(obs::Value::U64(*n)),
        Json::Str(s) => Ok(obs::Value::Str(s.clone())),
        other => Err(GridError(format!(
            "event field value must be integer or string, got {other:?}"
        ))),
    }
}

fn event_to_json(ev: &obs::Event) -> Json {
    grid::obj(vec![
        ("kind", Json::Str(ev.kind.clone())),
        (
            "fields",
            Json::Arr(
                ev.fields
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), value_to_json(v)]))
                    .collect(),
            ),
        ),
    ])
}

fn event_from_json(json: &Json) -> Result<obs::Event, GridError> {
    let kind = grid::str_field(json, "kind")?;
    let fields_json = match json.get("fields") {
        Some(Json::Arr(items)) => items,
        _ => return Err(GridError("missing or non-array field 'fields'".into())),
    };
    let mut fields = Vec::with_capacity(fields_json.len());
    for item in fields_json {
        let pair = match item {
            Json::Arr(p) if p.len() == 2 => p,
            _ => return Err(GridError("event field must be a [name, value] pair".into())),
        };
        let name = pair[0]
            .as_str()
            .ok_or_else(|| GridError("event field name must be a string".into()))?;
        fields.push((name.to_string(), value_from_json(&pair[1])?));
    }
    Ok(obs::Event { kind, fields })
}

/// Encodes one trace as a JSON object (one artifact line).
pub fn trace_to_json(t: &CellTrace) -> Json {
    grid::obj(vec![
        (
            "job",
            grid::obj({
                let mut fields = vec![
                    ("kind", Json::Str(t.job.kind.name().into())),
                    ("technique", Json::Str(t.job.technique.clone())),
                    ("benchmark", Json::Str(t.job.benchmark.clone())),
                ];
                // Same scenario encoding as the cell artifact codec:
                // legacy numeric `tbpf` for periodic, a `scenario`
                // spelling otherwise.
                match &t.job.scenario {
                    crate::Scenario::Periodic { tbpf } => fields.push(("tbpf", Json::UInt(*tbpf))),
                    other => fields.push(("scenario", Json::Str(other.to_string()))),
                }
                fields
            }),
        ),
        ("wall_nanos", Json::UInt(t.wall_nanos)),
        (
            "phases",
            Json::Arr(
                t.phases
                    .iter()
                    .map(|p| {
                        grid::obj(vec![
                            ("name", Json::Str(p.name.clone())),
                            ("calls", Json::UInt(p.calls)),
                            ("total_nanos", Json::UInt(p.total_nanos)),
                            ("p50_nanos", Json::UInt(p.p50_nanos)),
                            ("p95_nanos", Json::UInt(p.p95_nanos)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "counters",
            Json::Arr(
                t.counters
                    .iter()
                    .map(|(k, n)| Json::Arr(vec![Json::Str(k.clone()), Json::UInt(*n)]))
                    .collect(),
            ),
        ),
        (
            "events",
            Json::Arr(t.events.iter().map(event_to_json).collect()),
        ),
        ("dropped_events", Json::UInt(t.dropped_events)),
        ("spilled_events", Json::UInt(t.spilled_events)),
    ])
}

/// Encodes one spill chunk (a streamed-out slice of a cell's event
/// buffer) as an artifact line: `{"spill":{"job":…,"seq":N,"events":…}}`.
fn spill_to_json(job: &Job, seq: u64, events: &[obs::Event]) -> Json {
    grid::obj(vec![(
        "spill",
        grid::obj(vec![
            ("job", Json::Str(job.to_string())),
            ("seq", Json::UInt(seq)),
            (
                "events",
                Json::Arr(events.iter().map(event_to_json).collect()),
            ),
        ]),
    )])
}

/// Decodes a spill chunk line into `(job key, seq, events)`.
fn spill_from_json(json: &Json) -> Result<(String, u64, Vec<obs::Event>), GridError> {
    let job = grid::str_field(json, "job")?;
    let seq = grid::u64_field(json, "seq")?;
    let events_json = match json.get("events") {
        Some(Json::Arr(items)) => items,
        _ => return Err(GridError("missing or non-array field 'events'".into())),
    };
    let events = events_json
        .iter()
        .map(event_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((job, seq, events))
}

/// Decodes one artifact line back into a trace.
///
/// # Errors
///
/// A [`GridError`] describing the missing or mistyped field.
pub fn trace_from_json(json: &Json) -> Result<CellTrace, GridError> {
    let job_json = json
        .get("job")
        .ok_or_else(|| GridError("missing field 'job'".into()))?;
    let kind_name = grid::str_field(job_json, "kind")?;
    let kind = JobKind::from_name(&kind_name)
        .ok_or_else(|| GridError(format!("unknown cell kind '{kind_name}'")))?;
    let scenario = match job_json.get("scenario") {
        Some(Json::Str(s)) => crate::Scenario::parse(s).map_err(GridError)?,
        Some(_) => return Err(GridError("field 'scenario' is not a string".into())),
        None => crate::Scenario::periodic(grid::u64_field(job_json, "tbpf")?),
    };
    let job = Job {
        kind,
        technique: grid::str_field(job_json, "technique")?,
        benchmark: grid::str_field(job_json, "benchmark")?,
        scenario,
    };
    let phases_json = match json.get("phases") {
        Some(Json::Arr(items)) => items,
        _ => return Err(GridError("missing or non-array field 'phases'".into())),
    };
    let mut phases = Vec::with_capacity(phases_json.len());
    for p in phases_json {
        phases.push(PhaseLine {
            name: grid::str_field(p, "name")?,
            calls: grid::u64_field(p, "calls")?,
            total_nanos: grid::u64_field(p, "total_nanos")?,
            p50_nanos: grid::u64_field(p, "p50_nanos")?,
            p95_nanos: grid::u64_field(p, "p95_nanos")?,
        });
    }
    let counters_json = match json.get("counters") {
        Some(Json::Arr(items)) => items,
        _ => return Err(GridError("missing or non-array field 'counters'".into())),
    };
    let mut counters = Vec::with_capacity(counters_json.len());
    for item in counters_json {
        let pair = match item {
            Json::Arr(p) if p.len() == 2 => p,
            _ => return Err(GridError("counter must be a [name, count] pair".into())),
        };
        let name = pair[0]
            .as_str()
            .ok_or_else(|| GridError("counter name must be a string".into()))?;
        let n = pair[1]
            .as_u64()
            .ok_or_else(|| GridError("counter value must be an unsigned integer".into()))?;
        counters.push((name.to_string(), n));
    }
    let events_json = match json.get("events") {
        Some(Json::Arr(items)) => items,
        _ => return Err(GridError("missing or non-array field 'events'".into())),
    };
    let events = events_json
        .iter()
        .map(event_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CellTrace {
        job,
        wall_nanos: grid::u64_field(json, "wall_nanos")?,
        phases,
        counters,
        events,
        dropped_events: grid::u64_field(json, "dropped_events")?,
        // Absent in pre-streaming artifacts: default to 0.
        spilled_events: json
            .get("spilled_events")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    })
}

/// Serializes traces, one JSON object per line, in the given order.
pub fn to_jsonl(traces: &[CellTrace]) -> String {
    let mut out = String::new();
    for t in traces {
        out.push_str(&trace_to_json(t).encode());
        out.push('\n');
    }
    out
}

/// Parses a trace artifact produced by [`to_jsonl`] or
/// [`capture_grid_streaming`] (blank lines tolerated). Spill chunk
/// lines (`{"spill":…}`) are reassembled: each cell's chunks are
/// ordered by sequence number and spliced back in front of the cell's
/// resident event tail, so the returned traces carry the complete
/// streams.
///
/// # Errors
///
/// A [`GridError`] naming the offending line, a chunk whose cell has
/// no trace line, or a missing chunk in a cell's sequence.
pub fn from_jsonl(text: &str) -> Result<Vec<CellTrace>, GridError> {
    let mut traces: Vec<CellTrace> = Vec::new();
    let mut chunks: BTreeMap<String, Vec<(u64, Vec<obs::Event>)>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        fn err(lineno: usize, e: impl std::fmt::Display) -> GridError {
            GridError(format!("line {}: {e}", lineno + 1))
        }
        let json = Json::parse(line).map_err(|e| err(lineno, e))?;
        match json.get("spill") {
            Some(spill) => {
                let (job, seq, events) = spill_from_json(spill).map_err(|e| err(lineno, e))?;
                chunks.entry(job).or_default().push((seq, events));
            }
            None => traces.push(trace_from_json(&json).map_err(|e| err(lineno, e))?),
        }
    }
    for (job, mut cell_chunks) in chunks {
        let trace = traces
            .iter_mut()
            .find(|t| t.job.to_string() == job)
            .ok_or_else(|| GridError(format!("spill chunks for '{job}' have no trace line")))?;
        cell_chunks.sort_by_key(|(seq, _)| *seq);
        let mut events = Vec::new();
        for (i, (seq, chunk)) in cell_chunks.into_iter().enumerate() {
            if seq != i as u64 {
                return Err(GridError(format!(
                    "spill chunk {i} for '{job}' missing (next has seq {seq})"
                )));
            }
            events.extend(chunk);
        }
        events.append(&mut trace.events);
        trace.events = events;
    }
    Ok(traces)
}

/// Parses a grid cell key in the artifact spelling
/// `kind/technique/benchmark/scenario` (the [`Job`] display form, e.g.
/// `run/Schematic/crc/10000` or `run/Schematic/crc/stoch:10000:2000:3`).
pub fn parse_job_key(key: &str) -> Option<Job> {
    Job::parse(key).ok()
}

// ---------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------

/// The emulator lifecycle event kinds, in no particular order (see
/// [`schematic_emu::trace`] for the schema).
pub const EMU_EVENT_KINDS: [&str; 11] = [
    "run_start",
    "boot",
    "checkpoint_commit",
    "checkpoint_torn",
    "checkpoint_skip",
    "sleep",
    "wakeup",
    "migrate",
    "power_failure",
    "restore",
    "run_end",
];

/// The snapshot fields every emulator event carries.
const SNAPSHOT_KEYS: [&str; 5] = ["comp_pj", "save_pj", "restore_pj", "reexec_pj", "cycles"];

fn ms(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1e6)
}

fn us_per_call(total_nanos: u64, calls: u64) -> String {
    if calls == 0 {
        return "-".into();
    }
    format!("{:.2}", total_nanos as f64 / calls as f64 / 1e3)
}

/// Renders the phase-time table aggregated across all traces: calls,
/// total milliseconds, mean microseconds per call, and each phase's
/// share of the summed span time. Spans nest (the RCG span runs inside
/// the analyze span), so shares are of inclusive time and need not add
/// up to 100.
pub fn render_phase_table(traces: &[CellTrace]) -> String {
    let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for t in traces {
        for p in &t.phases {
            let e = agg.entry(&p.name).or_default();
            e.0 += p.calls;
            e.1 += p.total_nanos;
        }
    }
    if agg.is_empty() {
        return "no spans recorded\n".to_string();
    }
    let grand: u64 = agg.values().map(|(_, total)| *total).sum();
    let mut order: Vec<(&str, u64, u64)> = agg
        .into_iter()
        .map(|(name, (calls, total))| (name, calls, total))
        .collect();
    order.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let headers = vec![
        "phase".to_string(),
        "calls".to_string(),
        "total ms".to_string(),
        "us/call".to_string(),
        "share %".to_string(),
    ];
    let rows: Vec<Vec<String>> = order
        .iter()
        .map(|&(name, calls, total)| {
            vec![
                name.to_string(),
                calls.to_string(),
                ms(total),
                us_per_call(total, calls),
                format!("{:.1}", total as f64 * 100.0 / grand as f64),
            ]
        })
        .collect();
    render_table(&headers, &rows)
}

/// Renders the `k` cells with the largest wall-clock time, with each
/// cell's dominant phase.
pub fn render_hot_cells(traces: &[CellTrace], k: usize) -> String {
    let mut order: Vec<&CellTrace> = traces.iter().collect();
    order.sort_by(|a, b| b.wall_nanos.cmp(&a.wall_nanos).then(a.job.cmp(&b.job)));
    let headers = vec![
        "cell".to_string(),
        "wall ms".to_string(),
        "dominant phase".to_string(),
    ];
    let rows: Vec<Vec<String>> = order
        .iter()
        .take(k)
        .map(|t| {
            let dominant = t
                .phases
                .iter()
                .max_by_key(|p| p.total_nanos)
                .map(|p| format!("{} ({} ms)", p.name, ms(p.total_nanos)))
                .unwrap_or_else(|| "-".to_string());
            vec![t.job.to_string(), ms(t.wall_nanos), dominant]
        })
        .collect();
    render_table(&headers, &rows)
}

fn snapshot_of(ev: &obs::Event) -> [u64; 5] {
    let mut s = [0u64; 5];
    for (i, key) in SNAPSHOT_KEYS.iter().enumerate() {
        s[i] = ev.u64_field(key).unwrap_or(0);
    }
    s
}

fn detail_of(ev: &obs::Event) -> String {
    let parts: Vec<String> = ev
        .fields
        .iter()
        .filter(|(k, _)| !SNAPSHOT_KEYS.contains(&k.as_str()))
        .map(|(k, v)| match v {
            obs::Value::U64(n) => format!("{k}={n}"),
            obs::Value::Str(s) => format!("{k}={s}"),
        })
        .collect();
    parts.join(" ")
}

/// Renders the epoch timeline of one traced cell: every lifecycle
/// event of the cell's *last* emulator run (a cell may run the
/// emulator several times — profiling runs inside compilation, the
/// measured run last), with the Fig. 6 energy delta each
/// inter-checkpoint segment consumed. The closing `run_end` row's
/// cumulative split equals the run's metrics exactly, so the final
/// "Fig. 6 split" line reproduces the cell's energy breakdown from
/// the event stream alone.
pub fn render_timeline(trace: &CellTrace) -> String {
    let events: Vec<&obs::Event> = trace
        .events
        .iter()
        .filter(|e| EMU_EVENT_KINDS.contains(&e.kind.as_str()))
        .collect();
    let mut out = format!("Timeline for {}\n", trace.job);
    if events.is_empty() {
        out.push_str("no emulator events recorded\n");
        return out;
    }
    let runs = events.iter().filter(|e| e.kind == "run_start").count();
    let last_start = events
        .iter()
        .rposition(|e| e.kind == "run_start")
        .unwrap_or(0);
    let segment = &events[last_start..];
    out.push_str(&format!(
        "{} emulator run(s) in this cell; showing the last ({} events)\n",
        runs.max(1),
        segment.len()
    ));
    if trace.dropped_events > 0 {
        out.push_str(&format!(
            "warning: event stream truncated ({} events dropped past the cap)\n",
            trace.dropped_events
        ));
    }
    let headers = vec![
        "event".to_string(),
        "detail".to_string(),
        "d-comp uJ".to_string(),
        "d-save uJ".to_string(),
        "d-restore uJ".to_string(),
        "d-reexec uJ".to_string(),
        "cycles".to_string(),
    ];
    let mut prev = [0u64; 5];
    let mut rows = Vec::with_capacity(segment.len());
    for ev in segment {
        let snap = snapshot_of(ev);
        rows.push(vec![
            ev.kind.clone(),
            detail_of(ev),
            uj(Energy::from_pj(snap[0].saturating_sub(prev[0]))),
            uj(Energy::from_pj(snap[1].saturating_sub(prev[1]))),
            uj(Energy::from_pj(snap[2].saturating_sub(prev[2]))),
            uj(Energy::from_pj(snap[3].saturating_sub(prev[3]))),
            snap[4].to_string(),
        ]);
        prev = snap;
    }
    out.push_str(&render_table(&headers, &rows));
    match segment.last() {
        Some(end) if end.kind == "run_end" => {
            let s = snapshot_of(end);
            out.push_str(&format!(
                "Fig. 6 split: computation {} uJ | save {} uJ | restore {} uJ | re-execution {} uJ\n",
                uj(Energy::from_pj(s[0])),
                uj(Energy::from_pj(s[1])),
                uj(Energy::from_pj(s[2])),
                uj(Energy::from_pj(s[3])),
            ));
        }
        _ => out.push_str("run did not reach run_end (event stream truncated?)\n"),
    }
    out
}

/// Renders the full observability report: the grid-wide phase table,
/// the `top_k` hottest cells, and — when `cell` names a traced job —
/// that cell's epoch timeline.
pub fn render_trace_report(traces: &[CellTrace], cell: Option<&Job>, top_k: usize) -> String {
    let total_events: usize = traces.iter().map(|t| t.events.len()).sum();
    let dropped: u64 = traces.iter().map(|t| t.dropped_events).sum();
    let spilled: u64 = traces.iter().map(|t| t.spilled_events).sum();
    let mut out = format!(
        "Observability report: {} cells, {} events\n",
        traces.len(),
        total_events
    );
    if spilled > 0 {
        out.push_str(&format!(
            "({spilled} events streamed to the artifact as spill chunks)\n"
        ));
    }
    if dropped > 0 {
        out.push_str(&format!(
            "({dropped} events dropped past the per-cell cap)\n"
        ));
    }
    out.push_str("\n== Phase times across the grid ==\n");
    out.push_str(&render_phase_table(traces));
    out.push_str("\n== Hottest cells ==\n");
    out.push_str(&render_hot_cells(traces, top_k));
    if let Some(job) = cell {
        out.push('\n');
        match traces.iter().find(|t| t.job == *job) {
            Some(t) => out.push_str(&render_timeline(t)),
            None => out.push_str(&format!("no trace recorded for cell {job}\n")),
        }
    }
    out
}

/// Compares two trace artifacts phase-by-phase and cell-by-cell:
/// `tracereport --diff BASELINE CANDIDATE`. Wall-clock times are
/// compared per cell (matched by grid key) and per aggregated phase;
/// a cell whose wall time grew by more than `threshold` (a fraction,
/// e.g. `0.25` for +25 %) is *flagged* as regressed. Returns the
/// rendered report and whether any cell was flagged, so the binary
/// can exit nonzero for CI gating.
///
/// Timings are wall-clock and host-sensitive — the threshold exists
/// precisely so jitter does not flag; compare artifacts captured on
/// the same host, and treat single-cell flags as a prompt to re-run,
/// not a verdict.
pub fn render_trace_diff(
    baseline: &[CellTrace],
    candidate: &[CellTrace],
    threshold: f64,
) -> (String, bool) {
    let mut out = format!(
        "Trace diff: {} baseline cell(s) vs {} candidate cell(s), flagging > +{:.0} %\n",
        baseline.len(),
        candidate.len(),
        threshold * 100.0
    );

    // Phase-by-phase: aggregate each side like the phase table does.
    let agg = |traces: &[CellTrace]| {
        let mut m: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for t in traces {
            for p in &t.phases {
                let e = m.entry(p.name.clone()).or_default();
                e.0 += p.calls;
                e.1 += p.total_nanos;
            }
        }
        m
    };
    let (a, b) = (agg(baseline), agg(candidate));
    let names: Vec<&String> = a
        .keys()
        .chain(b.keys().filter(|k| !a.contains_key(*k)))
        .collect();
    let delta_pct = |old: u64, new: u64| -> String {
        if old == 0 {
            return if new == 0 { "-".into() } else { "new".into() };
        }
        format!("{:+.1}", (new as f64 - old as f64) * 100.0 / old as f64)
    };
    out.push_str("\n== Phase times (aggregated) ==\n");
    let headers = vec![
        "phase".to_string(),
        "base ms".to_string(),
        "cand ms".to_string(),
        "delta %".to_string(),
        "base calls".to_string(),
        "cand calls".to_string(),
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|name| {
            let (ac, at) = a.get(*name).copied().unwrap_or((0, 0));
            let (bc, bt) = b.get(*name).copied().unwrap_or((0, 0));
            vec![
                (*name).clone(),
                ms(at),
                ms(bt),
                delta_pct(at, bt),
                ac.to_string(),
                bc.to_string(),
            ]
        })
        .collect();
    out.push_str(&render_table(&headers, &rows));

    // Cell-by-cell wall clock, flagging regressions past the threshold.
    let index: BTreeMap<&Job, &CellTrace> = baseline.iter().map(|t| (&t.job, t)).collect();
    let mut regressed: Vec<(String, u64, u64, f64)> = Vec::new();
    let mut only_candidate = 0usize;
    for t in candidate {
        match index.get(&t.job) {
            Some(base) => {
                let grew = t.wall_nanos as f64 - base.wall_nanos as f64;
                let frac = if base.wall_nanos == 0 {
                    f64::INFINITY
                } else {
                    grew / base.wall_nanos as f64
                };
                if frac > threshold {
                    regressed.push((t.job.to_string(), base.wall_nanos, t.wall_nanos, frac));
                }
            }
            None => only_candidate += 1,
        }
    }
    let candidate_keys: std::collections::BTreeSet<&Job> =
        candidate.iter().map(|t| &t.job).collect();
    let only_baseline = baseline
        .iter()
        .filter(|t| !candidate_keys.contains(&t.job))
        .count();
    regressed.sort_by(|x, y| y.3.total_cmp(&x.3).then(x.0.cmp(&y.0)));
    out.push_str("\n== Regressed cells ==\n");
    if regressed.is_empty() {
        out.push_str(&format!(
            "none (no common cell grew by more than +{:.0} %)\n",
            threshold * 100.0
        ));
    } else {
        let headers = vec![
            "cell".to_string(),
            "base ms".to_string(),
            "cand ms".to_string(),
            "delta %".to_string(),
        ];
        let rows: Vec<Vec<String>> = regressed
            .iter()
            .map(|(key, base, cand, frac)| {
                vec![
                    key.clone(),
                    ms(*base),
                    ms(*cand),
                    format!("{:+.1}", frac * 100.0),
                ]
            })
            .collect();
        out.push_str(&render_table(&headers, &rows));
    }
    if only_baseline > 0 || only_candidate > 0 {
        out.push_str(&format!(
            "(cells without a counterpart: {only_baseline} baseline-only, \
             {only_candidate} candidate-only)\n"
        ));
    }
    let flagged = !regressed.is_empty();
    out.push_str(&format!(
        "verdict: {}\n",
        if flagged {
            "REGRESSED — at least one cell exceeded the threshold"
        } else {
            "OK — no cell exceeded the threshold"
        }
    ));
    (out, flagged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_key_roundtrips_display_form() {
        let job = Job::run("Schematic", "crc", 10_000);
        assert_eq!(parse_job_key(&job.to_string()), Some(job));
        assert_eq!(parse_job_key("run/Schematic/crc"), None);
        assert_eq!(parse_job_key("nope/Schematic/crc/0"), None);
        assert_eq!(parse_job_key("run/Schematic/crc/zero"), None);
    }

    /// A sink handing its bytes back through a shared buffer, so the
    /// test can read what streaming capture wrote.
    struct VecSink(Arc<Mutex<Vec<u8>>>);

    impl Write for VecSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_capture_spills_past_the_cap_and_reassembles() {
        let was = obs::enabled();
        obs::set_enabled(true);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink: SharedSink = Arc::new(Mutex::new(Box::new(VecSink(Arc::clone(&buf)))));
        // Past the cap by 1.5 buffers: two spill batches of half a
        // buffer each must stream out, the rest stays resident.
        let total = 2 * obs::MAX_EVENTS;
        let job = Job::bare("crc");
        let ((), trace) = capture_cell(&job, Some(&sink), || {
            for i in 0..total {
                obs::event("tick", vec![("i", obs::Value::U64(i as u64))]);
            }
        });
        obs::set_enabled(was);
        assert_eq!(trace.spilled_events as usize + trace.events.len(), total);
        assert!(trace.spilled_events > 0, "flood past the cap must spill");
        assert_eq!(trace.dropped_events, 0, "spilling replaces dropping");

        // The artifact = streamed chunks + the trace line; reassembly
        // restores the full ordered stream.
        let mut text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        text.push_str(&trace_to_json(&trace).encode());
        text.push('\n');
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].events.len(), total);
        for (i, ev) in back[0].events.iter().enumerate() {
            assert_eq!(ev.u64_field("i"), Some(i as u64), "event {i} out of order");
        }
    }

    #[test]
    fn spill_chunks_reassemble_by_seq_regardless_of_line_order() {
        let ev = |i: u64| obs::Event {
            kind: "tick".into(),
            fields: vec![("i".into(), obs::Value::U64(i))],
        };
        let job = Job::bare("crc");
        let trace = CellTrace {
            job: job.clone(),
            wall_nanos: 1,
            phases: Vec::new(),
            counters: Vec::new(),
            events: vec![ev(4), ev(5)],
            dropped_events: 0,
            spilled_events: 4,
        };
        // Chunks written out of order (seq 1 before seq 0) still
        // splice back in sequence, ahead of the resident tail.
        let text = format!(
            "{}\n{}\n{}\n",
            spill_to_json(&job, 1, &[ev(2), ev(3)]).encode(),
            trace_to_json(&trace).encode(),
            spill_to_json(&job, 0, &[ev(0), ev(1)]).encode(),
        );
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 1);
        let got: Vec<u64> = back[0]
            .events
            .iter()
            .map(|e| e.u64_field("i").unwrap())
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);

        // An orphan chunk (no trace line for its cell) is an error…
        let orphan = format!(
            "{}\n",
            spill_to_json(&Job::bare("fft"), 0, &[ev(0)]).encode()
        );
        let e = from_jsonl(&orphan).unwrap_err();
        assert!(e.to_string().contains("no trace line"), "got: {e}");

        // …and so is a gap in the sequence.
        let gap = format!(
            "{}\n{}\n",
            spill_to_json(&job, 1, &[ev(2)]).encode(),
            trace_to_json(&trace).encode(),
        );
        let e = from_jsonl(&gap).unwrap_err();
        assert!(e.to_string().contains("missing"), "got: {e}");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = CellTrace {
            job: Job::bare("crc"),
            wall_nanos: 42,
            phases: Vec::new(),
            counters: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
            spilled_events: 0,
        };
        let text = to_jsonl(std::slice::from_ref(&t));
        assert_eq!(from_jsonl(&text).unwrap(), vec![t]);
    }

    #[test]
    fn renderers_tolerate_empty_input() {
        assert!(render_phase_table(&[]).contains("no spans"));
        let t = CellTrace {
            job: Job::bare("crc"),
            wall_nanos: 1,
            phases: Vec::new(),
            counters: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
            spilled_events: 0,
        };
        assert!(render_timeline(&t).contains("no emulator events"));
        let report = render_trace_report(&[t], Some(&Job::bare("fft")), 3);
        assert!(report.contains("no trace recorded for cell bare/-/fft/0"));
    }

    fn cell(name: &str, wall: u64, phase_nanos: u64) -> CellTrace {
        CellTrace {
            job: Job::bare(name),
            wall_nanos: wall,
            phases: vec![PhaseLine {
                name: "cell/emulate".into(),
                calls: 1,
                total_nanos: phase_nanos,
                p50_nanos: phase_nanos,
                p95_nanos: phase_nanos,
            }],
            counters: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
            spilled_events: 0,
        }
    }

    #[test]
    fn diff_flags_only_cells_past_the_threshold() {
        let base = vec![
            cell("crc", 1_000_000, 900_000),
            cell("fft", 1_000_000, 900_000),
        ];
        // crc +50 % (flagged at a 25 % threshold), fft +10 % (not).
        let cand = vec![
            cell("crc", 1_500_000, 1_400_000),
            cell("fft", 1_100_000, 990_000),
        ];
        let (report, flagged) = render_trace_diff(&base, &cand, 0.25);
        assert!(flagged);
        assert!(report.contains("bare/-/crc/0"));
        assert!(!report.contains("bare/-/fft/0"));
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("cell/emulate"));

        let (report, flagged) = render_trace_diff(&base, &cand, 0.60);
        assert!(!flagged);
        assert!(report.contains("OK — no cell exceeded the threshold"));
    }

    #[test]
    fn diff_tolerates_one_sided_cells_and_empty_artifacts() {
        let base = vec![cell("crc", 100, 90), cell("dijkstra", 100, 90)];
        let cand = vec![cell("crc", 100, 90), cell("fft", 100, 90)];
        let (report, flagged) = render_trace_diff(&base, &cand, 0.25);
        assert!(!flagged);
        assert!(report.contains("1 baseline-only, 1 candidate-only"));

        // Wholly new cells (zero-wall baseline is impossible for a real
        // capture, but the renderer must not divide by zero).
        let (report, flagged) = render_trace_diff(&[], &cand, 0.25);
        assert!(!flagged);
        assert!(report.contains("0 baseline cell(s) vs 2 candidate cell(s)"));
        let (_, flagged) = render_trace_diff(&[cell("crc", 0, 0)], &[cell("crc", 1, 1)], 0.25);
        assert!(
            flagged,
            "growth from a zero-wall baseline counts as regressed"
        );
    }
}
