//! # schematic-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§IV), plus Criterion benches for analysis and emulator
//! performance. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.
//!
//! | binary   | regenerates |
//! |----------|-------------|
//! | `table1` | Table I — ability to support limited VM |
//! | `table2` | Table II — execution time and minimal power failures |
//! | `table3` | Table III — ability to enforce forward progress |
//! | `fig6`   | Figure 6 — energy breakdown per technique (TBPF 10k) |
//! | `fig7`   | Figure 7 — SCHEMATIC vs All-NVM computation split |
//! | `fig8`   | Figure 8 — impact of capacitor size on `crc` |
//! | `ablations` | extension: design-choice ablations (Eq. 2 liveness, gain/size ordering) |
//! | `exp_all` | all of the above in sequence |

#![warn(missing_docs)]
#![warn(clippy::all)]

use schematic_baselines::Technique;
use schematic_core::SchematicConfig;
use schematic_emu::{InstrumentedModule, Machine, Metrics, PowerModel, RunConfig, RunStatus};
use schematic_energy::{CostTable, Energy};
use schematic_ir::Module;

/// The platform's VM size (MSP430FR5969: 2 KB).
pub const SVM_BYTES: usize = 2048;

/// The paper's three TBPF settings (cycles).
pub const TBPFS: [u64; 3] = [1_000, 10_000, 100_000];

/// The TBPF used for the energy studies (§IV-C picks 10k as the
/// trade-off point).
pub const ENERGY_TBPF: u64 = 10_000;

/// Benchmark seed used across all experiments (inputs are baked per
/// seed; the profile uses the same seed as the evaluation run, like the
/// paper's trace-then-measure methodology).
pub const SEED: u64 = 1;

/// Derives the energy budget `EB` from a TBPF: with the cheapest cycle
/// costing `cpu_pj_per_cycle`, an interval of `EB` energy can never
/// outlast `tbpf` cycles, so wait-mode placements are sound under the
/// periodic failure model (the paper sets `EB` to the energy consumed
/// per TBPF window, §IV-C).
pub fn eb_for_tbpf(table: &CostTable, tbpf: u64) -> Energy {
    Energy::from_pj(table.cpu_pj_per_cycle) * tbpf
}

/// The five techniques of the evaluation, in the paper's order.
pub fn technique_names() -> Vec<&'static str> {
    vec!["Ratchet", "Mementos", "Rockclimb", "Alfred", "Schematic"]
}

/// Whether `technique` can run `module` with `SVM_BYTES` of VM
/// (Table I's criterion).
pub fn technique_supports(technique: &str, module: &Module) -> bool {
    match technique {
        "Schematic" => true, // accounts for SVM by construction
        name => baseline_by_name(name).supports(module, SVM_BYTES),
    }
}

fn baseline_by_name(name: &str) -> Box<dyn Technique> {
    schematic_baselines::all()
        .into_iter()
        .find(|t| t.name() == name)
        .unwrap_or_else(|| panic!("unknown technique '{name}'"))
}

/// Compiles `module` with the named technique for budget `eb`.
///
/// # Errors
///
/// Propagates the technique's placement errors (e.g. a budget too small
/// for any sound placement).
pub fn compile_technique(
    technique: &str,
    module: &Module,
    table: &CostTable,
    eb: Energy,
) -> Result<InstrumentedModule, schematic_core::PlacementError> {
    match technique {
        "Schematic" => {
            let mut config = SchematicConfig::new(eb);
            config.svm_bytes = SVM_BYTES;
            Ok(schematic_core::compile(module, table, &config)?.instrumented)
        }
        name => baseline_by_name(name).compile(module, table, eb),
    }
}

/// Outcome of one experiment cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Technique name.
    pub technique: String,
    /// Benchmark name.
    pub benchmark: String,
    /// `None` when the technique cannot even start (VM too small or no
    /// sound placement exists).
    pub outcome: Option<(RunStatus, bool, Metrics)>,
}

impl Cell {
    /// `true` when the run completed with the correct result — the ✓ of
    /// Table III.
    pub fn ok(&self) -> bool {
        matches!(self.outcome, Some((RunStatus::Completed, true, _)))
    }
}

/// Runs one `(technique, benchmark, tbpf)` cell of the evaluation.
pub fn run_cell(
    technique: &str,
    bench: &schematic_benchsuite::Benchmark,
    table: &CostTable,
    tbpf: u64,
) -> Cell {
    let module = (bench.build)(SEED);
    if !technique_supports(technique, &module) {
        return Cell {
            technique: technique.into(),
            benchmark: bench.name.into(),
            outcome: None,
        };
    }
    let eb = eb_for_tbpf(table, tbpf);
    let im = match compile_technique(technique, &module, table, eb) {
        Ok(im) => im,
        Err(_) => {
            return Cell {
                technique: technique.into(),
                benchmark: bench.name.into(),
                outcome: None,
            }
        }
    };
    let mut cfg = RunConfig {
        power: PowerModel::Periodic { tbpf },
        svm_bytes: usize::MAX / 2, // fit checked statically above
        ..RunConfig::default()
    };
    cfg.max_active_cycles = 4_000_000_000;
    let out = Machine::new(&im, table, cfg)
        .run()
        .expect("benchmarks never trap");
    let correct = out.result == Some((bench.oracle)(SEED));
    Cell {
        technique: technique.into(),
        benchmark: bench.name.into(),
        outcome: Some((out.status, correct, out.metrics)),
    }
}

/// Renders an ASCII table.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, row: &[String]| {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:>w$}", cell, w = widths[i]));
        }
        out.push('\n');
    };
    line(&mut out, headers);
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats energy as µJ with three decimals.
pub fn uj(e: Energy) -> String {
    format!("{:.3}", e.as_uj())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eb_mapping_is_linear() {
        let t = CostTable::msp430fr5969();
        assert_eq!(
            eb_for_tbpf(&t, 10_000).as_pj(),
            10_000 * t.cpu_pj_per_cycle
        );
    }

    #[test]
    fn technique_roster() {
        assert_eq!(technique_names().len(), 5);
        let m = schematic_benchsuite::crc::build(1);
        for t in technique_names() {
            // crc fits VM: everything supports it.
            assert!(technique_supports(t, &m), "{t}");
        }
        let big = schematic_benchsuite::dijkstra::build(1);
        assert!(!technique_supports("Mementos", &big));
        assert!(!technique_supports("Alfred", &big));
        assert!(technique_supports("Ratchet", &big));
        assert!(technique_supports("Rockclimb", &big));
        assert!(technique_supports("Schematic", &big));
    }

    #[test]
    fn run_cell_randmath_all_techniques() {
        let table = CostTable::msp430fr5969();
        let bench = schematic_benchsuite::by_name("randmath").unwrap();
        for t in technique_names() {
            let cell = run_cell(t, &bench, &table, 10_000);
            assert!(cell.ok(), "{t}: {:?}", cell.outcome.map(|o| o.0));
        }
    }

    #[test]
    fn render_table_aligns() {
        let s = render_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()]],
        );
        assert!(s.contains("a  bb"));
        assert!(s.contains("1   2"));
    }
}
