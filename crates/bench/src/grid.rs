//! The experiment grid as data: jobs, shards, and the keyed cell store.
//!
//! The paper's evaluation is one grid — techniques × benchmarks × TBPF
//! settings — but it used to live implicitly inside nine report
//! functions that each re-enumerated and re-computed overlapping slices
//! of it. This module makes the grid first-class:
//!
//! 1. **Grid layer** — [`GridSpec`] enumerates the full experiment
//!    space as a sorted, deduplicated list of [`Job`]s with a stable
//!    total order, and [`GridSpec::shard`] slices it deterministically
//!    for multi-process (or multi-host) runs.
//! 2. **Compute layer** — [`CellStore::compute`] evaluates jobs into
//!    cell values exactly once, fanning out over
//!    [`crate::parallel::par_map`]; [`CellStore::to_jsonl`] /
//!    [`CellStore::from_jsonl`] serialize cells to a line-oriented JSON
//!    artifact (one cell per line, hand-rolled in [`crate::json`] — the
//!    build is offline) so shards can move between processes and hosts
//!    as plain files, and [`CellStore::merge_from`] folds them back
//!    deterministically (duplicate cells must agree, conflicts are
//!    errors).
//! 3. **Render layer** — the report functions in
//!    [`crate::experiments`] are pure functions from a store to
//!    strings; because fig6 and fig8 read the same `run` cells as
//!    Table III, the union grid computes each shared cell once.
//!
//! The `gridrun` binary drives the pipeline from the command line
//! (`--shard i/N`, `--merge`, `--spawn N`).

use crate::json::Json;
use crate::parallel::par_map;
use crate::scenario::Scenario;
use crate::{
    eb_for_tbpf, technique_names, technique_supports, Cell, CellOutcome, ENERGY_TBPF, SEED,
    SVM_BYTES, TBPFS,
};
use schematic_core::{compile, SchematicConfig};
use schematic_emu::{InstrumentedModule, Machine, Metrics, PowerModel, RunConfig, RunStatus};
use schematic_energy::CostTable;
use schematic_ir::hash::Digest;
use std::collections::BTreeMap;
use std::fmt;

/// The kind of computation one grid cell performs.
///
/// The derived order (together with [`Job`]'s field order) fixes the
/// grid's stable total order — shard slicing and artifact merging rely
/// on it being identical on every host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobKind {
    /// Table I: can the technique run the benchmark in `SVM_BYTES` of
    /// VM at all?
    Support,
    /// Table II: continuous-power, all-VM run (cycle count + data
    /// footprint).
    Bare,
    /// Tables III / Figures 6 & 8: one `(technique, benchmark, tbpf)`
    /// intermittent run via [`crate::run_cell`].
    Run,
    /// Figure 7: Schematic vs All-NVM computation split at the energy
    /// TBPF.
    Fig7,
    /// Ablations: one design-choice variant at the energy TBPF.
    Ablation,
    /// Ablations: deep-sleep vs retentive-sleep totals.
    Retentive,
    /// Soundcheck: static WAR-hazard classification per region.
    Sound,
    /// Soundcheck: emulator shadow-recorder cross-validation across all
    /// TBPFs.
    Shadow,
}

impl JobKind {
    /// The artifact spelling (`"run"`, `"fig7"`, …).
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Support => "support",
            JobKind::Bare => "bare",
            JobKind::Run => "run",
            JobKind::Fig7 => "fig7",
            JobKind::Ablation => "ablation",
            JobKind::Retentive => "retentive",
            JobKind::Sound => "sound",
            JobKind::Shadow => "shadow",
        }
    }

    /// Inverse of [`JobKind::name`].
    pub fn from_name(name: &str) -> Option<JobKind> {
        Some(match name {
            "support" => JobKind::Support,
            "bare" => JobKind::Bare,
            "run" => JobKind::Run,
            "fig7" => JobKind::Fig7,
            "ablation" => JobKind::Ablation,
            "retentive" => JobKind::Retentive,
            "sound" => JobKind::Sound,
            "shadow" => JobKind::Shadow,
            _ => return None,
        })
    }
}

/// One point of the experiment grid — the key of the cell store.
///
/// Fields that a kind does not vary hold a canonical placeholder
/// (`technique = "-"` for per-benchmark kinds, a periodic scenario at
/// `0` where the power model is fixed or absent); the constructors
/// enforce this so equal experiments always have equal keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Job {
    /// What to compute.
    pub kind: JobKind,
    /// Technique name — or the ablation/fig7 variant label for those
    /// kinds, `"-"` for per-benchmark kinds.
    pub technique: String,
    /// Benchmark name.
    pub benchmark: String,
    /// The power scenario; `Periodic { tbpf: 0 }` for kinds whose
    /// power model is fixed or absent. Periodic scenarios sort first,
    /// by TBPF, so legacy jobs keep their positions in the grid's
    /// stable total order.
    pub scenario: Scenario,
}

impl Job {
    /// A Table I support-check job.
    pub fn support(technique: &str, benchmark: &str) -> Job {
        Job {
            kind: JobKind::Support,
            technique: technique.into(),
            benchmark: benchmark.into(),
            scenario: Scenario::periodic(0),
        }
    }

    /// A Table II continuous-power job.
    pub fn bare(benchmark: &str) -> Job {
        Job {
            kind: JobKind::Bare,
            technique: "-".into(),
            benchmark: benchmark.into(),
            scenario: Scenario::periodic(0),
        }
    }

    /// An intermittent-run job (Table III and, at [`ENERGY_TBPF`],
    /// Figures 6 and 8).
    pub fn run(technique: &str, benchmark: &str, tbpf: u64) -> Job {
        Job::run_scenario(technique, benchmark, Scenario::periodic(tbpf))
    }

    /// An intermittent-run job under an arbitrary power scenario (the
    /// robustness report's axis).
    pub fn run_scenario(technique: &str, benchmark: &str, scenario: Scenario) -> Job {
        Job {
            kind: JobKind::Run,
            technique: technique.into(),
            benchmark: benchmark.into(),
            scenario,
        }
    }

    /// A Figure 7 job; `variant` is `"Schematic"` or `"All-NVM"`.
    pub fn fig7(variant: &str, benchmark: &str) -> Job {
        Job {
            kind: JobKind::Fig7,
            technique: variant.into(),
            benchmark: benchmark.into(),
            scenario: Scenario::periodic(ENERGY_TBPF),
        }
    }

    /// An ablation job; `variant` is `"full"`, `"no-liveness"` or
    /// `"no-ratio"`.
    pub fn ablation(variant: &str, benchmark: &str) -> Job {
        Job {
            kind: JobKind::Ablation,
            technique: variant.into(),
            benchmark: benchmark.into(),
            scenario: Scenario::periodic(ENERGY_TBPF),
        }
    }

    /// A retentive-sleep comparison job.
    pub fn retentive(benchmark: &str) -> Job {
        Job {
            kind: JobKind::Retentive,
            technique: "-".into(),
            benchmark: benchmark.into(),
            scenario: Scenario::periodic(ENERGY_TBPF),
        }
    }

    /// A static soundness-classification job.
    pub fn sound(technique: &str, benchmark: &str) -> Job {
        Job {
            kind: JobKind::Sound,
            technique: technique.into(),
            benchmark: benchmark.into(),
            scenario: Scenario::periodic(ENERGY_TBPF),
        }
    }

    /// A shadow cross-validation job (sweeps every TBPF internally).
    pub fn shadow(technique: &str, benchmark: &str) -> Job {
        Job {
            kind: JobKind::Shadow,
            technique: technique.into(),
            benchmark: benchmark.into(),
            scenario: Scenario::periodic(0),
        }
    }

    /// The raw TBPF when the job's scenario is periodic (every legacy
    /// job); the renderers for the paper's figures use this.
    pub fn tbpf(&self) -> Option<u64> {
        self.scenario.as_periodic()
    }

    /// Parses the artifact spelling `kind/technique/benchmark/scenario`
    /// (the [`Job`] display form, e.g. `run/Schematic/crc/10000` or
    /// `run/Schematic/crc/stoch:10000:2000:3`) — the inverse of
    /// [`Job`]'s `Display`. The legacy `…/tbpf` spelling *is* the
    /// periodic scenario spelling, so old keys parse unchanged.
    ///
    /// # Errors
    ///
    /// A reason string naming the malformed field.
    pub fn parse(key: &str) -> Result<Job, String> {
        let parts: Vec<&str> = key.split('/').collect();
        if parts.len() != 4 {
            return Err(format!(
                "job key {key:?}: want kind/technique/benchmark/scenario, got {} field(s)",
                parts.len()
            ));
        }
        let kind = JobKind::from_name(parts[0])
            .ok_or_else(|| format!("job key {key:?}: unknown kind {:?}", parts[0]))?;
        let scenario = Scenario::parse(parts[3]).map_err(|e| format!("job key {key:?}: {e}"))?;
        Ok(Job {
            kind,
            technique: parts[1].to_string(),
            benchmark: parts[2].to_string(),
            scenario,
        })
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.kind.name(),
            self.technique,
            self.benchmark,
            self.scenario
        )
    }
}

/// Static soundness counts — the data behind one soundcheck row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoundCounts {
    /// Inter-checkpoint regions found.
    pub regions: u64,
    /// Regions classified `idempotent`.
    pub idempotent: u64,
    /// Regions classified `war-free`.
    pub war_free: u64,
    /// Regions classified `shielded`.
    pub shielded: u64,
    /// Regions classified `hazardous`.
    pub hazardous: u64,
    /// `pverify`'s forward-progress verdict on the placement.
    pub placement_sound: bool,
}

/// The value of one computed cell, tagged by the kind that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// [`JobKind::Support`]: the technique can run the benchmark.
    Support(bool),
    /// [`JobKind::Bare`]: continuous-power cycle count and the
    /// module's data footprint in bytes.
    Bare {
        /// Active cycles of the all-VM continuous-power run.
        cycles: u64,
        /// `Module::data_bytes()` — Table I's footprint listing.
        data_bytes: u64,
    },
    /// [`JobKind::Run`]: a [`crate::run_cell`] outcome (the payload of
    /// [`Cell`], without the redundant key fields).
    Run {
        /// `None` when the technique cannot even start.
        outcome: Option<CellOutcome>,
        /// Why `outcome` is `None`.
        reason: Option<String>,
    },
    /// [`JobKind::Fig7`] / [`JobKind::Ablation`]: full metrics, or a
    /// `note` row (an `error: …` / `anomaly: …` message).
    Measured {
        /// The run's metrics when the variant compiled and ran.
        metrics: Option<Metrics>,
        /// The rendered failure cell otherwise.
        note: Option<String>,
    },
    /// [`JobKind::Retentive`]: total energy in picojoules under both
    /// sleep modes.
    Retentive {
        /// Deep-sleep total (pJ).
        deep_pj: u64,
        /// Retentive-sleep total (pJ).
        retentive_pj: u64,
    },
    /// [`JobKind::Sound`]: classification counts, or a skip `note`
    /// (`unsupported`, `error: …`).
    Sound {
        /// Region classification counts when the analysis ran.
        counts: Option<SoundCounts>,
        /// The rendered skip cell otherwise.
        note: Option<String>,
    },
    /// [`JobKind::Shadow`]: distinct WAR variables the recorder
    /// observed across all TBPFs (`None` when the combination was
    /// skipped), and how many of those the static analysis missed.
    Shadow {
        /// Distinct observed WAR variables, when the cell ran.
        observed: Option<u64>,
        /// Observed WARs the static analysis did not predict.
        unpredicted: u64,
    },
}

/// Which report a [`GridSpec`] serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportId {
    /// Table I.
    Table1,
    /// Table II.
    Table2,
    /// Table III.
    Table3,
    /// Figure 6.
    Fig6,
    /// Figure 7.
    Fig7,
    /// Figure 8.
    Fig8,
    /// Design-choice ablations + retentive sleep.
    Ablations,
    /// WAR-hazard soundness check.
    Soundcheck,
}

/// All reports, in `exp_all`'s section order.
pub const ALL_REPORTS: [ReportId; 8] = [
    ReportId::Table1,
    ReportId::Table2,
    ReportId::Table3,
    ReportId::Fig6,
    ReportId::Fig7,
    ReportId::Fig8,
    ReportId::Ablations,
    ReportId::Soundcheck,
];

/// Grid size selector.
///
/// The modes only differ in the soundcheck slice: `Quick` classifies
/// Schematic + Ratchet statically (the CI configuration), `Full` sweeps
/// all five techniques and adds the emulator shadow cross-validation
/// cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridMode {
    /// CI-sized grid: static soundcheck of Schematic + Ratchet only.
    Quick,
    /// The whole evaluation, shadow cross-validation included.
    Full,
}

/// The fig7 variant labels, in row order.
pub const FIG7_VARIANTS: [&str; 2] = ["Schematic", "All-NVM"];

/// The ablation variant labels, in row order.
pub const ABLATION_VARIANTS: [&str; 3] = ["full", "no-liveness", "no-ratio"];

/// The techniques the quick soundcheck sweeps (the guarded ones).
pub const SOUND_QUICK_TECHNIQUES: [&str; 2] = ["Schematic", "Ratchet"];

/// The jobs one report needs, before deduplication against other
/// reports.
pub fn report_jobs(report: ReportId, mode: GridMode) -> Vec<Job> {
    let benches = schematic_benchsuite::all();
    let mut jobs = Vec::new();
    match report {
        ReportId::Table1 => {
            for tech in technique_names() {
                for b in &benches {
                    jobs.push(Job::support(tech, b.name));
                }
            }
            // The footprint listing under the table reads the `bare`
            // cells' `data_bytes`.
            for b in &benches {
                jobs.push(Job::bare(b.name));
            }
        }
        ReportId::Table2 => {
            for b in &benches {
                jobs.push(Job::bare(b.name));
            }
        }
        ReportId::Table3 => {
            for tbpf in TBPFS {
                for tech in technique_names() {
                    for b in &benches {
                        jobs.push(Job::run(tech, b.name, tbpf));
                    }
                }
            }
        }
        ReportId::Fig6 => {
            for b in &benches {
                for tech in technique_names() {
                    jobs.push(Job::run(tech, b.name, ENERGY_TBPF));
                }
            }
        }
        ReportId::Fig7 => {
            for b in &benches {
                for variant in FIG7_VARIANTS {
                    jobs.push(Job::fig7(variant, b.name));
                }
            }
        }
        ReportId::Fig8 => {
            for tech in technique_names() {
                for tbpf in TBPFS {
                    jobs.push(Job::run(tech, "crc", tbpf));
                }
            }
        }
        ReportId::Ablations => {
            for b in &benches {
                for variant in ABLATION_VARIANTS {
                    jobs.push(Job::ablation(variant, b.name));
                }
                jobs.push(Job::retentive(b.name));
            }
        }
        ReportId::Soundcheck => {
            let techniques: Vec<&str> = match mode {
                GridMode::Quick => SOUND_QUICK_TECHNIQUES.to_vec(),
                GridMode::Full => technique_names(),
            };
            for tech in &techniques {
                for b in &benches {
                    jobs.push(Job::sound(tech, b.name));
                }
            }
            if mode == GridMode::Full {
                for tech in &techniques {
                    for b in &benches {
                        jobs.push(Job::shadow(tech, b.name));
                    }
                }
            }
        }
    }
    jobs
}

/// A sorted, deduplicated slice of the experiment space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    mode: GridMode,
    jobs: Vec<Job>,
}

impl GridSpec {
    /// The union of every report's jobs — what `exp_all` and `gridrun`
    /// compute. Shared cells (fig6 and fig8 read Table III's `run`
    /// cells; Table I reads Table II's `bare` cells) appear once.
    pub fn full_grid(mode: GridMode) -> GridSpec {
        let mut jobs: Vec<Job> = ALL_REPORTS
            .into_iter()
            .flat_map(|r| report_jobs(r, mode))
            .collect();
        jobs.sort();
        jobs.dedup();
        GridSpec { mode, jobs }
    }

    /// The jobs one report needs, as a spec (sorted and deduplicated).
    pub fn for_report(report: ReportId, mode: GridMode) -> GridSpec {
        let mut jobs = report_jobs(report, mode);
        jobs.sort();
        jobs.dedup();
        GridSpec { mode, jobs }
    }

    /// The mode this spec was built for.
    pub fn mode(&self) -> GridMode {
        self.mode
    }

    /// The jobs, in the grid's stable total order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the spec is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Deterministic shard `i` of `n`: every `n`-th job starting at
    /// `i`. Round-robin keeps the expensive kinds (which cluster in the
    /// sorted order) spread across shards. The `n` shards partition
    /// [`GridSpec::jobs`] exactly.
    ///
    /// # Panics
    ///
    /// When `n == 0` or `i >= n`.
    pub fn shard(&self, i: usize, n: usize) -> Vec<Job> {
        assert!(n >= 1, "shard count must be at least 1");
        assert!(i < n, "shard index {i} out of range for {n} shards");
        self.jobs.iter().skip(i).step_by(n).cloned().collect()
    }

    /// Total job count when every report enumerates its slice
    /// independently (the pre-store behaviour) — the denominator of the
    /// dedup win recorded by `perfsmoke`.
    pub fn naive_job_count(mode: GridMode) -> usize {
        ALL_REPORTS
            .into_iter()
            .map(|r| report_jobs(r, mode).len())
            .sum()
    }
}

/// A grid-layer error: artifact syntax, merge conflicts, coverage gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError(pub String);

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for GridError {}

/// The keyed cell store: each grid job's value, computed exactly once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellStore {
    cells: BTreeMap<Job, CellValue>,
}

impl CellStore {
    /// An empty store.
    pub fn new() -> CellStore {
        CellStore::default()
    }

    /// Evaluates `jobs` (fanning out over the parallel driver) into a
    /// store. Each job is computed once; results are independent of
    /// worker count and job order.
    pub fn compute(jobs: &[Job]) -> CellStore {
        CellStore::compute_with_progress(jobs, &|_, _| {})
    }

    /// Like [`CellStore::compute`], additionally calling
    /// `progress(done, total)` after each completed cell. The callback
    /// runs on worker threads (hence `Sync`) and completion order is
    /// nondeterministic, but `done` is a monotone global count.
    pub fn compute_with_progress(
        jobs: &[Job],
        progress: &(impl Fn(usize, usize) + Sync),
    ) -> CellStore {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let table = CostTable::msp430fr5969();
        let total = jobs.len();
        let done = AtomicUsize::new(0);
        let values = par_map(jobs, |job| {
            let value = evaluate(job, &table);
            progress(done.fetch_add(1, Ordering::Relaxed) + 1, total);
            value
        });
        let mut store = CellStore::new();
        for (job, value) in jobs.iter().zip(values) {
            store
                .insert(job.clone(), value)
                .expect("computed cells are deterministic");
        }
        store
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell for `job`, if present.
    pub fn get(&self, job: &Job) -> Option<&CellValue> {
        self.cells.get(job)
    }

    /// The cell for `job`; panics with the job key when absent — the
    /// render layer calls this only after coverage was verified.
    pub fn value(&self, job: &Job) -> &CellValue {
        self.get(job)
            .unwrap_or_else(|| panic!("cell store is missing {job}"))
    }

    /// Inserts one cell. Re-inserting an identical value is a no-op
    /// (merging overlapping shards is fine); a conflicting value is an
    /// error (two shards disagreeing would mean non-deterministic
    /// compute).
    ///
    /// # Errors
    ///
    /// A [`GridError`] naming the job on conflict.
    pub fn insert(&mut self, job: Job, value: CellValue) -> Result<(), GridError> {
        match self.cells.get(&job) {
            Some(existing) if *existing != value => Err(GridError(format!(
                "conflicting values for cell {job}: merge is not deterministic"
            ))),
            Some(_) => Ok(()),
            None => {
                self.cells.insert(job, value);
                Ok(())
            }
        }
    }

    /// Folds `other` into `self` with [`CellStore::insert`]'s
    /// duplicate rules.
    ///
    /// # Errors
    ///
    /// The first conflicting cell, as a [`GridError`].
    pub fn merge_from(&mut self, other: CellStore) -> Result<(), GridError> {
        for (job, value) in other.cells {
            self.insert(job, value)?;
        }
        Ok(())
    }

    /// The jobs of `spec` that have no cell yet (coverage check before
    /// rendering a merged store).
    pub fn missing<'a>(&self, jobs: &'a [Job]) -> Vec<&'a Job> {
        jobs.iter()
            .filter(|j| !self.cells.contains_key(j))
            .collect()
    }

    /// Reconstructs the [`Cell`] for a periodic `run` job (key fields
    /// restored from the job).
    pub fn run_cell(&self, technique: &str, benchmark: &str, tbpf: u64) -> Cell {
        self.run_cell_scenario(technique, benchmark, Scenario::periodic(tbpf))
    }

    /// Reconstructs the [`Cell`] for a `run` job under any scenario.
    pub fn run_cell_scenario(&self, technique: &str, benchmark: &str, scenario: Scenario) -> Cell {
        let job = Job::run_scenario(technique, benchmark, scenario);
        match self.value(&job) {
            CellValue::Run { outcome, reason } => Cell {
                technique: technique.into(),
                benchmark: benchmark.into(),
                outcome: outcome.clone(),
                reason: reason.clone(),
            },
            other => panic!("cell {job} has kind {other:?}, expected run"),
        }
    }

    /// Serializes every cell, one JSON object per line, in the grid's
    /// stable order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (job, value) in &self.cells {
            out.push_str(&cell_to_json(job, value).encode());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL artifact produced by [`CellStore::to_jsonl`]
    /// (blank lines tolerated), applying the merge duplicate rules.
    ///
    /// # Errors
    ///
    /// A [`GridError`] naming the offending line on syntax errors,
    /// unknown kinds, or conflicting duplicates.
    pub fn from_jsonl(text: &str) -> Result<CellStore, GridError> {
        let mut store = CellStore::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let json =
                Json::parse(line).map_err(|e| GridError(format!("line {}: {e}", lineno + 1)))?;
            let (job, value) = cell_from_json(&json)
                .map_err(|e| GridError(format!("line {}: {e}", lineno + 1)))?;
            store.insert(job, value)?;
        }
        Ok(store)
    }
}

// ---------------------------------------------------------------------
// Compute kernels
// ---------------------------------------------------------------------

/// Evaluates one job. The kernels are verbatim moves of the old
/// per-report closures; the asserts (completion, oracle agreement) stay
/// in the compute layer so a bad placement fails the compute, not the
/// render.
pub fn evaluate(job: &Job, table: &CostTable) -> CellValue {
    evaluate_traced(job, table).0
}

/// Like [`evaluate`], additionally returning the stable digests of
/// every `InstrumentedModule` the kernel compiled (empty when nothing
/// compiled, e.g. unsupported or placement-rejected cells). The digest
/// list is the content-addressed part of the cell cache key: a cell's
/// value is a pure function of (job, cost table, compiled programs,
/// run configs), and the last two are captured by
/// [`crate::cache::cell_key`].
pub fn evaluate_traced(job: &Job, table: &CostTable) -> (CellValue, Vec<Digest>) {
    match job.kind {
        JobKind::Support => {
            let b = bench(&job.benchmark);
            let value = CellValue::Support(technique_supports(&job.technique, &(b.build)(SEED)));
            (value, Vec::new())
        }
        JobKind::Bare => {
            let b = bench(&job.benchmark);
            let module = (b.build)(SEED);
            let data_bytes = module.data_bytes() as u64;
            let im = InstrumentedModule::bare_all_vm(module);
            let digest = im.stable_digest();
            let run = Machine::new(&im, table, bare_run_config())
                .run()
                .expect("no traps");
            assert!(run.completed());
            assert_eq!(run.result, Some((b.oracle)(SEED)), "{}", b.name);
            let value = CellValue::Bare {
                cycles: run.metrics.active_cycles,
                data_bytes,
            };
            (value, vec![digest])
        }
        JobKind::Run => {
            let b = bench(&job.benchmark);
            let (cell, digest) =
                crate::run_cell_scenario_traced(&job.technique, &b, table, &job.scenario);
            let value = CellValue::Run {
                outcome: cell.outcome,
                reason: cell.reason,
            };
            (value, digest.into_iter().collect())
        }
        JobKind::Fig7 => evaluate_fig7(job, table),
        JobKind::Ablation => evaluate_ablation(job, table),
        JobKind::Retentive => evaluate_retentive(job, table),
        JobKind::Sound => evaluate_sound(job, table),
        JobKind::Shadow => evaluate_shadow(job, table),
    }
}

fn bench(name: &str) -> schematic_benchsuite::Benchmark {
    schematic_benchsuite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark '{name}'"))
}

// The `RunConfig` constructors are shared between the kernels below
// and [`write_job_identity`], so the cache key can never drift from
// what the kernels actually execute.

/// Table II's continuous-power config (VM limit lifted).
fn bare_run_config() -> RunConfig {
    RunConfig {
        svm_bytes: usize::MAX / 2, // Table II ignores the VM limit
        ..RunConfig::default()
    }
}

/// The energy studies' periodic-power config (fig7 / ablations).
fn periodic_run_config(tbpf: u64) -> RunConfig {
    RunConfig {
        power: PowerModel::Periodic { tbpf },
        ..RunConfig::default()
    }
}

/// The retentive-sleep comparison config.
fn retentive_run_config(retentive: bool) -> RunConfig {
    RunConfig {
        retentive_sleep: retentive,
        ..periodic_run_config(ENERGY_TBPF)
    }
}

/// The shadow cross-validation config (WAR recorder on).
fn shadow_run_config(tbpf: u64) -> RunConfig {
    RunConfig {
        shadow_war: true,
        ..crate::intermittent_run_config(tbpf)
    }
}

/// The compile configuration a job uses, when its kind compiles with
/// an explicit [`SchematicConfig`] (fig7 variants and ablations); the
/// `compile_technique` kinds use the technique-default configuration
/// keyed separately by [`write_job_identity`].
fn job_compile_config(job: &Job, table: &CostTable) -> Option<SchematicConfig> {
    let eb = eb_for_tbpf(table, ENERGY_TBPF);
    match job.kind {
        JobKind::Fig7 => {
            let mut config = SchematicConfig::new(eb);
            config.svm_bytes = if job.technique == "All-NVM" {
                0
            } else {
                SVM_BYTES
            };
            Some(config)
        }
        JobKind::Ablation => {
            let (liveness, ratio) = match job.technique.as_str() {
                "full" => (true, true),
                "no-liveness" => (false, true),
                "no-ratio" => (true, false),
                other => panic!("unknown ablation variant '{other}'"),
            };
            let mut config = SchematicConfig::new(eb);
            config.svm_bytes = SVM_BYTES;
            config.liveness_opt = liveness;
            config.ratio_ordering = ratio;
            Some(config)
        }
        JobKind::Retentive => {
            let mut config = SchematicConfig::new(eb);
            config.svm_bytes = SVM_BYTES;
            Some(config)
        }
        _ => None,
    }
}

/// Feeds every configuration input that shapes a job's outcome — the
/// compile configuration and each `RunConfig` its kernel executes, in
/// kernel order — into a stable hasher. Together with the job key
/// fields, the cost-table identity and the compiled-program digests,
/// this pins down everything a cell's value is a function of.
pub(crate) fn write_job_identity(
    job: &Job,
    table: &CostTable,
    h: &mut schematic_ir::hash::StableHasher,
) {
    h.write_usize(SVM_BYTES);
    h.write_u64(SEED);
    if let Some(config) = job_compile_config(job, table) {
        config.identity_into(h);
    }
    match job.kind {
        JobKind::Support => {}
        JobKind::Bare => bare_run_config().identity_into(h),
        JobKind::Run => {
            // Resolving the scenario loads (and hashes the contents of)
            // a recorded trace, so editing a trace file invalidates its
            // cached cells; a missing trace file is a hard error here
            // because a key must never silently fall back.
            let power = job
                .scenario
                .power_model()
                .unwrap_or_else(|e| panic!("cell {job}: {e}"));
            h.write_u64(eb_for_tbpf(table, power.min_window_cycles()).as_pj());
            crate::intermittent_run_config_model(power).identity_into(h);
        }
        JobKind::Fig7 | JobKind::Ablation => periodic_run_config(ENERGY_TBPF).identity_into(h),
        JobKind::Retentive => {
            retentive_run_config(false).identity_into(h);
            retentive_run_config(true).identity_into(h);
        }
        JobKind::Sound => h.write_u64(eb_for_tbpf(table, ENERGY_TBPF).as_pj()),
        JobKind::Shadow => {
            h.write_u64(eb_for_tbpf(table, ENERGY_TBPF).as_pj());
            for tbpf in TBPFS {
                shadow_run_config(tbpf).identity_into(h);
            }
        }
    }
}

fn evaluate_fig7(job: &Job, table: &CostTable) -> (CellValue, Vec<Digest>) {
    let b = bench(&job.benchmark);
    let eb = eb_for_tbpf(table, ENERGY_TBPF);
    let m = (b.build)(SEED);
    let config = job_compile_config(job, table).expect("fig7 compiles explicitly");
    let compiled = match compile(&m, table, &config) {
        Ok(c) => c,
        Err(e) => {
            let value = CellValue::Measured {
                metrics: None,
                note: Some(format!("error: {e}")),
            };
            return (value, Vec::new());
        }
    };
    let digests = vec![compiled.instrumented.stable_digest()];
    // An anomalous placement is footnoted, not measured: its energy
    // numbers would come from runs that can corrupt results.
    match schematic_core::check_all(&compiled.instrumented, table, eb) {
        Ok(report) if !report.anomalies.is_sound() => {
            let value = CellValue::Measured {
                metrics: None,
                note: Some(format!("anomaly: {}", report.verdict_named(&m))),
            };
            return (value, digests);
        }
        _ => {}
    }
    let run = Machine::new(
        &compiled.instrumented,
        table,
        periodic_run_config(ENERGY_TBPF),
    )
    .run()
    .expect("no traps");
    assert!(run.completed(), "{} {}", b.name, job.technique);
    assert_eq!(run.result, Some((b.oracle)(SEED)));
    let value = CellValue::Measured {
        metrics: Some(run.metrics),
        note: None,
    };
    (value, digests)
}

fn evaluate_ablation(job: &Job, table: &CostTable) -> (CellValue, Vec<Digest>) {
    let b = bench(&job.benchmark);
    let m = (b.build)(SEED);
    let config = job_compile_config(job, table).expect("ablation compiles explicitly");
    let compiled = match compile(&m, table, &config) {
        Ok(c) => c,
        Err(e) => {
            let value = CellValue::Measured {
                metrics: None,
                note: Some(format!("error: {e}")),
            };
            return (value, Vec::new());
        }
    };
    let digests = vec![compiled.instrumented.stable_digest()];
    let run = Machine::new(
        &compiled.instrumented,
        table,
        periodic_run_config(ENERGY_TBPF),
    )
    .run()
    .expect("no traps");
    assert!(run.completed(), "{} {}", b.name, job.technique);
    assert_eq!(
        run.result,
        Some((b.oracle)(SEED)),
        "{} {}",
        b.name,
        job.technique
    );
    let value = CellValue::Measured {
        metrics: Some(run.metrics),
        note: None,
    };
    (value, digests)
}

fn evaluate_retentive(job: &Job, table: &CostTable) -> (CellValue, Vec<Digest>) {
    let b = bench(&job.benchmark);
    let m = (b.build)(SEED);
    let config = job_compile_config(job, table).expect("retentive compiles explicitly");
    let compiled = compile(&m, table, &config).expect("compiles");
    let digests = vec![compiled.instrumented.stable_digest()];
    let mut total = [0u64; 2];
    for (i, retentive) in [false, true].into_iter().enumerate() {
        let run = Machine::new(
            &compiled.instrumented,
            table,
            retentive_run_config(retentive),
        )
        .run()
        .expect("no traps");
        assert!(run.completed());
        assert_eq!(run.result, Some((b.oracle)(SEED)));
        total[i] = run.metrics.total_energy().as_pj();
    }
    let value = CellValue::Retentive {
        deep_pj: total[0],
        retentive_pj: total[1],
    };
    (value, digests)
}

fn evaluate_sound(job: &Job, table: &CostTable) -> (CellValue, Vec<Digest>) {
    let b = bench(&job.benchmark);
    let eb = eb_for_tbpf(table, ENERGY_TBPF);
    let module = (b.build)(SEED);
    let skip = |note: String| CellValue::Sound {
        counts: None,
        note: Some(note),
    };
    if !technique_supports(&job.technique, &module) {
        return (skip("unsupported".into()), Vec::new());
    }
    let im = match crate::compile_technique(&job.technique, &module, table, eb) {
        Ok(im) => im,
        Err(e) => return (skip(format!("error: {e}")), Vec::new()),
    };
    let digests = vec![im.stable_digest()];
    let report = match schematic_core::check_all(&im, table, eb) {
        Ok(r) => r,
        Err(e) => return (skip(format!("error: {e}")), digests),
    };
    let [idem, free, shielded, hazardous] = report.anomalies.class_counts();
    let value = CellValue::Sound {
        counts: Some(SoundCounts {
            regions: report.anomalies.regions.len() as u64,
            idempotent: idem as u64,
            war_free: free as u64,
            shielded: shielded as u64,
            hazardous: hazardous as u64,
            placement_sound: report.placement.is_sound(),
        }),
        note: None,
    };
    (value, digests)
}

fn evaluate_shadow(job: &Job, table: &CostTable) -> (CellValue, Vec<Digest>) {
    let b = bench(&job.benchmark);
    let eb = eb_for_tbpf(table, ENERGY_TBPF);
    let module = (b.build)(SEED);
    let skipped = CellValue::Shadow {
        observed: None,
        unpredicted: 0,
    };
    if !technique_supports(&job.technique, &module) {
        return (skipped, Vec::new());
    }
    let im = match crate::compile_technique(&job.technique, &module, table, eb) {
        Ok(im) => im,
        Err(_) => return (skipped, Vec::new()),
    };
    let digests = vec![im.stable_digest()];
    let report = match schematic_core::check_all(&im, table, eb) {
        Ok(r) => r,
        Err(_) => return (skipped, digests),
    };
    // Shadow cross-validation: run under every TBPF with the recorder
    // on; every per-element WAR the emulator actually observes must be
    // covered by a statically predicted anomaly footprint.
    let mut observed: Vec<(schematic_ir::VarId, u32)> = Vec::new();
    for tbpf in TBPFS {
        if let Ok(run) = Machine::new(&im, table, shadow_run_config(tbpf)).run() {
            observed.extend(run.shadow.expect("shadow requested").war_elems());
        }
    }
    observed.sort_unstable();
    observed.dedup();
    let unpredicted = observed
        .iter()
        .filter(|&&(v, e)| !report.anomalies.predicts_element(v, e))
        .count();
    // `observed` renders as distinct variables (stable across the
    // granularity change); the coverage check above is per element.
    let mut observed_vars: Vec<schematic_ir::VarId> = observed.iter().map(|&(v, _)| v).collect();
    observed_vars.dedup();
    let value = CellValue::Shadow {
        observed: Some(observed_vars.len() as u64),
        unpredicted: unpredicted as u64,
    };
    (value, digests)
}

// ---------------------------------------------------------------------
// Artifact codec
// ---------------------------------------------------------------------

pub(crate) fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn opt_str(v: &Option<String>) -> Json {
    match v {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

/// Encodes one cell as a JSON object (one artifact line).
pub fn cell_to_json(job: &Job, value: &CellValue) -> Json {
    let value_json = match value {
        CellValue::Support(supported) => obj(vec![("supported", Json::Bool(*supported))]),
        CellValue::Bare { cycles, data_bytes } => obj(vec![
            ("cycles", Json::UInt(*cycles)),
            ("data_bytes", Json::UInt(*data_bytes)),
        ]),
        CellValue::Run { outcome, reason } => {
            let outcome_json = match outcome {
                Some(o) => obj(vec![
                    ("status", Json::Str(status_name(o.status).into())),
                    ("correct", Json::Bool(o.correct)),
                    ("metrics", metrics_to_json(&o.metrics)),
                ]),
                None => Json::Null,
            };
            obj(vec![("outcome", outcome_json), ("reason", opt_str(reason))])
        }
        CellValue::Measured { metrics, note } => {
            let metrics_json = match metrics {
                Some(m) => metrics_to_json(m),
                None => Json::Null,
            };
            obj(vec![("metrics", metrics_json), ("note", opt_str(note))])
        }
        CellValue::Retentive {
            deep_pj,
            retentive_pj,
        } => obj(vec![
            ("deep_pj", Json::UInt(*deep_pj)),
            ("retentive_pj", Json::UInt(*retentive_pj)),
        ]),
        CellValue::Sound { counts, note } => {
            let counts_json = match counts {
                Some(c) => obj(vec![
                    ("regions", Json::UInt(c.regions)),
                    ("idempotent", Json::UInt(c.idempotent)),
                    ("war_free", Json::UInt(c.war_free)),
                    ("shielded", Json::UInt(c.shielded)),
                    ("hazardous", Json::UInt(c.hazardous)),
                    ("placement_sound", Json::Bool(c.placement_sound)),
                ]),
                None => Json::Null,
            };
            obj(vec![("counts", counts_json), ("note", opt_str(note))])
        }
        CellValue::Shadow {
            observed,
            unpredicted,
        } => obj(vec![
            (
                "observed",
                match observed {
                    Some(n) => Json::UInt(*n),
                    None => Json::Null,
                },
            ),
            ("unpredicted", Json::UInt(*unpredicted)),
        ]),
    };
    let mut fields = vec![
        ("kind", Json::Str(job.kind.name().into())),
        ("technique", Json::Str(job.technique.clone())),
        ("benchmark", Json::Str(job.benchmark.clone())),
    ];
    // Periodic cells keep the legacy numeric `tbpf` field (artifact
    // lines stay byte-identical); other scenarios carry their key
    // spelling in a `scenario` string.
    match &job.scenario {
        Scenario::Periodic { tbpf } => fields.push(("tbpf", Json::UInt(*tbpf))),
        other => fields.push(("scenario", Json::Str(other.to_string()))),
    }
    fields.push(("value", value_json));
    obj(fields)
}

/// Decodes one artifact line back into a cell.
///
/// # Errors
///
/// A [`GridError`] describing the missing or mistyped field.
pub fn cell_from_json(json: &Json) -> Result<(Job, CellValue), GridError> {
    let kind_name = str_field(json, "kind")?;
    let kind = JobKind::from_name(&kind_name)
        .ok_or_else(|| GridError(format!("unknown cell kind '{kind_name}'")))?;
    let scenario = match json.get("scenario") {
        Some(Json::Str(s)) => Scenario::parse(s).map_err(GridError)?,
        Some(_) => return Err(GridError("field 'scenario' is not a string".into())),
        None => Scenario::periodic(u64_field(json, "tbpf")?),
    };
    let job = Job {
        kind,
        technique: str_field(json, "technique")?,
        benchmark: str_field(json, "benchmark")?,
        scenario,
    };
    let value_json = json
        .get("value")
        .ok_or_else(|| GridError("missing field 'value'".into()))?;
    let value = match kind {
        JobKind::Support => CellValue::Support(bool_field(value_json, "supported")?),
        JobKind::Bare => CellValue::Bare {
            cycles: u64_field(value_json, "cycles")?,
            data_bytes: u64_field(value_json, "data_bytes")?,
        },
        JobKind::Run => {
            let outcome = match value_json.get("outcome") {
                None | Some(Json::Null) => None,
                Some(o) => Some(CellOutcome {
                    status: status_from_name(&str_field(o, "status")?)?,
                    correct: bool_field(o, "correct")?,
                    metrics: metrics_from_json(
                        o.get("metrics")
                            .ok_or_else(|| GridError("missing field 'metrics'".into()))?,
                    )?,
                }),
            };
            CellValue::Run {
                outcome,
                reason: opt_str_field(value_json, "reason")?,
            }
        }
        JobKind::Fig7 | JobKind::Ablation => {
            let metrics = match value_json.get("metrics") {
                None | Some(Json::Null) => None,
                Some(m) => Some(metrics_from_json(m)?),
            };
            CellValue::Measured {
                metrics,
                note: opt_str_field(value_json, "note")?,
            }
        }
        JobKind::Retentive => CellValue::Retentive {
            deep_pj: u64_field(value_json, "deep_pj")?,
            retentive_pj: u64_field(value_json, "retentive_pj")?,
        },
        JobKind::Sound => {
            let counts = match value_json.get("counts") {
                None | Some(Json::Null) => None,
                Some(c) => Some(SoundCounts {
                    regions: u64_field(c, "regions")?,
                    idempotent: u64_field(c, "idempotent")?,
                    war_free: u64_field(c, "war_free")?,
                    shielded: u64_field(c, "shielded")?,
                    hazardous: u64_field(c, "hazardous")?,
                    placement_sound: bool_field(c, "placement_sound")?,
                }),
            };
            CellValue::Sound {
                counts,
                note: opt_str_field(value_json, "note")?,
            }
        }
        JobKind::Shadow => CellValue::Shadow {
            observed: match value_json.get("observed") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    GridError("field 'observed' is not an unsigned integer".into())
                })?),
            },
            unpredicted: u64_field(value_json, "unpredicted")?,
        },
    };
    Ok((job, value))
}

fn status_name(status: RunStatus) -> &'static str {
    match status {
        RunStatus::Completed => "completed",
        RunStatus::Livelock => "livelock",
        RunStatus::CycleLimit => "cycle_limit",
        RunStatus::FailureLimit => "failure_limit",
    }
}

fn status_from_name(name: &str) -> Result<RunStatus, GridError> {
    Ok(match name {
        "completed" => RunStatus::Completed,
        "livelock" => RunStatus::Livelock,
        "cycle_limit" => RunStatus::CycleLimit,
        "failure_limit" => RunStatus::FailureLimit,
        other => return Err(GridError(format!("unknown run status '{other}'"))),
    })
}

pub(crate) fn str_field(json: &Json, key: &str) -> Result<String, GridError> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| GridError(format!("missing or non-string field '{key}'")))
}

fn opt_str_field(json: &Json, key: &str) -> Result<Option<String>, GridError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(GridError(format!("field '{key}' is not a string or null"))),
    }
}

pub(crate) fn u64_field(json: &Json, key: &str) -> Result<u64, GridError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| GridError(format!("missing or non-integer field '{key}'")))
}

fn bool_field(json: &Json, key: &str) -> Result<bool, GridError> {
    json.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| GridError(format!("missing or non-bool field '{key}'")))
}

/// Projects one [`Metrics`] field to its serialized `u64`.
type MetricGetter = fn(&Metrics) -> u64;

/// `(label, getter)` pairs for every [`Metrics`] field, in struct
/// order; the single source of truth for the metrics codec.
const METRIC_FIELDS: [(&str, MetricGetter); 23] = [
    ("computation_pj", |m| m.computation.as_pj()),
    ("save_pj", |m| m.save.as_pj()),
    ("restore_pj", |m| m.restore.as_pj()),
    ("reexecution_pj", |m| m.reexecution.as_pj()),
    ("cpu_energy_pj", |m| m.cpu_energy.as_pj()),
    ("vm_access_energy_pj", |m| m.vm_access_energy.as_pj()),
    ("nvm_access_energy_pj", |m| m.nvm_access_energy.as_pj()),
    ("active_cycles", |m| m.active_cycles),
    ("power_failures", |m| m.power_failures),
    ("checkpoints_committed", |m| m.checkpoints_committed),
    ("checkpoints_skipped", |m| m.checkpoints_skipped),
    ("sleep_events", |m| m.sleep_events),
    ("restores", |m| m.restores),
    ("implicit_restores", |m| m.implicit_restores),
    ("implicit_saves", |m| m.implicit_saves),
    ("unexpected_failures", |m| m.unexpected_failures),
    ("vm_reads", |m| m.vm_reads),
    ("vm_writes", |m| m.vm_writes),
    ("nvm_reads", |m| m.nvm_reads),
    ("nvm_writes", |m| m.nvm_writes),
    ("coherence_violations", |m| m.coherence_violations),
    ("peak_vm_bytes", |m| m.peak_vm_bytes as u64),
    ("insts_retired", |m| m.insts_retired),
];

/// Encodes [`Metrics`] field-by-field (all integers — exact).
pub fn metrics_to_json(m: &Metrics) -> Json {
    Json::Obj(
        METRIC_FIELDS
            .iter()
            .map(|(name, get)| (name.to_string(), Json::UInt(get(m))))
            .collect(),
    )
}

/// Inverse of [`metrics_to_json`].
///
/// # Errors
///
/// A [`GridError`] naming the missing field.
pub fn metrics_from_json(json: &Json) -> Result<Metrics, GridError> {
    use schematic_energy::Energy;
    let f = |key: &str| u64_field(json, key);
    Ok(Metrics {
        computation: Energy::from_pj(f("computation_pj")?),
        save: Energy::from_pj(f("save_pj")?),
        restore: Energy::from_pj(f("restore_pj")?),
        reexecution: Energy::from_pj(f("reexecution_pj")?),
        cpu_energy: Energy::from_pj(f("cpu_energy_pj")?),
        vm_access_energy: Energy::from_pj(f("vm_access_energy_pj")?),
        nvm_access_energy: Energy::from_pj(f("nvm_access_energy_pj")?),
        active_cycles: f("active_cycles")?,
        power_failures: f("power_failures")?,
        checkpoints_committed: f("checkpoints_committed")?,
        checkpoints_skipped: f("checkpoints_skipped")?,
        sleep_events: f("sleep_events")?,
        restores: f("restores")?,
        implicit_restores: f("implicit_restores")?,
        implicit_saves: f("implicit_saves")?,
        unexpected_failures: f("unexpected_failures")?,
        vm_reads: f("vm_reads")?,
        vm_writes: f("vm_writes")?,
        nvm_reads: f("nvm_reads")?,
        nvm_writes: f("nvm_writes")?,
        coherence_violations: f("coherence_violations")?,
        peak_vm_bytes: f("peak_vm_bytes")? as usize,
        insts_retired: f("insts_retired")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_stable_and_deduped() {
        let spec = GridSpec::full_grid(GridMode::Full);
        let jobs = spec.jobs();
        assert!(jobs.windows(2).all(|w| w[0] < w[1]), "sorted, no dupes");
        // The union is strictly smaller than the per-report sum: fig6
        // and fig8 share Table III's run cells, Table I shares Table
        // II's bare cells.
        assert!(spec.len() < GridSpec::naive_job_count(GridMode::Full));
        // 40 support + 8 bare + 120 run + 16 fig7 + 24 ablation +
        // 8 retentive + 40 sound + 40 shadow.
        assert_eq!(spec.len(), 296);
        assert_eq!(GridSpec::naive_job_count(GridMode::Full), 359);
    }

    #[test]
    fn quick_grid_drops_shadow_cells() {
        let quick = GridSpec::full_grid(GridMode::Quick);
        assert!(quick.jobs().iter().all(|j| j.kind != JobKind::Shadow));
        assert_eq!(
            quick
                .jobs()
                .iter()
                .filter(|j| j.kind == JobKind::Sound)
                .count(),
            16
        );
    }

    #[test]
    fn shards_partition_the_grid() {
        let spec = GridSpec::full_grid(GridMode::Quick);
        for n in [1, 2, 3, 7, 13] {
            let mut union: Vec<Job> = (0..n).flat_map(|i| spec.shard(i, n)).collect();
            union.sort();
            assert_eq!(union, spec.jobs(), "n = {n}");
            // Round-robin balance: sizes differ by at most one.
            let sizes: Vec<usize> = (0..n).map(|i| spec.shard(i, n).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "n = {n}: {sizes:?}");
        }
    }

    #[test]
    fn insert_rejects_conflicts_and_accepts_duplicates() {
        let mut store = CellStore::new();
        let job = Job::support("Schematic", "crc");
        store.insert(job.clone(), CellValue::Support(true)).unwrap();
        store.insert(job.clone(), CellValue::Support(true)).unwrap();
        assert_eq!(store.len(), 1);
        let err = store.insert(job, CellValue::Support(false)).unwrap_err();
        assert!(err.0.contains("conflicting"), "{err}");
    }

    #[test]
    fn missing_lists_uncovered_jobs() {
        let spec = GridSpec::for_report(ReportId::Table2, GridMode::Quick);
        let mut store = CellStore::new();
        assert_eq!(store.missing(spec.jobs()).len(), spec.len());
        store
            .insert(
                spec.jobs()[0].clone(),
                CellValue::Bare {
                    cycles: 1,
                    data_bytes: 2,
                },
            )
            .unwrap();
        assert_eq!(store.missing(spec.jobs()).len(), spec.len() - 1);
    }

    #[test]
    fn jsonl_roundtrips_a_computed_slice() {
        // Cheap real cells: the support row plus table2's bare runs for
        // one small benchmark.
        let jobs = vec![
            Job::support("Mementos", "randmath"),
            Job::bare("randmath"),
            Job::run("Schematic", "randmath", ENERGY_TBPF),
        ];
        let store = CellStore::compute(&jobs);
        let text = store.to_jsonl();
        assert_eq!(text.lines().count(), 3, "one cell per line");
        let decoded = CellStore::from_jsonl(&text).unwrap();
        assert_eq!(decoded, store);
    }

    #[test]
    fn from_jsonl_reports_bad_lines() {
        assert!(CellStore::from_jsonl("{\"kind\":\"nope\"}\n").is_err());
        assert!(CellStore::from_jsonl("not json\n").is_err());
        // Conflicting duplicate across lines.
        let a = cell_to_json(&Job::support("Schematic", "crc"), &CellValue::Support(true));
        let b = cell_to_json(
            &Job::support("Schematic", "crc"),
            &CellValue::Support(false),
        );
        let text = format!("{}\n{}\n", a.encode(), b.encode());
        assert!(CellStore::from_jsonl(&text).is_err());
    }
}
