//! Report generators behind the experiment binaries.
//!
//! Each `*_report` function returns the full stdout of the matching
//! binary (`table1`…`ablations`); the binaries are thin `print!`
//! wrappers. Keeping the logic in the library lets `exp_all` regenerate
//! everything in-process (no per-binary `cargo run` spawns) and lets the
//! independent experiment cells fan out over [`crate::parallel::par_map`]
//! workers. Cell results are consumed in input order, so the reports are
//! byte-identical no matter how many workers run (`SCHEMATIC_JOBS`).

use crate::parallel::par_map;
use crate::{
    eb_for_tbpf, render_table, run_cell, technique_names, technique_supports, uj, Cell,
    ENERGY_TBPF, SEED, SVM_BYTES, TBPFS,
};
use schematic_benchsuite::Benchmark;
use schematic_core::{compile, SchematicConfig};
use schematic_emu::{InstrumentedModule, Machine, PowerModel, RunConfig};
use schematic_energy::{CostTable, Energy};
use std::fmt::Write;

/// Table I — ability to support limited VM space (§IV-B).
pub fn table1_report() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table I: ability to support limited VM space (SVM = {SVM_BYTES} B)\n"
    )
    .unwrap();
    let benches = schematic_benchsuite::all();
    let mut headers = vec!["technique".to_string()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));

    let items: Vec<(&str, &Benchmark)> = technique_names()
        .into_iter()
        .flat_map(|t| benches.iter().map(move |b| (t, b)))
        .collect();
    let supported = par_map(&items, |&(tech, b)| {
        technique_supports(tech, &(b.build)(SEED))
    });

    let mut rows = Vec::new();
    let mut it = supported.into_iter();
    for tech in technique_names() {
        let mut row = vec![tech.to_string()];
        for _ in &benches {
            row.push(if it.next().unwrap() { "ok" } else { "X" }.into());
        }
        rows.push(row);
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(out, "data footprints:").unwrap();
    for b in &benches {
        let m = (b.build)(SEED);
        writeln!(out, "  {:>10}: {:>6} B", b.name, m.data_bytes()).unwrap();
    }
    writeln!(
        out,
        "\npaper: Ratchet/Rockclimb/Schematic support all eight; Mementos and\n\
         Alfred fail dijkstra, fft and rc4 (data larger than the 2 KB VM)."
    )
    .unwrap();
    out
}

/// Table II — execution time and minimal number of power failures
/// (§IV-C).
pub fn table2_report() -> String {
    let mut out = String::new();
    writeln!(out, "Table II: execution time and minimal power failures\n").unwrap();
    let table = CostTable::msp430fr5969();
    let mut headers = vec!["benchmark".to_string(), "cycles".to_string()];
    headers.extend(TBPFS.iter().map(|t| format!("TBPF={t}")));

    let benches = schematic_benchsuite::all();
    let rows = par_map(&benches, |b| {
        let im = InstrumentedModule::bare_all_vm((b.build)(SEED));
        let cfg = RunConfig {
            svm_bytes: usize::MAX / 2, // Table II ignores the VM limit
            ..RunConfig::default()
        };
        let run = Machine::new(&im, &table, cfg).run().expect("no traps");
        assert!(run.completed());
        assert_eq!(run.result, Some((b.oracle)(SEED)), "{}", b.name);
        let cycles = run.metrics.active_cycles;
        let mut row = vec![b.name.to_string(), cycles.to_string()];
        row.extend(TBPFS.iter().map(|t| (cycles / t).to_string()));
        row
    });
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "paper (cycles): aes 1079k, basicmath 170k, bitcount 819k, crc 41k,\n\
         dijkstra 1382k, fft 378k, randmath 15k, rc4 437k."
    )
    .unwrap();
    out
}

/// Table III — ability to enforce forward progress (§IV-C).
pub fn table3_report() -> String {
    let mut out = String::new();
    writeln!(out, "Table III: ability to enforce forward progress\n").unwrap();
    let table = CostTable::msp430fr5969();
    let benches = schematic_benchsuite::all();

    let mut items: Vec<(u64, &str, &Benchmark)> = Vec::new();
    for &tbpf in &TBPFS {
        for tech in technique_names() {
            for b in &benches {
                items.push((tbpf, tech, b));
            }
        }
    }
    let cells = par_map(&items, |&(tbpf, tech, b)| run_cell(tech, b, &table, tbpf));

    let mut it = cells.into_iter();
    for &tbpf in &TBPFS {
        writeln!(out, "TBPF = {tbpf} cycles").unwrap();
        let mut headers = vec!["technique".to_string()];
        headers.extend(benches.iter().map(|b| b.name.to_string()));
        let mut rows = Vec::new();
        for tech in technique_names() {
            let mut row = vec![tech.to_string()];
            for _ in &benches {
                row.push(if it.next().unwrap().ok() { "ok" } else { "X" }.into());
            }
            rows.push(row);
        }
        writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    }
    writeln!(
        out,
        "paper: Rockclimb and Schematic complete everything at every TBPF;\n\
         Ratchet fails aes at 1k; Mementos fails most at 1k/10k and the\n\
         VM-oversized kernels everywhere; Alfred fails several at 1k/10k."
    )
    .unwrap();
    out
}

/// Figure 6 — energy breakdown per technique at TBPF = 10k (§IV-D).
pub fn fig6_report() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 6: energy breakdown at TBPF = {ENERGY_TBPF} cycles (uJ)\n"
    )
    .unwrap();
    let table = CostTable::msp430fr5969();
    let headers: Vec<String> = [
        "benchmark",
        "technique",
        "computation",
        "save",
        "restore",
        "re-execution",
        "total",
        "status",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let benches = schematic_benchsuite::all();
    let items: Vec<(&Benchmark, &str)> = benches
        .iter()
        .flat_map(|b| technique_names().into_iter().map(move |t| (b, t)))
        .collect();
    let cells: Vec<Cell> = par_map(&items, |&(b, tech)| run_cell(tech, b, &table, ENERGY_TBPF));

    let mut schematic_totals: Vec<f64> = Vec::new();
    let mut baseline_totals: Vec<f64> = Vec::new();
    let mut schematic_cycles: Vec<f64> = Vec::new();
    let mut baseline_cycles: Vec<f64> = Vec::new();

    let mut rows = Vec::new();
    let mut it = cells.into_iter();
    for b in &benches {
        let mut schematic_total: Option<Energy> = None;
        let mut bench_baselines: Vec<Energy> = Vec::new();
        for tech in technique_names() {
            let cell = it.next().unwrap();
            let row = match &cell.outcome {
                None => vec![
                    b.name.to_string(),
                    tech.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "X (cannot run)".into(),
                ],
                Some((status, correct, m)) => {
                    let total = m.total_energy();
                    if cell.ok() {
                        if tech == "Schematic" {
                            schematic_total = Some(total);
                            schematic_cycles.push(m.active_cycles as f64);
                        } else {
                            bench_baselines.push(total);
                            baseline_cycles.push(m.active_cycles as f64);
                        }
                    }
                    vec![
                        b.name.to_string(),
                        tech.to_string(),
                        uj(m.computation),
                        uj(m.save),
                        uj(m.restore),
                        uj(m.reexecution),
                        uj(total),
                        if cell.ok() {
                            "ok".into()
                        } else {
                            format!("X {status:?} correct={correct}")
                        },
                    ]
                }
            };
            rows.push(row);
        }
        if let Some(s) = schematic_total {
            for base in bench_baselines {
                schematic_totals.push(s.as_uj());
                baseline_totals.push(base.as_uj());
            }
        }
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();

    // Headline: average reduction vs completed baselines (§IV-D: 51 %).
    if !schematic_totals.is_empty() {
        let ratios: Vec<f64> = schematic_totals
            .iter()
            .zip(&baseline_totals)
            .map(|(s, b)| 1.0 - s / b)
            .collect();
        let avg = 100.0 * ratios.iter().sum::<f64>() / ratios.len() as f64;
        writeln!(
            out,
            "\nSCHEMATIC vs completed baselines: average energy reduction = {avg:.1} % \
             (paper: 51 %)"
        )
        .unwrap();
        // §IV-D also reports a 54 % average *execution time* reduction
        // (active cycles; standby time excluded on both sides).
        let ours: f64 = schematic_cycles.iter().sum::<f64>() / schematic_cycles.len() as f64;
        let theirs: f64 = baseline_cycles.iter().sum::<f64>() / baseline_cycles.len() as f64;
        writeln!(
            out,
            "average active-cycle reduction = {:.1} % (paper: 54 % execution time)",
            100.0 * (1.0 - ours / theirs)
        )
        .unwrap();
    }
    out
}

/// One fig7 variant's result: the rendered row, plus the stats feeding
/// the summary when the variant compiled and ran.
struct Fig7Row {
    row: Vec<String>,
    /// `(computation_uj, vm_access_fraction)`.
    stats: Option<(f64, f64)>,
}

/// Figure 7 — SCHEMATIC vs All-NVM computation split (§IV-E).
///
/// A variant without a sound placement (e.g. a kernel whose mandatory
/// state cannot close any interval with zero VM) renders an error row
/// and is excluded, together with its partner variant, from the summary
/// averages — it no longer aborts the whole report.
pub fn fig7_report() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 7: Schematic vs All-NVM computation split at TBPF = {ENERGY_TBPF} (uJ)\n"
    )
    .unwrap();
    let table = CostTable::msp430fr5969();
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let headers: Vec<String> = [
        "benchmark",
        "variant",
        "no-mem CPU",
        "VM acc",
        "NVM acc",
        "save",
        "restore",
        "total",
        "VM acc share",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let benches = schematic_benchsuite::all();
    let items: Vec<(&Benchmark, &str, bool)> = benches
        .iter()
        .flat_map(|b| [("Schematic", false), ("All-NVM", true)].map(move |(l, n)| (b, l, n)))
        .collect();
    let results = par_map(&items, |&(b, label, all_nvm)| {
        let m = (b.build)(SEED);
        let mut config = SchematicConfig::new(eb);
        config.svm_bytes = if all_nvm { 0 } else { SVM_BYTES };
        let compiled = match compile(&m, &table, &config) {
            Ok(c) => c,
            Err(e) => {
                let mut row = vec![b.name.to_string(), label.to_string(), format!("error: {e}")];
                row.resize(9, String::new());
                return Fig7Row { row, stats: None };
            }
        };
        // An anomalous placement is footnoted, not measured: its energy
        // numbers would come from runs that can corrupt results.
        match schematic_core::check_all(&compiled.instrumented, &table, eb) {
            Ok(report) if !report.anomalies.is_sound() => {
                let mut row = vec![
                    b.name.to_string(),
                    label.to_string(),
                    format!("anomaly: {}", report.verdict()),
                ];
                row.resize(9, String::new());
                return Fig7Row { row, stats: None };
            }
            _ => {}
        }
        let cfg = RunConfig {
            power: PowerModel::Periodic { tbpf: ENERGY_TBPF },
            ..RunConfig::default()
        };
        let run = Machine::new(&compiled.instrumented, &table, cfg)
            .run()
            .expect("no traps");
        assert!(run.completed(), "{} {label}", b.name);
        assert_eq!(run.result, Some((b.oracle)(SEED)));
        let mt = &run.metrics;
        let exec_total = mt.computation + mt.save + mt.restore;
        Fig7Row {
            row: vec![
                b.name.to_string(),
                label.to_string(),
                uj(mt.cpu_energy),
                uj(mt.vm_access_energy),
                uj(mt.nvm_access_energy),
                uj(mt.save),
                uj(mt.restore),
                uj(exec_total),
                format!("{:.0} %", 100.0 * mt.vm_access_fraction()),
            ],
            stats: Some((mt.computation.as_uj(), mt.vm_access_fraction())),
        }
    });

    let mut hybrid_sum = 0.0;
    let mut nvm_sum = 0.0;
    let mut vm_fracs = Vec::new();
    let mut excluded = 0usize;
    for pair in results.chunks(2) {
        match (&pair[0].stats, &pair[1].stats) {
            (Some((h, frac)), Some((n, _))) => {
                hybrid_sum += h;
                nvm_sum += n;
                vm_fracs.push(*frac);
            }
            _ => excluded += 1,
        }
    }
    let rows: Vec<Vec<String>> = results.into_iter().map(|r| r.row).collect();
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    if excluded > 0 {
        writeln!(
            out,
            "\n{excluded} benchmark(s) excluded from the averages (a variant has no \
             sound placement)."
        )
        .unwrap();
    }
    if !vm_fracs.is_empty() && nvm_sum > 0.0 {
        let reduction = 100.0 * (1.0 - hybrid_sum / nvm_sum);
        let avg_vm = 100.0 * vm_fracs.iter().sum::<f64>() / vm_fracs.len() as f64;
        writeln!(
            out,
            "\ncomputation-energy reduction vs All-NVM: {reduction:.1} % (paper: 25 %)\n\
             average share of accesses hitting VM:    {avg_vm:.0} % (paper: 69 %)"
        )
        .unwrap();
    }
    out
}

/// Figure 8 — impact of the capacitor size on `crc` (§IV-F).
pub fn fig8_report() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 8: impact of capacitor size, benchmark crc (uJ)\n"
    )
    .unwrap();
    let table = CostTable::msp430fr5969();
    let bench = schematic_benchsuite::by_name("crc").expect("crc exists");
    let headers: Vec<String> = [
        "technique",
        "TBPF",
        "computation",
        "save",
        "restore",
        "re-execution",
        "total",
        "status",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let items: Vec<(&str, u64)> = technique_names()
        .into_iter()
        .flat_map(|t| TBPFS.iter().map(move |&tbpf| (t, tbpf)))
        .collect();
    let cells = par_map(&items, |&(tech, tbpf)| run_cell(tech, &bench, &table, tbpf));

    let mut rows = Vec::new();
    for (cell, &(tech, tbpf)) in cells.iter().zip(&items) {
        let row = match &cell.outcome {
            None => vec![
                tech.to_string(),
                tbpf.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "X".into(),
            ],
            Some((_, _, m)) => vec![
                tech.to_string(),
                tbpf.to_string(),
                uj(m.computation),
                uj(m.save),
                uj(m.restore),
                uj(m.reexecution),
                uj(m.total_energy()),
                if cell.ok() { "ok" } else { "X" }.into(),
            ],
        };
        rows.push(row);
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "paper's shape: management overhead decreases with EB for everyone,\n\
         but fastest for Schematic (fewer checkpoints are placed) while\n\
         Ratchet/Alfred placements are EB-oblivious and Rockclimb keeps\n\
         checkpointing every loop header."
    )
    .unwrap();
    out
}

/// Extension: ablations of SCHEMATIC's design choices (DESIGN.md §6).
pub fn ablations_report() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Ablations of SCHEMATIC design choices (TBPF = {ENERGY_TBPF}, uJ)\n"
    )
    .unwrap();
    let table = CostTable::msp430fr5969();
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let variants: [(&str, bool, bool); 3] = [
        ("full", true, true),
        ("no-liveness", false, true),
        ("no-ratio", true, false),
    ];
    let headers: Vec<String> = [
        "benchmark",
        "variant",
        "computation",
        "save",
        "restore",
        "total",
        "peak VM",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let benches = schematic_benchsuite::all();
    let items: Vec<(&Benchmark, &str, bool, bool)> = benches
        .iter()
        .flat_map(|b| variants.map(move |(l, lv, r)| (b, l, lv, r)))
        .collect();
    let rows = par_map(&items, |&(b, label, liveness, ratio)| {
        let m = (b.build)(SEED);
        let mut config = SchematicConfig::new(eb);
        config.svm_bytes = SVM_BYTES;
        config.liveness_opt = liveness;
        config.ratio_ordering = ratio;
        let compiled = match compile(&m, &table, &config) {
            Ok(c) => c,
            Err(e) => {
                let mut row = vec![b.name.to_string(), label.to_string(), format!("error: {e}")];
                row.resize(7, String::new());
                return row;
            }
        };
        let cfg = RunConfig {
            power: PowerModel::Periodic { tbpf: ENERGY_TBPF },
            ..RunConfig::default()
        };
        let run = Machine::new(&compiled.instrumented, &table, cfg)
            .run()
            .expect("no traps");
        assert!(run.completed(), "{} {label}", b.name);
        assert_eq!(run.result, Some((b.oracle)(SEED)), "{} {label}", b.name);
        let mt = &run.metrics;
        vec![
            b.name.to_string(),
            label.to_string(),
            uj(mt.computation),
            uj(mt.save),
            uj(mt.restore),
            uj(mt.total_energy()),
            format!("{} B", mt.peak_vm_bytes),
        ]
    });
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "expected shapes: no-liveness saves/restores more bytes per\n\
         checkpoint (higher save+restore); no-ratio wastes VM capacity on\n\
         fewer, larger variables when space is contested."
    )
    .unwrap();

    // §VII future work, implemented: a retentive sleep mode (SRAM kept
    // alive during the standby) removes the wake-up restores entirely.
    writeln!(
        out,
        "\nRetentive-sleep extension (paper §VII future work), total uJ:"
    )
    .unwrap();
    let lines = par_map(&benches, |b| {
        let m = (b.build)(SEED);
        let mut config = SchematicConfig::new(eb);
        config.svm_bytes = SVM_BYTES;
        let compiled = compile(&m, &table, &config).expect("compiles");
        let mut total = [0.0f64; 2];
        for (i, retentive) in [false, true].into_iter().enumerate() {
            let cfg = RunConfig {
                power: PowerModel::Periodic { tbpf: ENERGY_TBPF },
                retentive_sleep: retentive,
                ..RunConfig::default()
            };
            let run = Machine::new(&compiled.instrumented, &table, cfg)
                .run()
                .expect("no traps");
            assert!(run.completed());
            assert_eq!(run.result, Some((b.oracle)(SEED)));
            total[i] = run.metrics.total_energy().as_uj();
        }
        format!(
            "  {:>10}: deep-sleep {:>10.3}  retentive {:>10.3}  ({:.0} % saved)",
            b.name,
            total[0],
            total[1],
            100.0 * (1.0 - total[1] / total[0])
        )
    });
    for line in lines {
        writeln!(out, "{line}").unwrap();
    }
    out
}

/// Soundness check (ISSUE 3) — static WAR-hazard classification of every
/// inter-checkpoint region per technique × benchmark, cross-validated in
/// full mode against the emulator's shadow recorder across all TBPFs.
///
/// Returns the rendered report and whether the check passed: no
/// `hazardous` region under Schematic or Ratchet, and no observed WAR
/// the static analysis failed to predict (no false negatives).
///
/// `quick` restricts the sweep to Schematic + Ratchet and skips the
/// shadow runs (static analysis only) — the CI configuration.
pub fn soundcheck_report(quick: bool) -> (String, bool) {
    let mut out = String::new();
    let mode = if quick {
        "quick: Schematic + Ratchet, static only"
    } else {
        "full: all techniques + shadow cross-validation"
    };
    writeln!(
        out,
        "Soundness check: WAR hazards per inter-checkpoint region ({mode})\n"
    )
    .unwrap();
    let table = CostTable::msp430fr5969();
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let headers: Vec<String> = [
        "technique",
        "benchmark",
        "regions",
        "idempotent",
        "war-free",
        "shielded",
        "hazardous",
        "placement",
        "observed",
        "unpredicted",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    struct SoundRow {
        row: Vec<String>,
        hazardous: usize,
        unpredicted: usize,
    }
    let skip = |tech: &str, b: &Benchmark, cell: String| {
        let mut row = vec![tech.to_string(), b.name.to_string(), cell];
        row.resize(10, "-".into());
        SoundRow {
            row,
            hazardous: 0,
            unpredicted: 0,
        }
    };

    let techniques: Vec<&'static str> = if quick {
        vec!["Schematic", "Ratchet"]
    } else {
        technique_names()
    };
    let benches = schematic_benchsuite::all();
    let items: Vec<(&str, &Benchmark)> = techniques
        .iter()
        .flat_map(|&t| benches.iter().map(move |b| (t, b)))
        .collect();

    let results = par_map(&items, |&(tech, b)| {
        let module = (b.build)(SEED);
        if !crate::technique_supports(tech, &module) {
            return skip(tech, b, "unsupported".into());
        }
        let im = match crate::compile_technique(tech, &module, &table, eb) {
            Ok(im) => im,
            Err(e) => return skip(tech, b, format!("error: {e}")),
        };
        let report = match schematic_core::check_all(&im, &table, eb) {
            Ok(r) => r,
            Err(e) => return skip(tech, b, format!("error: {e}")),
        };
        let [idem, free, shielded, hazardous] = report.anomalies.class_counts();
        let (observed_cell, unpredicted) = if quick {
            ("-".to_string(), 0)
        } else {
            // Shadow cross-validation: run under every TBPF with the
            // recorder on; every WAR the emulator actually observes must
            // be in the statically predicted set.
            let predicted = report.anomalies.predicted_war_vars(im.module.vars.len());
            let mut observed: Vec<schematic_ir::VarId> = Vec::new();
            for tbpf in TBPFS {
                let cfg = RunConfig {
                    power: PowerModel::Periodic { tbpf },
                    svm_bytes: usize::MAX / 2,
                    max_active_cycles: 4_000_000_000,
                    shadow_war: true,
                    ..RunConfig::default()
                };
                if let Ok(run) = Machine::new(&im, &table, cfg).run() {
                    observed.extend(run.shadow.expect("shadow requested").war_vars());
                }
            }
            observed.sort_unstable();
            observed.dedup();
            let unpredicted = observed.iter().filter(|&&v| !predicted.contains(v)).count();
            (observed.len().to_string(), unpredicted)
        };
        SoundRow {
            row: vec![
                tech.to_string(),
                b.name.to_string(),
                report.anomalies.regions.len().to_string(),
                idem.to_string(),
                free.to_string(),
                shielded.to_string(),
                hazardous.to_string(),
                if report.placement.is_sound() {
                    "sound".into()
                } else {
                    "UNSOUND".into()
                },
                observed_cell,
                unpredicted.to_string(),
            ],
            hazardous,
            unpredicted,
        }
    });

    let mut pass = true;
    for (item, r) in items.iter().zip(&results) {
        let guarded = matches!(item.0, "Schematic" | "Ratchet");
        if (guarded && r.hazardous > 0) || r.unpredicted > 0 {
            pass = false;
        }
    }
    let rows: Vec<Vec<String>> = results.into_iter().map(|r| r.row).collect();
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "verdict: {}",
        if pass {
            "PASS — no hazardous region under Schematic/Ratchet, \
             no unpredicted observed WAR"
        } else {
            "FAIL — hazardous region under Schematic/Ratchet, \
             or the shadow recorder observed an unpredicted WAR"
        }
    )
    .unwrap();
    (out, pass)
}

fn soundcheck_full_report() -> String {
    soundcheck_report(false).0
}

/// A report generator, as listed by [`exp_all_report`].
type Report = fn() -> String;

/// Every report in sequence, separated like the old per-binary runner.
pub fn exp_all_report() -> String {
    let sections: [(&str, Report); 8] = [
        ("table1", table1_report),
        ("table2", table2_report),
        ("table3", table3_report),
        ("fig6", fig6_report),
        ("fig7", fig7_report),
        ("fig8", fig8_report),
        ("ablations", ablations_report),
        ("soundcheck", soundcheck_full_report),
    ];
    let mut out = String::new();
    for (name, report) in sections {
        writeln!(out, "\n================ {name} ================\n").unwrap();
        out.push_str(&report());
    }
    out
}
