//! Report generators behind the experiment binaries — the **render
//! layer** of the grid pipeline.
//!
//! Each `render_*` function is a pure function from a computed
//! [`CellStore`] to the report string; the matching `*_report`
//! convenience wrapper enumerates the report's [`GridSpec`], computes
//! the store (cells fan out over [`crate::parallel::par_map`] workers,
//! `SCHEMATIC_JOBS` overrides the count) and renders. `exp_all`
//! computes the **union** grid once and renders every section from the
//! same store, so cells shared between reports (fig6 and fig8 read
//! Table III's `run` cells, Table I reads Table II's `bare` cells) are
//! evaluated exactly once. Reports are byte-identical no matter how
//! many workers — or shards (`gridrun`) — computed the store.

use crate::grid::{CellStore, CellValue, GridMode, GridSpec, Job, ReportId, SoundCounts};
use crate::{
    render_table, technique_names, uj, CellOutcome, Scenario, ENERGY_TBPF, SVM_BYTES, TBPFS,
};
use schematic_energy::Energy;
use std::fmt::Write;

fn store_for(report: ReportId, mode: GridMode) -> CellStore {
    CellStore::compute(GridSpec::for_report(report, mode).jobs())
}

/// Table I — ability to support limited VM space (§IV-B).
pub fn table1_report() -> String {
    render_table1(&store_for(ReportId::Table1, GridMode::Full))
}

/// Renders Table I from `store` (needs its `support` and `bare` cells).
pub fn render_table1(store: &CellStore) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table I: ability to support limited VM space (SVM = {SVM_BYTES} B)\n"
    )
    .unwrap();
    let benches = schematic_benchsuite::all();
    let mut headers = vec!["technique".to_string()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));

    let mut rows = Vec::new();
    for tech in technique_names() {
        let mut row = vec![tech.to_string()];
        for b in &benches {
            let supported = match store.value(&Job::support(tech, b.name)) {
                CellValue::Support(s) => *s,
                other => panic!("support cell has kind {other:?}"),
            };
            row.push(if supported { "ok" } else { "X" }.into());
        }
        rows.push(row);
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(out, "data footprints:").unwrap();
    for b in &benches {
        let (_, data_bytes) = bare(store, b.name);
        writeln!(out, "  {:>10}: {:>6} B", b.name, data_bytes).unwrap();
    }
    writeln!(
        out,
        "\npaper: Ratchet/Rockclimb/Schematic support all eight; Mementos and\n\
         Alfred fail dijkstra, fft and rc4 (data larger than the 2 KB VM)."
    )
    .unwrap();
    out
}

fn bare(store: &CellStore, benchmark: &str) -> (u64, u64) {
    match store.value(&Job::bare(benchmark)) {
        CellValue::Bare { cycles, data_bytes } => (*cycles, *data_bytes),
        other => panic!("bare cell has kind {other:?}"),
    }
}

/// Table II — execution time and minimal number of power failures
/// (§IV-C).
pub fn table2_report() -> String {
    render_table2(&store_for(ReportId::Table2, GridMode::Full))
}

/// Renders Table II from `store` (needs its `bare` cells).
pub fn render_table2(store: &CellStore) -> String {
    let mut out = String::new();
    writeln!(out, "Table II: execution time and minimal power failures\n").unwrap();
    let mut headers = vec!["benchmark".to_string(), "cycles".to_string()];
    headers.extend(TBPFS.iter().map(|t| format!("TBPF={t}")));

    let benches = schematic_benchsuite::all();
    let rows: Vec<Vec<String>> = benches
        .iter()
        .map(|b| {
            let (cycles, _) = bare(store, b.name);
            let mut row = vec![b.name.to_string(), cycles.to_string()];
            row.extend(TBPFS.iter().map(|t| (cycles / t).to_string()));
            row
        })
        .collect();
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "paper (cycles): aes 1079k, basicmath 170k, bitcount 819k, crc 41k,\n\
         dijkstra 1382k, fft 378k, randmath 15k, rc4 437k."
    )
    .unwrap();
    out
}

/// Table III — ability to enforce forward progress (§IV-C).
pub fn table3_report() -> String {
    render_table3(&store_for(ReportId::Table3, GridMode::Full))
}

/// Renders Table III from `store` (needs the full `run` grid).
pub fn render_table3(store: &CellStore) -> String {
    let mut out = String::new();
    writeln!(out, "Table III: ability to enforce forward progress\n").unwrap();
    let benches = schematic_benchsuite::all();
    for &tbpf in &TBPFS {
        writeln!(out, "TBPF = {tbpf} cycles").unwrap();
        let mut headers = vec!["technique".to_string()];
        headers.extend(benches.iter().map(|b| b.name.to_string()));
        let mut rows = Vec::new();
        for tech in technique_names() {
            let mut row = vec![tech.to_string()];
            for b in &benches {
                let cell = store.run_cell(tech, b.name, tbpf);
                row.push(if cell.ok() { "ok" } else { "X" }.into());
            }
            rows.push(row);
        }
        writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    }
    writeln!(
        out,
        "paper: Rockclimb and Schematic complete everything at every TBPF;\n\
         Ratchet fails aes at 1k; Mementos fails most at 1k/10k and the\n\
         VM-oversized kernels everywhere; Alfred fails several at 1k/10k."
    )
    .unwrap();
    out
}

/// Figure 6 — energy breakdown per technique at TBPF = 10k (§IV-D).
pub fn fig6_report() -> String {
    render_fig6(&store_for(ReportId::Fig6, GridMode::Full))
}

/// Renders Figure 6 from `store` (needs the `run` cells at
/// [`ENERGY_TBPF`]).
pub fn render_fig6(store: &CellStore) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 6: energy breakdown at TBPF = {ENERGY_TBPF} cycles (uJ)\n"
    )
    .unwrap();
    let headers: Vec<String> = [
        "benchmark",
        "technique",
        "computation",
        "save",
        "restore",
        "re-execution",
        "total",
        "status",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let benches = schematic_benchsuite::all();

    let mut schematic_totals: Vec<f64> = Vec::new();
    let mut baseline_totals: Vec<f64> = Vec::new();
    let mut schematic_cycles: Vec<f64> = Vec::new();
    let mut baseline_cycles: Vec<f64> = Vec::new();

    let mut rows = Vec::new();
    for b in &benches {
        let mut schematic_total: Option<Energy> = None;
        let mut bench_baselines: Vec<Energy> = Vec::new();
        for tech in technique_names() {
            let cell = store.run_cell(tech, b.name, ENERGY_TBPF);
            let row = match &cell.outcome {
                None => vec![
                    b.name.to_string(),
                    tech.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "X (cannot run)".into(),
                ],
                Some(CellOutcome {
                    status,
                    correct,
                    metrics: m,
                }) => {
                    let total = m.total_energy();
                    if cell.ok() {
                        if tech == "Schematic" {
                            schematic_total = Some(total);
                            schematic_cycles.push(m.active_cycles as f64);
                        } else {
                            bench_baselines.push(total);
                            baseline_cycles.push(m.active_cycles as f64);
                        }
                    }
                    vec![
                        b.name.to_string(),
                        tech.to_string(),
                        uj(m.computation),
                        uj(m.save),
                        uj(m.restore),
                        uj(m.reexecution),
                        uj(total),
                        if cell.ok() {
                            "ok".into()
                        } else {
                            format!("X {status:?} correct={correct}")
                        },
                    ]
                }
            };
            rows.push(row);
        }
        if let Some(s) = schematic_total {
            for base in bench_baselines {
                schematic_totals.push(s.as_uj());
                baseline_totals.push(base.as_uj());
            }
        }
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();

    // Headline: average reduction vs completed baselines (§IV-D: 51 %).
    if !schematic_totals.is_empty() {
        let ratios: Vec<f64> = schematic_totals
            .iter()
            .zip(&baseline_totals)
            .map(|(s, b)| 1.0 - s / b)
            .collect();
        let avg = 100.0 * ratios.iter().sum::<f64>() / ratios.len() as f64;
        writeln!(
            out,
            "\nSCHEMATIC vs completed baselines: average energy reduction = {avg:.1} % \
             (paper: 51 %)"
        )
        .unwrap();
        // §IV-D also reports a 54 % average *execution time* reduction
        // (active cycles; standby time excluded on both sides).
        let ours: f64 = schematic_cycles.iter().sum::<f64>() / schematic_cycles.len() as f64;
        let theirs: f64 = baseline_cycles.iter().sum::<f64>() / baseline_cycles.len() as f64;
        writeln!(
            out,
            "average active-cycle reduction = {:.1} % (paper: 54 % execution time)",
            100.0 * (1.0 - ours / theirs)
        )
        .unwrap();
    }
    out
}

fn measured<'a>(
    store: &'a CellStore,
    job: &Job,
) -> (&'a Option<schematic_emu::Metrics>, &'a Option<String>) {
    match store.value(job) {
        CellValue::Measured { metrics, note } => (metrics, note),
        other => panic!("cell {job} has kind {other:?}, expected measured"),
    }
}

/// Figure 7 — SCHEMATIC vs All-NVM computation split (§IV-E).
pub fn fig7_report() -> String {
    render_fig7(&store_for(ReportId::Fig7, GridMode::Full))
}

/// Renders Figure 7 from `store` (needs its `fig7` cells).
///
/// A variant without a sound placement (e.g. a kernel whose mandatory
/// state cannot close any interval with zero VM) renders an error row
/// and is excluded, together with its partner variant, from the summary
/// averages — it no longer aborts the whole report.
pub fn render_fig7(store: &CellStore) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 7: Schematic vs All-NVM computation split at TBPF = {ENERGY_TBPF} (uJ)\n"
    )
    .unwrap();
    let headers: Vec<String> = [
        "benchmark",
        "variant",
        "no-mem CPU",
        "VM acc",
        "NVM acc",
        "save",
        "restore",
        "total",
        "VM acc share",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let benches = schematic_benchsuite::all();
    let mut rows = Vec::new();
    let mut hybrid_sum = 0.0;
    let mut nvm_sum = 0.0;
    let mut vm_fracs = Vec::new();
    let mut excluded = 0usize;
    for b in &benches {
        let mut stats: Vec<Option<(f64, f64)>> = Vec::new();
        for label in crate::grid::FIG7_VARIANTS {
            let (metrics, note) = measured(store, &Job::fig7(label, b.name));
            match metrics {
                None => {
                    let mut row = vec![
                        b.name.to_string(),
                        label.to_string(),
                        note.clone().expect("a failed fig7 cell carries a note"),
                    ];
                    row.resize(9, String::new());
                    rows.push(row);
                    stats.push(None);
                }
                Some(mt) => {
                    let exec_total = mt.computation + mt.save + mt.restore;
                    rows.push(vec![
                        b.name.to_string(),
                        label.to_string(),
                        uj(mt.cpu_energy),
                        uj(mt.vm_access_energy),
                        uj(mt.nvm_access_energy),
                        uj(mt.save),
                        uj(mt.restore),
                        uj(exec_total),
                        format!("{:.0} %", 100.0 * mt.vm_access_fraction()),
                    ]);
                    stats.push(Some((mt.computation.as_uj(), mt.vm_access_fraction())));
                }
            }
        }
        match (stats[0], stats[1]) {
            (Some((h, frac)), Some((n, _))) => {
                hybrid_sum += h;
                nvm_sum += n;
                vm_fracs.push(frac);
            }
            _ => excluded += 1,
        }
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    if excluded > 0 {
        writeln!(
            out,
            "\n{excluded} benchmark(s) excluded from the averages (a variant has no \
             sound placement)."
        )
        .unwrap();
    }
    if !vm_fracs.is_empty() && nvm_sum > 0.0 {
        let reduction = 100.0 * (1.0 - hybrid_sum / nvm_sum);
        let avg_vm = 100.0 * vm_fracs.iter().sum::<f64>() / vm_fracs.len() as f64;
        writeln!(
            out,
            "\ncomputation-energy reduction vs All-NVM: {reduction:.1} % (paper: 25 %)\n\
             average share of accesses hitting VM:    {avg_vm:.0} % (paper: 69 %)"
        )
        .unwrap();
    }
    out
}

/// Figure 8 — impact of the capacitor size on `crc` (§IV-F).
pub fn fig8_report() -> String {
    render_fig8(&store_for(ReportId::Fig8, GridMode::Full))
}

/// Renders Figure 8 from `store` (needs `crc`'s `run` cells at every
/// TBPF).
pub fn render_fig8(store: &CellStore) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 8: impact of capacitor size, benchmark crc (uJ)\n"
    )
    .unwrap();
    let headers: Vec<String> = [
        "technique",
        "TBPF",
        "computation",
        "save",
        "restore",
        "re-execution",
        "total",
        "status",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    for tech in technique_names() {
        for &tbpf in &TBPFS {
            let cell = store.run_cell(tech, "crc", tbpf);
            let row = match &cell.outcome {
                None => vec![
                    tech.to_string(),
                    tbpf.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "X".into(),
                ],
                Some(CellOutcome { metrics: m, .. }) => vec![
                    tech.to_string(),
                    tbpf.to_string(),
                    uj(m.computation),
                    uj(m.save),
                    uj(m.restore),
                    uj(m.reexecution),
                    uj(m.total_energy()),
                    if cell.ok() { "ok" } else { "X" }.into(),
                ],
            };
            rows.push(row);
        }
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "paper's shape: management overhead decreases with EB for everyone,\n\
         but fastest for Schematic (fewer checkpoints are placed) while\n\
         Ratchet/Alfred placements are EB-oblivious and Rockclimb keeps\n\
         checkpointing every loop header."
    )
    .unwrap();
    out
}

/// Extension: ablations of SCHEMATIC's design choices (DESIGN.md §6).
pub fn ablations_report() -> String {
    render_ablations(&store_for(ReportId::Ablations, GridMode::Full))
}

/// Renders the ablation study from `store` (needs its `ablation` and
/// `retentive` cells).
pub fn render_ablations(store: &CellStore) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Ablations of SCHEMATIC design choices (TBPF = {ENERGY_TBPF}, uJ)\n"
    )
    .unwrap();
    let headers: Vec<String> = [
        "benchmark",
        "variant",
        "computation",
        "save",
        "restore",
        "total",
        "peak VM",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let benches = schematic_benchsuite::all();
    let mut rows = Vec::new();
    for b in &benches {
        for label in crate::grid::ABLATION_VARIANTS {
            let (metrics, note) = measured(store, &Job::ablation(label, b.name));
            let row = match metrics {
                None => {
                    let mut row = vec![
                        b.name.to_string(),
                        label.to_string(),
                        note.clone().expect("a failed ablation cell carries a note"),
                    ];
                    row.resize(7, String::new());
                    row
                }
                Some(mt) => vec![
                    b.name.to_string(),
                    label.to_string(),
                    uj(mt.computation),
                    uj(mt.save),
                    uj(mt.restore),
                    uj(mt.total_energy()),
                    format!("{} B", mt.peak_vm_bytes),
                ],
            };
            rows.push(row);
        }
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "expected shapes: no-liveness saves/restores more bytes per\n\
         checkpoint (higher save+restore); no-ratio wastes VM capacity on\n\
         fewer, larger variables when space is contested."
    )
    .unwrap();

    // §VII future work, implemented: a retentive sleep mode (SRAM kept
    // alive during the standby) removes the wake-up restores entirely.
    writeln!(
        out,
        "\nRetentive-sleep extension (paper §VII future work), total uJ:"
    )
    .unwrap();
    for b in &benches {
        let (deep_pj, retentive_pj) = match store.value(&Job::retentive(b.name)) {
            CellValue::Retentive {
                deep_pj,
                retentive_pj,
            } => (*deep_pj, *retentive_pj),
            other => panic!("retentive cell has kind {other:?}"),
        };
        let total = [
            Energy::from_pj(deep_pj).as_uj(),
            Energy::from_pj(retentive_pj).as_uj(),
        ];
        writeln!(
            out,
            "  {:>10}: deep-sleep {:>10.3}  retentive {:>10.3}  ({:.0} % saved)",
            b.name,
            total[0],
            total[1],
            100.0 * (1.0 - total[1] / total[0])
        )
        .unwrap();
    }
    out
}

/// Soundness check (ISSUE 3) — static WAR-hazard classification of every
/// inter-checkpoint region per technique × benchmark, cross-validated in
/// full mode against the emulator's shadow recorder across all TBPFs.
///
/// Returns the rendered report and whether the check passed: no
/// `hazardous` region under Schematic or Ratchet, and no observed WAR
/// the static analysis failed to predict (no false negatives).
///
/// `quick` restricts the sweep to Schematic + Ratchet and skips the
/// shadow runs (static analysis only) — the CI configuration.
pub fn soundcheck_report(quick: bool) -> (String, bool) {
    let mode = if quick {
        GridMode::Quick
    } else {
        GridMode::Full
    };
    render_soundcheck(&store_for(ReportId::Soundcheck, mode), mode)
}

/// Renders the soundness check from `store` (needs the `sound` — and in
/// [`GridMode::Full`], `shadow` — cells of the mode's technique set).
pub fn render_soundcheck(store: &CellStore, mode: GridMode) -> (String, bool) {
    let quick = mode == GridMode::Quick;
    let mut out = String::new();
    let mode_line = if quick {
        "quick: Schematic + Ratchet, static only"
    } else {
        "full: all techniques + shadow cross-validation"
    };
    writeln!(
        out,
        "Soundness check: WAR hazards per inter-checkpoint region ({mode_line})\n"
    )
    .unwrap();
    let headers: Vec<String> = [
        "technique",
        "benchmark",
        "regions",
        "idempotent",
        "war-free",
        "shielded",
        "hazardous",
        "placement",
        "observed",
        "unpredicted",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let techniques: Vec<&'static str> = if quick {
        crate::grid::SOUND_QUICK_TECHNIQUES.to_vec()
    } else {
        technique_names()
    };
    let benches = schematic_benchsuite::all();

    let mut pass = true;
    let mut rows = Vec::new();
    for tech in &techniques {
        let guarded = matches!(*tech, "Schematic" | "Ratchet");
        for b in &benches {
            let (counts, note) = match store.value(&Job::sound(tech, b.name)) {
                CellValue::Sound { counts, note } => (counts, note),
                other => panic!("sound cell has kind {other:?}"),
            };
            match counts {
                None => {
                    let mut row = vec![
                        tech.to_string(),
                        b.name.to_string(),
                        note.clone().expect("a skipped sound cell carries a note"),
                    ];
                    row.resize(10, "-".into());
                    rows.push(row);
                }
                Some(SoundCounts {
                    regions,
                    idempotent,
                    war_free,
                    shielded,
                    hazardous,
                    placement_sound,
                }) => {
                    let (observed_cell, unpredicted) = if quick {
                        ("-".to_string(), 0)
                    } else {
                        match store.value(&Job::shadow(tech, b.name)) {
                            CellValue::Shadow {
                                observed,
                                unpredicted,
                            } => (
                                observed.map_or_else(|| "-".to_string(), |n| n.to_string()),
                                *unpredicted,
                            ),
                            other => panic!("shadow cell has kind {other:?}"),
                        }
                    };
                    if (guarded && *hazardous > 0) || unpredicted > 0 {
                        pass = false;
                    }
                    rows.push(vec![
                        tech.to_string(),
                        b.name.to_string(),
                        regions.to_string(),
                        idempotent.to_string(),
                        war_free.to_string(),
                        shielded.to_string(),
                        hazardous.to_string(),
                        if *placement_sound {
                            "sound".into()
                        } else {
                            "UNSOUND".into()
                        },
                        observed_cell,
                        unpredicted.to_string(),
                    ]);
                }
            }
        }
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "verdict: {}",
        if pass {
            "PASS — no hazardous region under Schematic/Ratchet, \
             no unpredicted observed WAR"
        } else {
            "FAIL — hazardous region under Schematic/Ratchet, \
             or the shadow recorder observed an unpredicted WAR"
        }
    )
    .unwrap();
    (out, pass)
}

/// `soundcheck --explain`: recomputes every technique × benchmark cell
/// and prints per-region verdicts — class, WAR variables with their
/// offending footprints and sites, the index facts justifying each
/// idempotence downgrade, and the worst-case re-execution bound — plus
/// machine-greppable histogram lines
/// (`hist <technique> <benchmark> <regions> <idempotent> <war-free>
/// <shielded> <hazardous>`) that CI diffs against
/// `tests/goldens/region_classes.txt`.
pub fn render_soundcheck_explain(quick: bool) -> String {
    use schematic_core::RegionClass;
    let table = schematic_energy::CostTable::msp430fr5969();
    let eb = crate::eb_for_tbpf(&table, ENERGY_TBPF);
    let techniques: Vec<&'static str> = if quick {
        crate::grid::SOUND_QUICK_TECHNIQUES.to_vec()
    } else {
        technique_names()
    };
    let benches = schematic_benchsuite::all();
    let mut out = String::new();
    writeln!(out, "\nPer-region verdicts (--explain)\n").unwrap();
    let mut hists = String::new();
    for tech in &techniques {
        for b in &benches {
            let module = (b.build)(crate::SEED);
            if !crate::technique_supports(tech, &module) {
                writeln!(hists, "hist {tech} {} unsupported", b.name).unwrap();
                continue;
            }
            let im = match crate::compile_technique(tech, &module, &table, eb) {
                Ok(im) => im,
                Err(_) => {
                    writeln!(hists, "hist {tech} {} error", b.name).unwrap();
                    continue;
                }
            };
            let report = match schematic_core::check_all(&im, &table, eb) {
                Ok(r) => r,
                Err(_) => {
                    writeln!(hists, "hist {tech} {} error", b.name).unwrap();
                    continue;
                }
            };
            writeln!(out, "== {tech} x {} ==", b.name).unwrap();
            for region in &report.anomalies.regions {
                let mut line = format!("  {}: {}", region.start, region.class);
                if let Some(bound) = region.reexec_bound {
                    write!(line, ", reexec <= {bound}").unwrap();
                }
                if region.over_budget {
                    line.push_str(", OVER BUDGET");
                }
                writeln!(out, "{line}").unwrap();
                for a in report
                    .anomalies
                    .anomalies
                    .iter()
                    .filter(|a| a.region == region.start)
                {
                    writeln!(
                        out,
                        "      war {}{}: read at {}, clobbering write at {}",
                        im.module.var(a.var).name,
                        a.footprint,
                        a.read_site,
                        a.write_site
                    )
                    .unwrap();
                }
                if region.class == RegionClass::Idempotent && region.writes_disjoint {
                    for acc in &region.accesses {
                        if !acc.write.is_empty() {
                            writeln!(
                                out,
                                "      disjoint {}: read {} does not meet write {}",
                                im.module.var(acc.var).name,
                                acc.read,
                                acc.write
                            )
                            .unwrap();
                        }
                    }
                }
            }
            let [idem, free, shielded, hazardous] = report.anomalies.class_counts();
            writeln!(
                hists,
                "hist {tech} {} {} {idem} {free} {shielded} {hazardous}",
                b.name,
                report.anomalies.regions.len()
            )
            .unwrap();
        }
    }
    writeln!(out, "Region-class histogram (greppable: '^hist '):").unwrap();
    out.push_str(&hists);
    out
}

/// Jitter half-width (cycles) of the robustness report's stochastic
/// scenarios, around the energy-study TBPF ([`ENERGY_TBPF`] ± this).
pub const ROBUST_JITTER: u64 = 2_000;

/// The robustness report's power axis: `seeds` stochastic scenarios
/// (mean [`ENERGY_TBPF`], jitter [`ROBUST_JITTER`], seeds `1..=seeds`)
/// plus every recorded trace in [`crate::scenario::traces_dir`].
pub fn robust_scenarios(seeds: u64) -> Vec<Scenario> {
    let mut scenarios: Vec<Scenario> = (1..=seeds)
        .map(|seed| Scenario::Stochastic {
            mean_tbpf: ENERGY_TBPF,
            jitter: ROBUST_JITTER,
            seed,
        })
        .collect();
    scenarios.extend(
        crate::scenario::available_traces()
            .into_iter()
            .map(|id| Scenario::Trace { id }),
    );
    scenarios
}

/// The robustness grid: every technique × benchmark × scenario `run`
/// job, in the grid's stable order. Deliberately **not** part of
/// [`GridSpec::full_grid`] — the paper reports stay byte-identical.
pub fn robust_jobs(seeds: u64) -> Vec<Job> {
    let mut jobs = Vec::new();
    for tech in technique_names() {
        for b in &schematic_benchsuite::all() {
            for scenario in robust_scenarios(seeds) {
                jobs.push(Job::run_scenario(tech, b.name, scenario));
            }
        }
    }
    jobs.sort();
    jobs
}

/// `gridrun --report robust` (fresh store; the binary routes through
/// the cell cache instead when one is configured).
pub fn robust_report(seeds: u64) -> String {
    render_robust(&CellStore::compute(&robust_jobs(seeds)), seeds)
}

/// Renders the robustness report from `store` (needs the
/// [`robust_jobs`] cells): per technique × benchmark, the completion
/// rate and total-energy spread across every scenario on the axis.
///
/// The first line is a stable, greppable header (`Robustness report:`)
/// so CI can smoke-test the render without pinning the table bytes.
pub fn render_robust(store: &CellStore, seeds: u64) -> String {
    let scenarios = robust_scenarios(seeds);
    let n_traces = scenarios.len() as u64 - seeds;
    let mut out = String::new();
    writeln!(
        out,
        "Robustness report: {seeds} stochastic seed(s) (mean={ENERGY_TBPF}, \
         jitter={ROBUST_JITTER}) + {n_traces} recorded trace(s)\n"
    )
    .unwrap();
    writeln!(
        out,
        "scenarios: {}\n",
        scenarios
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    )
    .unwrap();

    let headers: Vec<String> = [
        "technique",
        "benchmark",
        "completed",
        "uJ min",
        "uJ median",
        "uJ max",
        "spread %",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    for tech in technique_names() {
        for b in &schematic_benchsuite::all() {
            let mut energies: Vec<Energy> = Vec::new();
            for scenario in &scenarios {
                let cell = store.run_cell_scenario(tech, b.name, scenario.clone());
                if cell.ok() {
                    let outcome = cell.outcome.as_ref().expect("ok cell has an outcome");
                    energies.push(outcome.metrics.total_energy());
                }
            }
            energies.sort();
            let mut row = vec![
                tech.to_string(),
                b.name.to_string(),
                format!("{}/{}", energies.len(), scenarios.len()),
            ];
            if energies.is_empty() {
                row.extend(["-", "-", "-", "-"].map(String::from));
            } else {
                let (min, max) = (energies[0], energies[energies.len() - 1]);
                let median = energies[energies.len() / 2];
                row.push(uj(min));
                row.push(uj(median));
                row.push(uj(max));
                row.push(format!(
                    "{:.1}",
                    100.0 * (max.as_uj() - min.as_uj()) / median.as_uj()
                ));
            }
            rows.push(row);
        }
    }
    writeln!(out, "{}", render_table(&headers, &rows)).unwrap();
    writeln!(
        out,
        "completed = scenarios finishing correctly within the failure budget;\n\
         spread % = (max - min) / median total energy across completed runs."
    )
    .unwrap();
    out
}

/// A report renderer: pure function from the shared store to its text.
type RenderFn = fn(&CellStore) -> String;

/// Every report in sequence from one shared store, separated like the
/// old per-binary runner.
pub fn render_all(store: &CellStore, mode: GridMode) -> String {
    let sections: [(&str, RenderFn); 7] = [
        ("table1", render_table1),
        ("table2", render_table2),
        ("table3", render_table3),
        ("fig6", render_fig6),
        ("fig7", render_fig7),
        ("fig8", render_fig8),
        ("ablations", render_ablations),
    ];
    let mut out = String::new();
    for (name, render) in sections {
        writeln!(out, "\n================ {name} ================\n").unwrap();
        out.push_str(&render(store));
    }
    writeln!(out, "\n================ soundcheck ================\n").unwrap();
    out.push_str(&render_soundcheck(store, mode).0);
    out
}

/// Every report in sequence. The union grid is computed once — each
/// cell shared between reports is evaluated a single time — and every
/// section renders from the same store.
pub fn exp_all_report() -> String {
    let store = CellStore::compute(GridSpec::full_grid(GridMode::Full).jobs());
    render_all(&store, GridMode::Full)
}
