//! Work-stealing parallel map for the experiment driver.
//!
//! Experiment grids are embarrassingly parallel: every `(technique,
//! benchmark, tbpf)` cell compiles and emulates independently. The
//! driver fans the cells out over `std::thread::scope` workers that
//! claim indices from a shared atomic counter — no dependencies beyond
//! `std`, and results come back in input order, so the rendered report
//! is byte-identical to a serial run.
//!
//! This is the intra-process rung of the scale ladder; the inter-process
//! rung is [`crate::grid`]'s shard/merge pipeline (`gridrun`), whose
//! per-shard [`crate::grid::CellStore::compute`] calls fan out through
//! this driver.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count: `SCHEMATIC_JOBS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn jobs() -> usize {
    match std::env::var("SCHEMATIC_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Applies `f` to every item using [`jobs`] worker threads; results are
/// returned in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(items, jobs(), f)
}

/// [`par_map`] with an explicit worker count.
///
/// Workers steal the next unprocessed index from a shared counter, so
/// one expensive cell only stalls the thread it runs on. A panic inside
/// `f` propagates to the caller.
pub fn par_map_jobs<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let collected: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in collected {
        debug_assert!(out[i].is_none(), "index claimed twice");
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial = par_map_jobs(&items, 1, |&x| x * 3);
        let parallel = par_map_jobs(&items, 8, |&x| x * 3);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[41], 123);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_jobs(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map_jobs(&[7], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items() {
        let items = [1, 2, 3];
        assert_eq!(par_map_jobs(&items, 64, |&x| x), vec![1, 2, 3]);
    }
}
