//! Randomized cross-validation of the static WAR-hazard analysis.
//!
//! Generates small random modules (acyclic CFGs over scalars and small
//! arrays), sprinkles random plain checkpoints and random per-block VM
//! placements over them, and runs each under the emulator's shadow
//! recorder with periodic power failures and the `Rollback` policy (the
//! policy that actually re-executes regions and can surface WARs at
//! runtime). The soundness contract under test: **every per-element WAR
//! the recorder observes must have been predicted statically** by
//! [`schematic_core::check_anomalies`] — the observed element offset
//! must fall inside some predicted anomaly footprint for that variable.
//! The static analysis may over-approximate, never miss.
//!
//! The generator is seeded [`SplitMix64`], so the whole sweep is
//! deterministic and a failure message's case index reproduces exactly.

use schematic_benchsuite::inputs::SplitMix64;
use schematic_core::check_anomalies;
use schematic_emu::{
    AllocationPlan, CheckpointKind, CheckpointSpec, FailurePolicy, InstrumentedModule, PowerModel,
    RunConfig,
};
use schematic_ir::{
    BlockId, CheckpointId, CmpOp, FunctionBuilder, Inst, Module, ModuleBuilder, VarId, VarSet,
    Variable,
};

const CASES: u64 = 256;
const SEED: u64 = 0x5EED_50F7;

/// One random module: 2–4 scalars, 1–2 small arrays, 3–6 blocks chained
/// with forward-only branches (always terminates without trip-count
/// annotations), each block a random mix of loads and stores.
fn random_module(rng: &mut SplitMix64) -> (Module, Vec<(VarId, usize)>) {
    let mut mb = ModuleBuilder::new("fuzz");
    let mut vars: Vec<(VarId, usize)> = Vec::new();
    for i in 0..2 + rng.below(3) {
        vars.push((mb.var(Variable::scalar(format!("s{i}"))), 1));
    }
    for i in 0..1 + rng.below(2) {
        let words = 2 + rng.below(6) as usize;
        vars.push((mb.var(Variable::array(format!("a{i}"), words)), words));
    }
    let mut f = FunctionBuilder::new("main", 0);
    let n_blocks = 3 + rng.below(4) as usize;
    let blocks: Vec<BlockId> = (0..n_blocks)
        .map(|i| f.new_block(format!("b{i}")))
        .collect();
    f.br(blocks[0]);
    for (i, &b) in blocks.iter().enumerate() {
        f.switch_to(b);
        let mut last = None;
        for _ in 0..1 + rng.below(7) {
            let (var, words) = vars[rng.below(vars.len() as u32) as usize];
            match (words, rng.below(2)) {
                (1, 0) => last = Some(f.load_scalar(var)),
                (1, _) => f.store_scalar(var, rng.next_i32() & 0xFF),
                (w, 0) => last = Some(f.load_idx(var, rng.below(w as u32) as i32)),
                (w, _) => {
                    let idx = rng.below(w as u32) as i32;
                    f.store_idx(var, idx, rng.next_i32() & 0xFF);
                }
            }
        }
        if i + 1 == n_blocks {
            f.ret(None);
        } else if i + 2 < n_blocks && rng.below(2) == 0 {
            // Forward-only conditional: both targets strictly later.
            let t = i + 1 + rng.below((n_blocks - i - 1) as u32) as usize;
            let e = i + 1 + rng.below((n_blocks - i - 1) as u32) as usize;
            let lhs = match last {
                Some(r) => r,
                None => f.copy(1),
            };
            let c = f.cmp(CmpOp::UGe, lhs, 1);
            f.cond_br(c, blocks[t], blocks[e]);
        } else {
            f.br(blocks[i + 1]);
        }
    }
    let main = mb.func(f.finish());
    (mb.finish(main), vars)
}

/// Random instrumentation: plain checkpoints at random instruction
/// positions (~half the blocks get one) and a random per-block VM set.
fn instrument(rng: &mut SplitMix64, m: Module, vars: &[(VarId, usize)]) -> InstrumentedModule {
    let mut im = InstrumentedModule {
        technique: "fuzz".into(),
        plan: AllocationPlan::all_nvm(&m),
        module: m,
        checkpoints: vec![],
        policy: FailurePolicy::Rollback,
        boot_restore: vec![],
    };
    let fid = schematic_ir::FuncId(0);
    let n_blocks = im.module.func(fid).blocks.len();
    for bi in 0..n_blocks {
        let b = BlockId::from_usize(bi);
        if rng.below(2) == 0 {
            let pos = rng.below(im.module.func(fid).block(b).insts.len() as u32 + 1) as usize;
            let id = CheckpointId::from_usize(im.checkpoints.len());
            im.checkpoints.push(CheckpointSpec::registers_only());
            im.module
                .func_mut(fid)
                .block_mut(b)
                .insts
                .insert(pos, Inst::Checkpoint { id });
        }
        let mut set = VarSet::new(vars.len());
        for &(v, _) in vars {
            if rng.below(4) == 0 {
                set.insert(v);
            }
        }
        im.plan.set(fid, b, set);
    }
    // Checkpoints must persist the dirty VM set they cut across;
    // registers-only specs stay sound because Rollback re-executes from
    // the image and the recorder is what we are validating, but give
    // half of them the block's planned set for save/restore coverage.
    let specs: Vec<(BlockId, usize)> = (0..n_blocks)
        .map(BlockId::from_usize)
        .flat_map(|b| {
            im.module
                .func(fid)
                .block(b)
                .insts
                .iter()
                .filter_map(move |i| match i {
                    Inst::Checkpoint { id } => Some((b, id.index())),
                    _ => None,
                })
        })
        .collect();
    for (b, spec_idx) in specs {
        if rng.below(2) == 0 {
            let set: Vec<VarId> = im.plan.get(fid, b).iter().collect();
            im.checkpoints[spec_idx] = CheckpointSpec {
                save_vars: set.clone(),
                restore_vars: set,
                kind: CheckpointKind::Plain,
            };
        }
    }
    im
}

#[test]
fn static_analysis_never_misses_an_observed_war() {
    let mut rng = SplitMix64::new(SEED);
    let mut ran = 0u64;
    let mut observed_total = 0u64;
    let mut failures_total = 0u64;
    for case in 0..CASES {
        let (m, vars) = random_module(&mut rng);
        let im = instrument(&mut rng, m, &vars);
        let mut cfg = RunConfig {
            power: PowerModel::Periodic {
                tbpf: 40 + u64::from(rng.below(400)),
            },
            svm_bytes: usize::MAX / 2,
            shadow_war: true,
            ..RunConfig::default()
        };
        cfg.max_active_cycles = 1_000_000;
        // A trapped case (e.g. rollback livelock) proves nothing either
        // way; skip it rather than constraining the generator.
        let Ok(out) = schematic_emu::run(&im, cfg) else {
            continue;
        };
        ran += 1;
        failures_total += out.metrics.power_failures;
        let report = check_anomalies(&im, true)
            .unwrap_or_else(|e| panic!("case {case}: static analysis failed: {e}"));
        let shadow = out.shadow.expect("shadow recorder was enabled");
        for war in &shadow.wars {
            observed_total += 1;
            assert!(
                report.predicts_element(war.var, war.elem),
                "case {case} (seed {SEED:#x}): shadow recorder observed a WAR on \
                 {:?}[{}] in epoch {:?} whose element is outside every statically \
                 predicted anomaly footprint",
                war.var,
                war.elem,
                war.epoch,
            );
        }
    }
    // The sweep must be non-vacuous: most cases run, failures happen,
    // and some WARs are actually observed (all statically predicted).
    assert!(ran >= 200, "only {ran}/{CASES} cases ran");
    assert!(failures_total > 0, "no power failures were exercised");
    assert!(observed_total > 0, "no WARs were observed at runtime");
}
