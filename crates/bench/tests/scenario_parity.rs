//! Scenario-layer parity: threading the periodic supply through the
//! pluggable [`Scenario`] axis must be observationally invisible — the
//! legacy TBPF entry points, artifact spellings and renders stay
//! byte-identical — and the new stochastic/trace scenarios must be
//! deterministic end to end.

use schematic_bench::experiments::{render_robust, robust_jobs};
use schematic_bench::grid::{cell_to_json, CellStore, Job};
use schematic_bench::{run_cell_scenario_traced, run_cell_traced, Scenario};
use schematic_energy::CostTable;

/// A zero-jitter stochastic supply is the periodic supply: every cell
/// computed through the scenario layer matches the legacy TBPF path
/// bit-for-bit (metrics, status, program digest).
#[test]
fn zero_jitter_stochastic_matches_periodic_cells() {
    let table = CostTable::msp430fr5969();
    for (tech, bench_name, tbpf) in [
        ("Schematic", "crc", 10_000),
        ("Ratchet", "randmath", 1_000),
        ("Rockclimb", "crc", 100_000),
    ] {
        let bench = schematic_benchsuite::all()
            .into_iter()
            .find(|b| b.name == bench_name)
            .expect("benchmark exists");
        let (legacy, legacy_digest) = run_cell_traced(tech, &bench, &table, tbpf);
        let scenario = Scenario::Stochastic {
            mean_tbpf: tbpf,
            jitter: 0,
            seed: 0xDEAD_BEEF,
        };
        let (via_scenario, scenario_digest) =
            run_cell_scenario_traced(tech, &bench, &table, &scenario);
        assert_eq!(legacy.outcome, via_scenario.outcome, "{tech}/{bench_name}");
        assert_eq!(legacy.reason, via_scenario.reason, "{tech}/{bench_name}");
        assert_eq!(legacy_digest, scenario_digest, "{tech}/{bench_name}");
    }
}

/// Periodic cells keep the legacy artifact spelling — a numeric `tbpf`
/// field and a bare-number job key — so existing artifacts, goldens and
/// renders stay byte-identical. Non-periodic cells use the `scenario`
/// field instead.
#[test]
fn periodic_artifact_spelling_is_legacy_byte_compatible() {
    let job = Job::run("Schematic", "crc", 10_000);
    assert_eq!(job.to_string(), "run/Schematic/crc/10000");
    let line = cell_to_json(&job, &schematic_bench::grid::CellValue::Support(true)).encode();
    assert!(line.contains("\"tbpf\":10000"), "{line}");
    assert!(!line.contains("scenario"), "{line}");

    let stoch = Job::run_scenario(
        "Schematic",
        "crc",
        Scenario::Stochastic {
            mean_tbpf: 10_000,
            jitter: 2_000,
            seed: 7,
        },
    );
    assert_eq!(stoch.to_string(), "run/Schematic/crc/stoch:10000:2000:7");
    let line = cell_to_json(&stoch, &schematic_bench::grid::CellValue::Support(true)).encode();
    assert!(
        line.contains("\"scenario\":\"stoch:10000:2000:7\""),
        "{line}"
    );
    assert!(!line.contains("tbpf"), "{line}");
}

/// The robustness report is deterministic: two independently computed
/// stores (fresh worker fan-out each) render byte-identically, and the
/// stable header line CI greps for is present.
#[test]
fn robust_report_renders_deterministically() {
    // 2 seeds keeps this CI-sized; traces under `traces/` are included
    // automatically and exercise the interning path from two stores.
    let jobs = robust_jobs(2);
    assert!(jobs.len() >= 2, "robust grid is non-empty");
    let a = render_robust(&CellStore::compute(&jobs), 2);
    let b = render_robust(&CellStore::compute(&jobs), 2);
    assert_eq!(a, b);
    assert!(a.starts_with("Robustness report:"), "stable header:\n{a}");
    assert!(a.contains("stoch:10000:2000:1"), "scenario axis listed");
}
