//! SplitMix64-fuzzed round-trip of the cell JSONL codec and the job
//! key grammar.
//!
//! Random cells — every kind, every [`Scenario`] variant, metrics with
//! arbitrary `u64` fields, and reason/note strings stuffed with quotes,
//! backslashes, the footnote dagger `†`, newlines, control characters
//! and astral-plane emoji — must survive `encode → decode` bit-exactly,
//! both cell-by-cell and through a whole [`CellStore`] artifact. Job
//! keys (`kind/technique/benchmark/scenario`) round-trip through
//! `Display → Job::parse` the same way. The generator is seeded, so a
//! failing case index reproduces exactly.

use schematic_bench::grid::{
    cell_from_json, cell_to_json, CellStore, CellValue, Job, JobKind, SoundCounts,
};
use schematic_bench::json::Json;
use schematic_bench::{CellOutcome, Scenario};
use schematic_benchsuite::inputs::SplitMix64;
use schematic_emu::{Metrics, RunStatus};
use schematic_energy::Energy;

const CASES: u64 = 512;
const SEED: u64 = 0x6E1D_C0DE;

/// A string built from codec-hostile fragments.
fn tricky_string(rng: &mut SplitMix64) -> String {
    const POOL: [&str; 14] = [
        "a", "Z9", "†", "\"", "\\", "\n", "\r", "\t", "\u{1}", "\u{1f}", "é", "🦀", " ", "/",
    ];
    let len = rng.next_u64() % 12;
    (0..len)
        .map(|_| POOL[(rng.next_u64() % POOL.len() as u64) as usize])
        .collect()
}

fn maybe_tricky(rng: &mut SplitMix64) -> Option<String> {
    if rng.next_u64().is_multiple_of(2) {
        Some(tricky_string(rng))
    } else {
        None
    }
}

fn random_metrics(rng: &mut SplitMix64) -> Metrics {
    Metrics {
        computation: Energy::from_pj(rng.next_u64()),
        save: Energy::from_pj(rng.next_u64()),
        restore: Energy::from_pj(rng.next_u64()),
        reexecution: Energy::from_pj(rng.next_u64()),
        cpu_energy: Energy::from_pj(rng.next_u64()),
        vm_access_energy: Energy::from_pj(rng.next_u64()),
        nvm_access_energy: Energy::from_pj(rng.next_u64()),
        active_cycles: rng.next_u64(),
        power_failures: rng.next_u64(),
        checkpoints_committed: rng.next_u64(),
        checkpoints_skipped: rng.next_u64(),
        sleep_events: rng.next_u64(),
        restores: rng.next_u64(),
        implicit_restores: rng.next_u64(),
        implicit_saves: rng.next_u64(),
        unexpected_failures: rng.next_u64(),
        vm_reads: rng.next_u64(),
        vm_writes: rng.next_u64(),
        nvm_reads: rng.next_u64(),
        nvm_writes: rng.next_u64(),
        coherence_violations: rng.next_u64(),
        peak_vm_bytes: rng.next_u64() as usize,
        insts_retired: rng.next_u64(),
    }
}

fn random_status(rng: &mut SplitMix64) -> RunStatus {
    match rng.next_u64() % 4 {
        0 => RunStatus::Completed,
        1 => RunStatus::Livelock,
        2 => RunStatus::CycleLimit,
        _ => RunStatus::FailureLimit,
    }
}

const KINDS: [JobKind; 8] = [
    JobKind::Support,
    JobKind::Bare,
    JobKind::Run,
    JobKind::Fig7,
    JobKind::Ablation,
    JobKind::Retentive,
    JobKind::Sound,
    JobKind::Shadow,
];

/// A random scenario from every variant, honoring the parse-time
/// invariants (stochastic jitter below the mean, trace ids in
/// `[A-Za-z0-9_-]+`) so the spelling is always re-parseable.
fn random_scenario(rng: &mut SplitMix64) -> Scenario {
    match rng.next_u64() % 3 {
        0 => Scenario::periodic(rng.next_u64()),
        1 => {
            let mean_tbpf = rng.next_u64() % 1_000_000 + 2;
            Scenario::Stochastic {
                mean_tbpf,
                jitter: rng.next_u64() % mean_tbpf,
                seed: rng.next_u64(),
            }
        }
        _ => {
            const ID_POOL: &[u8] = b"abcXYZ079_-";
            let len = rng.next_u64() % 12 + 1;
            let id = (0..len)
                .map(|_| ID_POOL[(rng.next_u64() % ID_POOL.len() as u64) as usize] as char)
                .collect();
            Scenario::Trace { id }
        }
    }
}

fn random_cell(rng: &mut SplitMix64) -> (Job, CellValue) {
    let kind = KINDS[(rng.next_u64() % KINDS.len() as u64) as usize];
    let job = Job {
        kind,
        technique: tricky_string(rng),
        benchmark: tricky_string(rng),
        scenario: random_scenario(rng),
    };
    let value = match kind {
        JobKind::Support => CellValue::Support(rng.next_u64().is_multiple_of(2)),
        JobKind::Bare => CellValue::Bare {
            cycles: rng.next_u64(),
            data_bytes: rng.next_u64(),
        },
        JobKind::Run => CellValue::Run {
            outcome: if rng.next_u64().is_multiple_of(2) {
                Some(CellOutcome {
                    status: random_status(rng),
                    correct: rng.next_u64().is_multiple_of(2),
                    metrics: random_metrics(rng),
                })
            } else {
                None
            },
            reason: maybe_tricky(rng),
        },
        JobKind::Fig7 | JobKind::Ablation => CellValue::Measured {
            metrics: if rng.next_u64().is_multiple_of(2) {
                Some(random_metrics(rng))
            } else {
                None
            },
            note: maybe_tricky(rng),
        },
        JobKind::Retentive => CellValue::Retentive {
            deep_pj: rng.next_u64(),
            retentive_pj: rng.next_u64(),
        },
        JobKind::Sound => CellValue::Sound {
            counts: if rng.next_u64().is_multiple_of(2) {
                Some(SoundCounts {
                    regions: rng.next_u64(),
                    idempotent: rng.next_u64(),
                    war_free: rng.next_u64(),
                    shielded: rng.next_u64(),
                    hazardous: rng.next_u64(),
                    placement_sound: rng.next_u64().is_multiple_of(2),
                })
            } else {
                None
            },
            note: maybe_tricky(rng),
        },
        JobKind::Shadow => CellValue::Shadow {
            observed: if rng.next_u64().is_multiple_of(2) {
                Some(rng.next_u64())
            } else {
                None
            },
            unpredicted: rng.next_u64(),
        },
    };
    (job, value)
}

/// Every random cell round-trips bit-exactly through one artifact line.
#[test]
fn fuzz_cell_lines_roundtrip() {
    let mut rng = SplitMix64::new(SEED);
    for case in 0..CASES {
        let (job, value) = random_cell(&mut rng);
        let line = cell_to_json(&job, &value).encode();
        assert!(!line.contains('\n'), "case {case}: line-oriented format");
        let parsed = Json::parse(&line).unwrap_or_else(|e| panic!("case {case}: {e}\n{line}"));
        let (job2, value2) =
            cell_from_json(&parsed).unwrap_or_else(|e| panic!("case {case}: {e}\n{line}"));
        assert_eq!(job, job2, "case {case}");
        assert_eq!(value, value2, "case {case}");
    }
}

/// Random job keys — every kind crossed with every scenario variant —
/// round-trip bit-exactly through `Display → Job::parse`. Technique and
/// benchmark names draw from the key-safe alphabet (no `/`, the field
/// separator, and no newline, the line separator).
#[test]
fn fuzz_job_keys_roundtrip() {
    const NAMES: [&str; 6] = ["kv", "dnn_0", "sense-9", "B", "ratchet", "x_y-z"];
    let mut rng = SplitMix64::new(SEED ^ 0x5EED);
    for case in 0..CASES {
        let job = Job {
            kind: KINDS[(rng.next_u64() % KINDS.len() as u64) as usize],
            technique: NAMES[(rng.next_u64() % NAMES.len() as u64) as usize].to_string(),
            benchmark: NAMES[(rng.next_u64() % NAMES.len() as u64) as usize].to_string(),
            scenario: random_scenario(&mut rng),
        };
        let key = job.to_string();
        let parsed = Job::parse(&key).unwrap_or_else(|e| panic!("case {case}: {e}\n{key}"));
        assert_eq!(job, parsed, "case {case}: {key}");
    }
}

/// Malformed job keys come back as reasons, not panics or silent
/// fallbacks.
#[test]
fn malformed_job_keys_name_the_field() {
    for (key, needle) in [
        ("run/schematic/kv", "got 3 field(s)"),
        ("warp/schematic/kv/10000", "unknown kind"),
        ("run/schematic/kv/stoch:5", "want stoch:MEAN:JITTER:SEED"),
        ("run/schematic/kv/trace:a.b", "[A-Za-z0-9_-]"),
        ("run/schematic/kv/fast", "want a TBPF"),
    ] {
        let err = Job::parse(key).unwrap_err();
        assert!(err.contains(needle), "{key}: {err}");
    }
}

/// A whole store of random cells round-trips through the JSONL
/// artifact, keys and all.
#[test]
fn fuzz_store_roundtrips() {
    let mut rng = SplitMix64::new(SEED ^ 0xA5A5);
    let mut store = CellStore::new();
    for _ in 0..CASES {
        let (job, value) = random_cell(&mut rng);
        if store.get(&job).is_none() {
            store.insert(job, value).unwrap();
        }
    }
    assert!(store.len() > 100, "collisions should be rare");
    let text = store.to_jsonl();
    assert_eq!(text.lines().count(), store.len(), "one cell per line");
    let decoded = CellStore::from_jsonl(&text).unwrap();
    assert_eq!(decoded, store);
    // Idempotent: re-encoding the decoded store is byte-identical.
    assert_eq!(decoded.to_jsonl(), text);
}
