//! Shard/merge parity: splitting the quick grid across shards, round-
//! tripping every shard through the JSONL artifact format and merging
//! must reproduce the unsharded `exp_all` render byte-for-byte — the
//! same observational-invisibility contract `parallel_parity` pins for
//! the in-process worker count, lifted to the multi-process pipeline.

use schematic_bench::experiments::render_all;
use schematic_bench::grid::{CellStore, GridMode, GridSpec};

#[test]
fn sharded_merge_renders_byte_identical_exp_all() {
    let spec = GridSpec::full_grid(GridMode::Quick);
    // Unsharded reference run.
    let reference_store = CellStore::compute(spec.jobs());
    let reference = render_all(&reference_store, GridMode::Quick);
    assert!(reference.contains("Table I"), "a real report rendered");
    assert!(reference.contains("soundcheck"), "all sections rendered");

    // N = 2: recompute each shard from scratch — exactly what two
    // `gridrun --shard i/2` processes do — round-trip both artifacts
    // through JSONL, and merge in reverse order (merge must not depend
    // on arrival order).
    let artifacts: Vec<String> = (0..2)
        .map(|i| CellStore::compute(&spec.shard(i, 2)).to_jsonl())
        .collect();
    let mut merged = CellStore::new();
    for text in artifacts.iter().rev() {
        merged
            .merge_from(CellStore::from_jsonl(text).expect("artifact parses"))
            .expect("no conflicting cells");
    }
    assert!(merged.missing(spec.jobs()).is_empty(), "full coverage");
    assert_eq!(render_all(&merged, GridMode::Quick), reference);

    // N ∈ {1, 3, 7}: shard partitioning, artifact codec and merge
    // determinism over the same grid. Cell values come from the
    // reference store — per-shard recomputation determinism is already
    // pinned by the N = 2 case above and by `parallel_parity`.
    for n in [1usize, 3, 7] {
        let mut merged = CellStore::new();
        for i in (0..n).rev() {
            let mut shard = CellStore::new();
            for job in spec.shard(i, n) {
                let value = reference_store.value(&job).clone();
                shard.insert(job, value).expect("jobs are unique");
            }
            merged
                .merge_from(CellStore::from_jsonl(&shard.to_jsonl()).expect("artifact parses"))
                .expect("no conflicting cells");
        }
        assert!(merged.missing(spec.jobs()).is_empty(), "n = {n}");
        assert_eq!(render_all(&merged, GridMode::Quick), reference, "n = {n}");
    }
}

/// A merged store missing cells is rejected before rendering — the
/// coverage check `gridrun --merge` relies on.
#[test]
fn partial_merge_reports_missing_cells() {
    let spec = GridSpec::full_grid(GridMode::Quick);
    let store = CellStore::new();
    let missing = store.missing(spec.jobs());
    assert_eq!(missing.len(), spec.len());
}
