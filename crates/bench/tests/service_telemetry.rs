//! Telemetry neutrality over the real quick grid: capturing per-job
//! worker registries (the `gridrun --jobs` telemetry path the `gridd`
//! service merges) must not change a single byte of the computed cells
//! or the rendered reports, and the captured registries must merge
//! deterministically regardless of arrival order — the contract that
//! lets the daemon fold worker telemetry from any dispatch interleaving.

use schematic_bench::cache::{self, WorkerTelemetry};
use schematic_bench::experiments::render_all;
use schematic_bench::grid::{evaluate_traced, CellStore, GridMode, GridSpec};
use schematic_energy::CostTable;
use schematic_obs::Registry;

#[test]
fn telemetry_capture_is_invisible_to_grid_output() {
    let spec = GridSpec::full_grid(GridMode::Quick);
    let table = CostTable::msp430fr5969();

    // Telemetry off: the plain worker path.
    schematic_obs::set_enabled(false);
    let mut off = CellStore::new();
    let mut off_lines = Vec::new();
    for job in spec.jobs() {
        let (value, ims) = evaluate_traced(job, &table);
        off_lines.push(cache::worker_line(job, &value, &ims));
        off.insert(job.clone(), value).unwrap();
    }
    let off_render = render_all(&off, GridMode::Quick);

    // Telemetry on: capture a registry per job exactly as `gridrun
    // --jobs` does (synthetic wall time keeps the artifact lines
    // deterministic for the blind-reader comparison below).
    schematic_obs::set_enabled(true);
    let mut on = CellStore::new();
    let mut on_lines = Vec::new();
    let mut telemetry = Vec::new();
    for job in spec.jobs() {
        let ((value, ims), mut registry) = schematic_obs::capture(|| evaluate_traced(job, &table));
        registry.record_span(&format!("job/{job}"), 1);
        let t = WorkerTelemetry {
            wall_nanos: 1,
            registry,
        };
        on_lines.push(cache::worker_line_telemetry(job, &value, &ims, &t));
        telemetry.push(t);
        on.insert(job.clone(), value).unwrap();
    }
    schematic_obs::set_enabled(false);

    // Byte parity: same cells, same reports.
    assert_eq!(on.to_jsonl(), off.to_jsonl());
    assert_eq!(render_all(&on, GridMode::Quick), off_render);

    // A telemetry-carrying line folds to the same cell whether the
    // reader understands telemetry or not, and the rich reader
    // round-trips the registry exactly.
    for ((plain, rich), t) in off_lines.iter().zip(&on_lines).zip(&telemetry) {
        let (pj, pv, pi) = cache::parse_worker_line(plain).unwrap();
        let (bj, bv, bi) = cache::parse_worker_line(rich).unwrap();
        assert_eq!((&pj, &pv, &pi), (&bj, &bv, &bi));
        let (rj, rv, ri, rt) = cache::parse_worker_line_telemetry(rich).unwrap();
        assert_eq!((&pj, &pv, &pi), (&rj, &rv, &ri));
        let rt = rt.expect("rich line carries telemetry");
        assert_eq!(rt.wall_nanos, t.wall_nanos);
        assert_eq!(rt.registry, t.registry);
    }

    // Every job captured real phase spans, and merging the fleet's
    // registries is order-independent: the aggregates (spans, counters,
    // histograms) are byte-identical however the lines arrive, and the
    // event log — inherently ordered — carries the same multiset.
    let mut forward = Registry::default();
    for t in &telemetry {
        forward.merge_from(t.registry.clone());
    }
    let mut reverse = Registry::default();
    for t in telemetry.iter().rev() {
        reverse.merge_from(t.registry.clone());
    }
    let mut fwd_events: Vec<String> = forward.events.iter().map(|e| format!("{e:?}")).collect();
    let mut rev_events: Vec<String> = reverse.events.iter().map(|e| format!("{e:?}")).collect();
    fwd_events.sort();
    rev_events.sort();
    assert_eq!(fwd_events, rev_events);
    forward.events.clear();
    reverse.events.clear();
    assert_eq!(
        schematic_obs::codec::encode(&forward),
        schematic_obs::codec::encode(&reverse)
    );
    assert_eq!(
        forward
            .spans
            .keys()
            .filter(|k| k.starts_with("job/"))
            .count(),
        spec.len()
    );
    assert!(forward.spans.keys().any(|k| k.starts_with("cell/")));
}
