//! Cache parity over the quick grid: a warm, fully cache-served run
//! must render byte-identically to the cold run that populated it, and
//! invalidating one cell's compile memo must recompute exactly that
//! cell — the incremental contract `gridrun --resume` and `gridd` build
//! on.

use schematic_bench::cache::{self, CellCache, SourceDigests};
use schematic_bench::experiments::render_all;
use schematic_bench::grid::{GridMode, GridSpec};
use schematic_energy::CostTable;
use schematic_ir::hash::Digest;

#[test]
fn warm_quick_grid_is_free_and_byte_identical() {
    let path = std::env::temp_dir().join(format!("gridcache-parity-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let spec = GridSpec::full_grid(GridMode::Quick);

    // Cold: everything computes, the cache fills.
    let mut cold_cache = CellCache::open(&path);
    let (cold_store, cold) =
        cache::compute_cached(spec.jobs(), Some(&mut cold_cache), false, &|_, _| {}).unwrap();
    assert_eq!(cold.hits, 0);
    assert_eq!(cold.computed, spec.len());
    let cold_render = render_all(&cold_store, GridMode::Quick);

    // Warm, from a fresh process's view of the file: zero computes,
    // byte-identical artifact and render.
    let mut warm_cache = CellCache::open(&path);
    assert_eq!(warm_cache.len(), (spec.len(), spec.len()));
    let (warm_store, warm) =
        cache::compute_cached(spec.jobs(), Some(&mut warm_cache), false, &|_, _| {}).unwrap();
    assert_eq!((warm.hits, warm.computed), (spec.len(), 0));
    assert_eq!(warm_store.to_jsonl(), cold_store.to_jsonl());
    assert_eq!(render_all(&warm_store, GridMode::Quick), cold_render);

    // Invalidation: poison one job's memo — as if its benchmark's
    // compiled program changed — and exactly that cell recomputes.
    let table = CostTable::msp430fr5969();
    let victim = spec.jobs()[spec.len() / 2].clone();
    let src = SourceDigests::new().digest(&victim.benchmark);
    warm_cache.memo_put(
        cache::memo_key(&victim, &table, src),
        vec![Digest { hi: 1, lo: 1 }],
    );
    let (healed_store, healed) =
        cache::compute_cached(spec.jobs(), Some(&mut warm_cache), false, &|_, _| {}).unwrap();
    assert_eq!((healed.hits, healed.computed), (spec.len() - 1, 1));
    assert_eq!(healed_store.to_jsonl(), cold_store.to_jsonl());

    let _ = std::fs::remove_file(&path);
}
