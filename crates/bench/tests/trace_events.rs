//! Golden tests for the emulator lifecycle event stream plus a fuzz
//! roundtrip of the trace artifact codec.
//!
//! The golden run (crc × Schematic at the Fig. 6 energy point) pins the
//! cross-checkable invariants of the stream: event counts equal the
//! run's metrics counters, the closing `run_end` snapshot equals the
//! metrics' Fig. 6 energy split exactly, and two identical runs emit
//! identical event vectors.

use schematic_bench::trace;
use schematic_bench::{compile_technique, eb_for_tbpf, uj, ENERGY_TBPF, SEED};
use schematic_benchsuite::inputs::SplitMix64;
use schematic_emu::{Machine, Metrics, PowerModel, RunConfig, RunStatus};
use schematic_energy::CostTable;
use schematic_obs as obs;

fn traced_crc_run() -> (RunStatus, Metrics, Vec<obs::Event>) {
    let table = CostTable::msp430fr5969();
    let b = schematic_benchsuite::by_name("crc").expect("crc exists");
    let module = (b.build)(SEED);
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let im = compile_technique("Schematic", &module, &table, eb).expect("compiles");
    let cfg = RunConfig {
        power: PowerModel::Periodic { tbpf: ENERGY_TBPF },
        svm_bytes: usize::MAX / 2,
        max_active_cycles: 4_000_000_000,
        trace: true,
        ..RunConfig::default()
    };
    let (out, reg) = obs::capture(|| Machine::new(&im, &table, cfg).run().expect("no traps"));
    (out.status, out.metrics, reg.events.into())
}

fn count_kind(events: &[obs::Event], kind: &str) -> u64 {
    events.iter().filter(|e| e.kind == kind).count() as u64
}

#[test]
fn golden_crc_epoch_timeline() {
    // One global obs flag; keep enable/disable inside a single test so
    // parallel test threads cannot observe a half-enabled collector.
    let was = obs::enabled();
    obs::set_enabled(true);
    let (status, metrics, events) = traced_crc_run();
    let (status2, metrics2, events2) = traced_crc_run();
    obs::set_enabled(was);

    assert_eq!(status, RunStatus::Completed);
    assert!(!events.is_empty(), "traced run emitted events");

    // Deterministic: the identical run replays the identical stream.
    assert_eq!(status, status2);
    assert_eq!(metrics, metrics2);
    assert_eq!(events, events2);

    // The stream is bracketed by exactly one run_start / run_end.
    assert_eq!(count_kind(&events, "run_start"), 1);
    assert_eq!(count_kind(&events, "run_end"), 1);
    assert_eq!(events.first().unwrap().kind, "run_start");
    assert_eq!(events.last().unwrap().kind, "run_end");
    assert_eq!(events.first().unwrap().u64_field("tbpf"), Some(ENERGY_TBPF));
    // The scenario label tells a timeline reader which supply (and
    // seed/trace) produced it.
    assert_eq!(
        events.first().unwrap().str_field("scenario"),
        Some(ENERGY_TBPF.to_string().as_str())
    );

    // Lifecycle event counts cross-check the metrics counters.
    assert_eq!(
        count_kind(&events, "checkpoint_commit"),
        metrics.checkpoints_committed
    );
    assert_eq!(
        count_kind(&events, "checkpoint_skip"),
        metrics.checkpoints_skipped
    );
    assert_eq!(count_kind(&events, "power_failure"), metrics.power_failures);
    assert_eq!(count_kind(&events, "sleep"), metrics.sleep_events);

    // The run_end snapshot reproduces the Fig. 6 split exactly.
    let end = events.last().unwrap();
    assert_eq!(end.u64_field("comp_pj"), Some(metrics.computation.as_pj()));
    assert_eq!(end.u64_field("save_pj"), Some(metrics.save.as_pj()));
    assert_eq!(end.u64_field("restore_pj"), Some(metrics.restore.as_pj()));
    assert_eq!(
        end.u64_field("reexec_pj"),
        Some(metrics.reexecution.as_pj())
    );
    assert_eq!(end.u64_field("cycles"), Some(metrics.active_cycles));
    assert_eq!(
        end.field("status"),
        Some(&obs::Value::Str("completed".into()))
    );

    // Snapshots are cumulative: every Fig. 6 component is monotone.
    let mut prev = [0u64; 4];
    for ev in &events {
        let snap = [
            ev.u64_field("comp_pj").unwrap(),
            ev.u64_field("save_pj").unwrap(),
            ev.u64_field("restore_pj").unwrap(),
            ev.u64_field("reexec_pj").unwrap(),
        ];
        for (p, s) in prev.iter().zip(snap) {
            assert!(s >= *p, "snapshot went backwards in {}", ev.kind);
        }
        prev = snap;
    }

    // The rendered timeline's closing line carries the exact µJ figures
    // the grid reports print for this cell.
    let t = trace::CellTrace {
        job: schematic_bench::grid::Job::run("Schematic", "crc", ENERGY_TBPF),
        wall_nanos: 0,
        phases: Vec::new(),
        counters: Vec::new(),
        events,
        dropped_events: 0,
        spilled_events: 0,
    };
    let timeline = trace::render_timeline(&t);
    assert!(timeline.contains("Fig. 6 split"));
    assert!(timeline.contains(&format!("computation {} uJ", uj(metrics.computation))));
    assert!(timeline.contains(&format!("save {} uJ", uj(metrics.save))));
    assert!(timeline.contains(&format!("restore {} uJ", uj(metrics.restore))));
    assert!(timeline.contains(&format!("re-execution {} uJ", uj(metrics.reexecution))));
}

fn random_value(rng: &mut SplitMix64) -> obs::Value {
    if rng.next_u64().is_multiple_of(2) {
        obs::Value::U64(rng.next_u64())
    } else {
        let label = match rng.next_u64() % 4 {
            0 => "completed".to_string(),
            1 => format!("cp{}", rng.next_u64() % 100),
            2 => "weird \"quotes\" \\ and \t tabs\n".to_string(),
            _ => format!("µJ-label-{}", rng.next_u64() % 10),
        };
        obs::Value::Str(label)
    }
}

fn random_trace(rng: &mut SplitMix64) -> trace::CellTrace {
    let kinds = ["run_start", "checkpoint_commit", "alloc_pick", "custom"];
    let n_events = (rng.next_u64() % 20) as usize;
    let events = (0..n_events)
        .map(|_| {
            let n_fields = (rng.next_u64() % 5) as usize;
            obs::Event {
                kind: kinds[(rng.next_u64() % kinds.len() as u64) as usize].to_string(),
                fields: (0..n_fields)
                    .map(|i| (format!("f{i}"), random_value(rng)))
                    .collect(),
            }
        })
        .collect();
    let n_phases = (rng.next_u64() % 4) as usize;
    let phases = (0..n_phases)
        .map(|i| trace::PhaseLine {
            name: format!("phase/{i}"),
            calls: rng.next_u64() % 1000,
            total_nanos: rng.next_u64(),
            p50_nanos: rng.next_u64(),
            p95_nanos: rng.next_u64(),
        })
        .collect();
    let job = match rng.next_u64() % 3 {
        0 => schematic_bench::grid::Job::bare("crc"),
        1 => schematic_bench::grid::Job::run("Schematic", "fft", rng.next_u64() % 1_000_000),
        _ => schematic_bench::grid::Job::run("Ratchet", "dijkstra", 1000),
    };
    trace::CellTrace {
        job,
        wall_nanos: rng.next_u64(),
        phases,
        counters: vec![("alloc/picks".to_string(), rng.next_u64())],
        events,
        dropped_events: rng.next_u64() % 3,
        spilled_events: rng.next_u64() % 3,
    }
}

#[test]
fn fuzz_trace_artifact_roundtrip() {
    let mut rng = SplitMix64::new(0x0B5E_ED42);
    for round in 0..200 {
        let n = (rng.next_u64() % 6) as usize;
        let traces: Vec<trace::CellTrace> = (0..n).map(|_| random_trace(&mut rng)).collect();
        let text = trace::to_jsonl(&traces);
        let back = trace::from_jsonl(&text)
            .unwrap_or_else(|e| panic!("round {round}: decode failed: {e}\nartifact:\n{text}"));
        assert_eq!(back, traces, "round {round} roundtrip mismatch");
        // Re-encoding the decoded traces is byte-stable.
        assert_eq!(
            trace::to_jsonl(&back),
            text,
            "round {round} re-encode drift"
        );
    }
}
