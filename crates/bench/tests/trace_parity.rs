//! Tracing must be observation-only: computing the quick grid with
//! full capture enabled (spans + counters + emulator lifecycle events,
//! fused dispatch disabled) must produce cell values whose rendered
//! reports are byte-identical to an untraced run, and the trace
//! artifact must roundtrip losslessly.
//!
//! Kept as a single test function: the obs/emu trace flags are
//! process-global, so splitting this into parallel tests would race
//! on them.

use schematic_bench::experiments::render_all;
use schematic_bench::grid::{CellStore, GridMode, GridSpec, Job};
use schematic_bench::trace;
use schematic_bench::ENERGY_TBPF;

#[test]
fn traced_quick_grid_is_byte_identical_and_roundtrips() {
    let spec = GridSpec::full_grid(GridMode::Quick);

    let reference = CellStore::compute(spec.jobs());
    let expected = render_all(&reference, GridMode::Quick);

    let (store, traces) = trace::capture_grid(spec.jobs());
    let actual = render_all(&store, GridMode::Quick);
    assert_eq!(
        actual, expected,
        "tracing changed a rendered report — it must be observation-only"
    );

    // One trace per job, in job order, with real observations.
    assert_eq!(traces.len(), spec.jobs().len());
    for (job, t) in spec.jobs().iter().zip(&traces) {
        assert_eq!(&t.job, job);
    }
    let total_events: usize = traces.iter().map(|t| t.events.len()).sum();
    assert!(total_events > 0, "capture collected no events");
    assert!(
        traces.iter().any(|t| !t.phases.is_empty()),
        "capture collected no spans"
    );

    // The flagship cell's emulator stream made it through, and its
    // timeline reproduces the Fig. 6 split from the events alone.
    let crc = Job::run("Schematic", "crc", ENERGY_TBPF);
    let t = traces
        .iter()
        .find(|t| t.job == crc)
        .expect("crc cell traced");
    assert!(t.events.iter().any(|e| e.kind == "run_end"));
    let timeline = trace::render_timeline(t);
    assert!(timeline.contains("Fig. 6 split"));

    // Artifact codec is lossless over the real capture.
    let text = trace::to_jsonl(&traces);
    let back = trace::from_jsonl(&text).expect("artifact parses");
    assert_eq!(back, traces, "trace artifact roundtrip drift");

    // Flags were restored: a fresh compute sees no tracing.
    assert!(!schematic_obs::enabled());
    assert!(!schematic_emu::trace::forced());
}
