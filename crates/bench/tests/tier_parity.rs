//! Differential fuzz of the emulator's execution tier ladder.
//!
//! The whole point of the tier ladder ([`ExecTier`]: per-instruction →
//! block-fused → trace superblocks → AOT micro-op tapes) is that each
//! rung is *only* a faster encoding of the one below: every run must
//! produce bit-identical [`Metrics`], the same result, and the same
//! trap, no matter the tier. This sweep generates random looping
//! modules (seeded [`SplitMix64`], deterministic), instruments them
//! with random checkpoints and VM placements under both failure
//! policies, runs each case at every tier — with the AOT threshold
//! dropped to 1 so the tape tier actually builds — and asserts the
//! outcomes are indistinguishable.
//!
//! A golden companion test pins the tier-forcing contract: the shadow
//! recorder and the phase tracer observe individual accesses/steps, so
//! enabling either must force the per-instruction tier regardless of
//! the configured rung.

use schematic_benchsuite::inputs::SplitMix64;
use schematic_emu::{
    AllocationPlan, CheckpointKind, CheckpointSpec, ExecTier, FailurePolicy, InstrumentedModule,
    Machine, PowerModel, RunConfig,
};
use schematic_energy::CostTable;
use schematic_ir::{
    BinOp, BlockId, CheckpointId, CmpOp, FunctionBuilder, Inst, Module, ModuleBuilder, VarId,
    VarSet, Variable,
};

const CASES: u64 = 256;
const SEED: u64 = 0x7143_B17E;

/// One random module: a bounded counting loop whose body is 2–4 blocks
/// of random loads, stores and arithmetic over 2–4 scalars and 1–2
/// small arrays. The loop's unconditional interior edges give the
/// decoder real trace superblocks, and its conditional back edge
/// exercises the superloop's mid-trace re-entry.
fn random_module(rng: &mut SplitMix64) -> (Module, Vec<(VarId, usize)>) {
    let mut mb = ModuleBuilder::new("fuzz");
    let mut vars: Vec<(VarId, usize)> = Vec::new();
    for i in 0..2 + rng.below(3) {
        vars.push((mb.var(Variable::scalar(format!("s{i}"))), 1));
    }
    for i in 0..1 + rng.below(2) {
        let words = 2 + rng.below(6) as usize;
        vars.push((mb.var(Variable::array(format!("a{i}"), words)), words));
    }
    let mut f = FunctionBuilder::new("main", 0);
    let head = f.new_block("head");
    let n_body = 2 + rng.below(3) as usize;
    let body: Vec<BlockId> = (0..n_body).map(|i| f.new_block(format!("b{i}"))).collect();
    let exit = f.new_block("exit");
    let iters = 3 + rng.below(30);
    let i = f.copy(0);
    f.br(head);
    f.switch_to(head);
    f.set_max_iters(head, u64::from(iters) + 1);
    let fin = f.cmp(CmpOp::UGe, i, iters as i32);
    f.cond_br(fin, exit, body[0]);
    for (bi, &b) in body.iter().enumerate() {
        f.switch_to(b);
        let mut last = i;
        for _ in 0..1 + rng.below(7) {
            let (var, words) = vars[rng.below(vars.len() as u32) as usize];
            match (words, rng.below(4)) {
                (1, 0) => last = f.load_scalar(var),
                (1, 1) => f.store_scalar(var, last),
                (w, 0) => last = f.load_idx(var, rng.below(w as u32) as i32),
                (w, 1) => {
                    // Register-indexed access: the AOT tape's inline
                    // bounds-checked path. `i < iters <= 33`, so wrap
                    // it into range with a masked immediate index when
                    // the array is smaller.
                    let idx = if u64::from(iters) <= w as u64 {
                        last = f.copy(i);
                        last
                    } else {
                        f.copy(rng.below(w as u32) as i32)
                    };
                    last = f.load_idx(var, idx);
                }
                (w, 2) => {
                    let idx = rng.below(w as u32) as i32;
                    f.store_idx(var, idx, last);
                }
                _ => {
                    let op = match rng.below(6) {
                        0 => BinOp::Add,
                        1 => BinOp::Sub,
                        2 => BinOp::Mul,
                        3 => BinOp::Xor,
                        4 => BinOp::And,
                        _ => BinOp::Shl,
                    };
                    last = if rng.below(2) == 0 {
                        f.bin(op, last, rng.next_i32() & 0xFF)
                    } else {
                        f.bin(op, last, i)
                    };
                }
            }
        }
        if bi + 1 < n_body {
            f.br(body[bi + 1]);
        } else {
            let i2 = f.bin(BinOp::Add, i, 1);
            f.copy_to(i, i2);
            f.br(head);
        }
    }
    f.switch_to(exit);
    f.ret(None);
    let main = mb.func(f.finish());
    (mb.finish(main), vars)
}

/// Random instrumentation: plain checkpoints in ~a third of the blocks
/// and a random per-block VM set (the blocks without a checkpoint stay
/// fusable, so traces still form around the instrumented ones).
fn instrument(
    rng: &mut SplitMix64,
    m: Module,
    vars: &[(VarId, usize)],
    policy: FailurePolicy,
) -> InstrumentedModule {
    let mut im = InstrumentedModule {
        technique: "fuzz".into(),
        plan: AllocationPlan::all_nvm(&m),
        module: m,
        checkpoints: vec![],
        policy,
        boot_restore: vec![],
    };
    let fid = schematic_ir::FuncId(0);
    let n_blocks = im.module.func(fid).blocks.len();
    for bi in 0..n_blocks {
        let b = BlockId::from_usize(bi);
        if rng.below(3) == 0 {
            let pos = rng.below(im.module.func(fid).block(b).insts.len() as u32 + 1) as usize;
            let id = CheckpointId::from_usize(im.checkpoints.len());
            let set: Vec<VarId> = im.plan.get(fid, b).iter().collect();
            im.checkpoints.push(CheckpointSpec {
                save_vars: set.clone(),
                restore_vars: set,
                kind: CheckpointKind::Plain,
            });
            im.module
                .func_mut(fid)
                .block_mut(b)
                .insts
                .insert(pos, Inst::Checkpoint { id });
        }
        let mut set = VarSet::new(vars.len());
        for &(v, _) in vars {
            if rng.below(4) == 0 {
                set.insert(v);
            }
        }
        im.plan.set(fid, b, set);
    }
    im
}

/// Runs `im` at `tier` and returns a comparable digest of everything
/// observable: the formatted outcome (result + status + metrics, or
/// the error).
///
/// One field is deliberately excluded: `peak_vm_bytes`. The fused
/// tiers establish a block's VM residency up front (the prep pass),
/// so a copy another block left resident can still be counted toward
/// the high-water mark when the per-instruction order would have
/// dropped it (an NVM write earlier in the body) before the next
/// fault-in. The transient peak gauge is interleaving-sensitive by
/// nature; every energy, count and cycle total must still match
/// bit-for-bit.
fn digest(im: &InstrumentedModule, tbpf: u64, tier: ExecTier) -> String {
    digest_model(im, PowerModel::Periodic { tbpf }, tier)
}

fn digest_model(im: &InstrumentedModule, power: PowerModel, tier: ExecTier) -> String {
    let cfg = RunConfig {
        power,
        svm_bytes: usize::MAX / 2,
        max_active_cycles: 1_000_000,
        aot_threshold: 1,
        tier,
        ..RunConfig::default()
    };
    match schematic_emu::run(im, cfg) {
        Ok(out) => {
            let mut m = out.metrics;
            m.peak_vm_bytes = 0;
            format!(
                "result={:?} status={:?} metrics={:?}",
                out.result, out.status, m
            )
        }
        Err(e) => format!("error={e:?}"),
    }
}

#[test]
fn all_tiers_are_bit_identical() {
    const TIERS: [ExecTier; 4] = [
        ExecTier::Interp,
        ExecTier::Fused,
        ExecTier::Trace,
        ExecTier::Aot,
    ];
    let mut rng = SplitMix64::new(SEED);
    let mut completed = 0u64;
    for case in 0..CASES {
        let (m, vars) = random_module(&mut rng);
        let policy = if rng.below(2) == 0 {
            FailurePolicy::WaitRecharge
        } else {
            FailurePolicy::Rollback
        };
        let im = instrument(&mut rng, m, &vars, policy);
        let tbpf = 200 + u64::from(rng.below(2000));
        let reference = digest(&im, tbpf, ExecTier::Interp);
        if !reference.starts_with("error=") {
            completed += 1;
        }
        for tier in TIERS {
            let got = digest(&im, tbpf, tier);
            assert_eq!(
                got, reference,
                "case {case} (seed {SEED:#x}, policy {policy:?}, tbpf {tbpf}): \
                 {tier:?} diverged from the per-instruction tier"
            );
        }
    }
    // The sweep must be non-vacuous: most cases complete (a trapped
    // case still checks that every tier traps identically).
    assert!(completed >= 200, "only {completed}/{CASES} cases completed");
}

/// The stochastic supply draws each window length from its seeded
/// SplitMix64 stream by *window index*, not by execution order — so the
/// fused/trace/AOT tiers, which retire whole superblocks between
/// power-failure checks, must still see the exact same window sequence
/// as the per-instruction tier. This sweep pins that: random modules
/// under random `mean ± jitter` supplies are bit-identical at all four
/// rungs.
#[test]
fn stochastic_runs_are_bit_identical_across_tiers() {
    const TIERS: [ExecTier; 4] = [
        ExecTier::Interp,
        ExecTier::Fused,
        ExecTier::Trace,
        ExecTier::Aot,
    ];
    let mut rng = SplitMix64::new(SEED ^ 0x570C_4A57);
    let mut completed = 0u64;
    for case in 0..CASES {
        let (m, vars) = random_module(&mut rng);
        let policy = if rng.below(2) == 0 {
            FailurePolicy::WaitRecharge
        } else {
            FailurePolicy::Rollback
        };
        let im = instrument(&mut rng, m, &vars, policy);
        let mean_tbpf = 200 + u64::from(rng.below(2000));
        let power = PowerModel::Stochastic {
            mean_tbpf,
            jitter: u64::from(rng.below(mean_tbpf as u32 / 2)),
            seed: rng.next_u64(),
        };
        let reference = digest_model(&im, power, ExecTier::Interp);
        if !reference.starts_with("error=") {
            completed += 1;
        }
        for tier in TIERS {
            let got = digest_model(&im, power, tier);
            assert_eq!(
                got, reference,
                "case {case} (policy {policy:?}, power {power:?}): \
                 {tier:?} diverged from the per-instruction tier"
            );
        }
    }
    assert!(completed >= 200, "only {completed}/{CASES} cases completed");
}

/// Same contract for a recorded trace: windows come from the interned
/// table (cycled by window index), so every tier replays the identical
/// sequence.
#[test]
fn trace_supply_runs_are_bit_identical_across_tiers() {
    const TIERS: [ExecTier; 4] = [
        ExecTier::Interp,
        ExecTier::Fused,
        ExecTier::Trace,
        ExecTier::Aot,
    ];
    let id = schematic_emu::intern_trace(
        "tier-parity-fixture",
        vec![900, 350, 2100, 280, 1500, 410, 777],
    );
    let mut rng = SplitMix64::new(SEED ^ 0x007E_ACE5);
    for case in 0..16 {
        let (m, vars) = random_module(&mut rng);
        let im = instrument(&mut rng, m, &vars, FailurePolicy::WaitRecharge);
        let reference = digest_model(&im, PowerModel::Trace { id }, ExecTier::Interp);
        for tier in TIERS {
            assert_eq!(
                digest_model(&im, PowerModel::Trace { id }, tier),
                reference,
                "case {case}: {tier:?} diverged under the recorded trace"
            );
        }
    }
}

#[test]
fn shadow_and_trace_modes_force_the_per_instruction_tier() {
    let mut rng = SplitMix64::new(SEED);
    let (m, vars) = random_module(&mut rng);
    let im = instrument(&mut rng, m, &vars, FailurePolicy::WaitRecharge);
    let table = CostTable::msp430fr5969();
    let base = RunConfig {
        tier: ExecTier::Aot,
        ..RunConfig::default()
    };
    // Default: the configured rung sticks.
    assert_eq!(
        Machine::new(&im, &table, base.clone()).effective_tier(),
        ExecTier::Aot
    );
    // Shadow WAR recording observes individual accesses: forced down.
    let shadow = RunConfig {
        shadow_war: true,
        ..base.clone()
    };
    assert_eq!(
        Machine::new(&im, &table, shadow).effective_tier(),
        ExecTier::Interp
    );
    // Phase tracing observes individual steps: forced down.
    let trace = RunConfig {
        trace: true,
        ..base
    };
    assert_eq!(
        Machine::new(&im, &table, trace).effective_tier(),
        ExecTier::Interp
    );
}
