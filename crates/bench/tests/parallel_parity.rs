//! The parallel experiment driver must be observationally invisible:
//! every report is byte-identical no matter how many workers run.

use schematic_bench::experiments::{fig8_report, table1_report};

/// One test function mutates `SCHEMATIC_JOBS` sequentially; splitting
/// the comparisons across `#[test]`s would race on the process-wide
/// environment.
#[test]
fn reports_are_identical_across_job_counts() {
    std::env::set_var("SCHEMATIC_JOBS", "1");
    let table1_serial = table1_report();
    let fig8_serial = fig8_report();
    std::env::set_var("SCHEMATIC_JOBS", "4");
    let table1_parallel = table1_report();
    let fig8_parallel = fig8_report();
    std::env::remove_var("SCHEMATIC_JOBS");
    assert_eq!(table1_serial, table1_parallel);
    assert_eq!(fig8_serial, fig8_parallel);
    // The grids really rendered (not two identical empty strings).
    assert!(fig8_serial.contains("Schematic"));
    assert!(fig8_serial.lines().count() > TBPFS_CELLS);
}

/// 5 techniques × 3 TBPFs plus headers — a lower bound on fig8's lines.
const TBPFS_CELLS: usize = 15;
