//! Golden-metrics regression tests for the emulator.
//!
//! The values below were captured from the emulator *before* the
//! hot-path optimizations (indexed dispatch, per-opcode cost table,
//! cached plan lookups) landed. The optimizations are required to be
//! observationally invisible: every retired-instruction count, energy
//! category, and residency statistic must match these numbers exactly,
//! not just the final program result.

use schematic_bench::{compile_technique, eb_for_tbpf};
use schematic_emu::{InstrumentedModule, Machine, Metrics, PowerModel, RunConfig};
use schematic_energy::{CostTable, Energy};

/// One golden cell of [`all_benchmarks_both_techniques_match_golden`]:
/// `(benchmark, technique, result, metrics)` with the metrics flattened
/// in `Metrics` declaration order (all energies in pJ). Regenerate after
/// an *intentional* cost-model change with
/// `cargo run --release -p schematic-bench --example gengolden`.
type GoldenCell = (&'static str, &'static str, i32, [u64; 23]);

fn crc_module() -> schematic_ir::Module {
    let b = schematic_benchsuite::by_name("crc").expect("crc benchmark exists");
    (b.build)(1)
}

fn run_config(power: PowerModel) -> RunConfig {
    RunConfig {
        power,
        svm_bytes: usize::MAX / 2,
        max_active_cycles: 4_000_000_000,
        ..RunConfig::default()
    }
}

#[test]
fn crc_bare_all_vm_continuous_matches_golden() {
    let table = CostTable::msp430fr5969();
    let im = InstrumentedModule::bare_all_vm(crc_module());
    let cfg = RunConfig {
        max_active_cycles: 4_000_000_000,
        ..RunConfig::default()
    };
    let out = Machine::new(&im, &table, cfg).run().unwrap();
    assert_eq!(out.result, Some(-37_900_058));
    let golden = Metrics {
        computation: Energy::from_pj(9_496_660),
        save: Energy::ZERO,
        restore: Energy::from_pj(1_108_800),
        reexecution: Energy::ZERO,
        cpu_energy: Energy::from_pj(9_076_500),
        vm_access_energy: Energy::from_pj(420_160),
        nvm_access_energy: Energy::ZERO,
        active_cycles: 32_180,
        vm_reads: 3_073,
        vm_writes: 1_026,
        peak_vm_bytes: 1_540,
        insts_retired: 15_377,
        ..Metrics::default()
    };
    assert_eq!(out.metrics, golden);
}

#[test]
fn crc_schematic_periodic_matches_golden() {
    let table = CostTable::msp430fr5969();
    let module = crc_module();
    let eb = eb_for_tbpf(&table, 10_000);
    let im = compile_technique("Schematic", &module, &table, eb).unwrap();
    let out = Machine::new(
        &im,
        &table,
        run_config(PowerModel::Periodic { tbpf: 10_000 }),
    )
    .run()
    .unwrap();
    assert_eq!(out.result, Some(-37_900_058));
    let golden = Metrics {
        computation: Energy::from_pj(12_891_220),
        save: Energy::from_pj(495_975),
        restore: Energy::from_pj(392_640),
        reexecution: Energy::ZERO,
        cpu_energy: Energy::from_pj(9_230_100),
        vm_access_energy: Energy::from_pj(215_360),
        nvm_access_energy: Energy::from_pj(3_215_360),
        active_cycles: 35_523,
        checkpoints_committed: 6,
        sleep_events: 6,
        restores: 6,
        implicit_saves: 3,
        vm_reads: 1_025,
        vm_writes: 1_026,
        nvm_reads: 2_048,
        peak_vm_bytes: 4,
        insts_retired: 15_633,
        ..Metrics::default()
    };
    assert_eq!(out.metrics, golden);
}

/// MEMENTOS exercises the rollback path (power failures, guarded
/// checkpoints, re-execution energy) that the other two goldens never
/// reach.
#[test]
fn crc_mementos_periodic_matches_golden() {
    let table = CostTable::msp430fr5969();
    let module = crc_module();
    let eb = eb_for_tbpf(&table, 10_000);
    let im = compile_technique("Mementos", &module, &table, eb).unwrap();
    let out = Machine::new(
        &im,
        &table,
        run_config(PowerModel::Periodic { tbpf: 10_000 }),
    )
    .run()
    .unwrap();
    assert_eq!(out.result, Some(-37_900_058));
    let golden = Metrics {
        computation: Energy::from_pj(11_020_160),
        save: Energy::from_pj(39_365_535),
        restore: Energy::from_pj(13_988_480),
        reexecution: Energy::from_pj(134_610),
        cpu_energy: Energy::from_pj(9_796_800),
        vm_access_energy: Energy::from_pj(424_670),
        nvm_access_energy: Energy::ZERO,
        active_cycles: 129_762,
        power_failures: 11,
        checkpoints_committed: 22,
        checkpoints_skipped: 1_004,
        restores: 11,
        vm_reads: 3_106,
        vm_writes: 1_037,
        peak_vm_bytes: 1_540,
        insts_retired: 16_580,
        ..Metrics::default()
    };
    assert_eq!(out.metrics, golden);
}

/// Full MiBench2 sweep: every benchmark under both the paper's technique
/// and the strongest rollback baseline, captured before the predecoded
/// superblock execution engine landed. The block-level fused dispatch is
/// required to be observationally invisible across *all* control-flow
/// shapes (deep call trees in aes, data-dependent branches in dijkstra,
/// the rollback/re-execution path in Ratchet), not just the three crc
/// cells above.
#[rustfmt::skip]
const GOLDEN_CELLS: &[GoldenCell] = &[
    ("aes", "Schematic", 1417529882, [379936370, 15110075, 10993600, 0, 313600800, 12610, 64594960, 1149124, 0, 175, 0, 175, 175, 1, 11, 0, 81, 41, 40168, 960, 0, 176, 547859]),
    ("aes", "Ratchet", 1417529882, [360349925, 48245120, 11919360, 265013690, 516134100, 0, 109229515, 1925844, 192, 616, 0, 0, 192, 0, 0, 0, 0, 0, 68556, 1001, 0, 0, 951454]),
    ("basicmath", "Schematic", 6210832, [46508670, 3936990, 2341440, 0, 44822700, 134610, 1205760, 164604, 0, 36, 0, 36, 36, 1, 350, 0, 641, 641, 768, 0, 0, 4, 50487]),
    ("basicmath", "Ratchet", 6210832, [47573025, 51534560, 1676160, 2108215, 46317300, 0, 3363940, 278473, 27, 640, 0, 0, 27, 0, 0, 0, 0, 0, 1464, 668, 0, 0, 52864]),
    ("bitcount", "Schematic", 36432, [171160350, 8883455, 9487360, 0, 168487500, 775890, 1205760, 602202, 0, 85, 0, 85, 85, 1, 684, 0, 6913, 769, 768, 0, 0, 68, 316365]),
    ("bitcount", "Ratchet", 36432, [179909025, 62656000, 4718080, 16437780, 182001000, 0, 14345805, 769674, 76, 768, 0, 0, 76, 0, 0, 0, 0, 0, 8279, 845, 0, 0, 345683]),
    ("crc", "Schematic", -37900058, [12891220, 495975, 392640, 0, 9230100, 215360, 3215360, 35523, 0, 6, 0, 6, 6, 0, 3, 0, 1025, 1026, 2048, 0, 0, 4, 15633]),
    ("crc", "Ratchet", -37900058, [15537580, 81922720, 1365760, 349910, 9287700, 0, 6599790, 226286, 22, 1025, 0, 0, 22, 0, 0, 0, 0, 0, 3139, 1048, 0, 0, 16775]),
    ("dijkstra", "Schematic", 999, [608821855, 31566635, 24095680, 0, 373400400, 182530, 234929325, 1515235, 0, 352, 0, 352, 352, 5, 13, 0, 689, 1033, 148264, 1351, 0, 692, 574194]),
    ("dijkstra", "Ratchet", 999, [610644920, 163297200, 12416000, 94559265, 429317100, 0, 275887085, 2008040, 200, 2039, 0, 0, 200, 0, 0, 0, 0, 0, 173092, 2591, 0, 0, 664697]),
    ("fft", "Schematic", 12, [266912190, 7689835, 6101120, 0, 172994700, 215250, 87251040, 683820, 0, 98, 0, 98, 98, 1, 1, 0, 1025, 1025, 33760, 21472, 0, 4, 292878]),
    ("fft", "Ratchet", 12, [259153775, 531949440, 11608960, 9026165, 175274700, 0, 92905240, 1889926, 187, 6640, 0, 0, 187, 0, 0, 0, 0, 0, 35677, 23130, 0, 0, 304728]),
    ("randmath", "Schematic", 2887885, [3960210, 87005, 73600, 0, 3748800, 67410, 0, 13321, 0, 1, 0, 1, 1, 1, 1, 0, 321, 321, 0, 0, 0, 8, 3364]),
    ("randmath", "Ratchet", 2887885, [4668765, 25610640, 434560, 143955, 3774600, 0, 1038120, 73008, 7, 320, 0, 0, 7, 0, 0, 0, 0, 0, 328, 328, 0, 0, 3622]),
    ("rc4", "Schematic", 4090156, [157203495, 4472615, 3659200, 0, 87045000, 1369700, 62798395, 367559, 0, 55, 0, 55, 55, 2, 5, 0, 6657, 6400, 19712, 19969, 0, 64, 145448]),
    ("rc4", "Ratchet", 4090156, [166505615, 1043848960, 16947840, 3764405, 84651900, 0, 85618120, 2770804, 273, 13056, 0, 0, 273, 0, 0, 0, 0, 0, 26919, 27182, 0, 0, 154593]),
];

#[test]
fn all_benchmarks_both_techniques_match_golden() {
    let table = CostTable::msp430fr5969();
    let eb = eb_for_tbpf(&table, 10_000);
    for &(name, tech, result, m) in GOLDEN_CELLS {
        let b = schematic_benchsuite::by_name(name).expect("benchmark exists");
        let im = compile_technique(tech, &(b.build)(1), &table, eb)
            .unwrap_or_else(|e| panic!("{name}/{tech}: no placement: {e}"));
        let out = Machine::new(
            &im,
            &table,
            run_config(PowerModel::Periodic { tbpf: 10_000 }),
        )
        .run()
        .unwrap_or_else(|e| panic!("{name}/{tech}: trapped: {e}"));
        assert_eq!(out.result, Some(result), "{name}/{tech}: result");
        let golden = Metrics {
            computation: Energy::from_pj(m[0]),
            save: Energy::from_pj(m[1]),
            restore: Energy::from_pj(m[2]),
            reexecution: Energy::from_pj(m[3]),
            cpu_energy: Energy::from_pj(m[4]),
            vm_access_energy: Energy::from_pj(m[5]),
            nvm_access_energy: Energy::from_pj(m[6]),
            active_cycles: m[7],
            power_failures: m[8],
            checkpoints_committed: m[9],
            checkpoints_skipped: m[10],
            sleep_events: m[11],
            restores: m[12],
            implicit_restores: m[13],
            implicit_saves: m[14],
            unexpected_failures: m[15],
            vm_reads: m[16],
            vm_writes: m[17],
            nvm_reads: m[18],
            nvm_writes: m[19],
            coherence_violations: m[20],
            peak_vm_bytes: m[21] as usize,
            insts_retired: m[22],
        };
        assert_eq!(out.metrics, golden, "{name}/{tech}: metrics diverged");
    }
}
