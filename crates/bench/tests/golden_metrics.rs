//! Golden-metrics regression tests for the emulator.
//!
//! The values below were captured from the emulator *before* the
//! hot-path optimizations (indexed dispatch, per-opcode cost table,
//! cached plan lookups) landed. The optimizations are required to be
//! observationally invisible: every retired-instruction count, energy
//! category, and residency statistic must match these numbers exactly,
//! not just the final program result.

use schematic_bench::{compile_technique, eb_for_tbpf};
use schematic_emu::{InstrumentedModule, Machine, Metrics, PowerModel, RunConfig};
use schematic_energy::{CostTable, Energy};

fn crc_module() -> schematic_ir::Module {
    let b = schematic_benchsuite::by_name("crc").expect("crc benchmark exists");
    (b.build)(1)
}

fn run_config(power: PowerModel) -> RunConfig {
    RunConfig {
        power,
        svm_bytes: usize::MAX / 2,
        max_active_cycles: 4_000_000_000,
        ..RunConfig::default()
    }
}

#[test]
fn crc_bare_all_vm_continuous_matches_golden() {
    let table = CostTable::msp430fr5969();
    let im = InstrumentedModule::bare_all_vm(crc_module());
    let cfg = RunConfig {
        max_active_cycles: 4_000_000_000,
        ..RunConfig::default()
    };
    let out = Machine::new(&im, &table, cfg).run().unwrap();
    assert_eq!(out.result, Some(-37_900_058));
    let golden = Metrics {
        computation: Energy::from_pj(9_496_660),
        save: Energy::ZERO,
        restore: Energy::from_pj(1_108_800),
        reexecution: Energy::ZERO,
        cpu_energy: Energy::from_pj(9_076_500),
        vm_access_energy: Energy::from_pj(420_160),
        nvm_access_energy: Energy::ZERO,
        active_cycles: 32_180,
        vm_reads: 3_073,
        vm_writes: 1_026,
        peak_vm_bytes: 1_540,
        insts_retired: 15_377,
        ..Metrics::default()
    };
    assert_eq!(out.metrics, golden);
}

#[test]
fn crc_schematic_periodic_matches_golden() {
    let table = CostTable::msp430fr5969();
    let module = crc_module();
    let eb = eb_for_tbpf(&table, 10_000);
    let im = compile_technique("Schematic", &module, &table, eb).unwrap();
    let out = Machine::new(
        &im,
        &table,
        run_config(PowerModel::Periodic { tbpf: 10_000 }),
    )
    .run()
    .unwrap();
    assert_eq!(out.result, Some(-37_900_058));
    let golden = Metrics {
        computation: Energy::from_pj(12_891_220),
        save: Energy::from_pj(495_975),
        restore: Energy::from_pj(392_640),
        reexecution: Energy::ZERO,
        cpu_energy: Energy::from_pj(9_230_100),
        vm_access_energy: Energy::from_pj(215_360),
        nvm_access_energy: Energy::from_pj(3_215_360),
        active_cycles: 35_523,
        checkpoints_committed: 6,
        sleep_events: 6,
        restores: 6,
        implicit_saves: 3,
        vm_reads: 1_025,
        vm_writes: 1_026,
        nvm_reads: 2_048,
        peak_vm_bytes: 4,
        insts_retired: 15_633,
        ..Metrics::default()
    };
    assert_eq!(out.metrics, golden);
}

/// MEMENTOS exercises the rollback path (power failures, guarded
/// checkpoints, re-execution energy) that the other two goldens never
/// reach.
#[test]
fn crc_mementos_periodic_matches_golden() {
    let table = CostTable::msp430fr5969();
    let module = crc_module();
    let eb = eb_for_tbpf(&table, 10_000);
    let im = compile_technique("Mementos", &module, &table, eb).unwrap();
    let out = Machine::new(
        &im,
        &table,
        run_config(PowerModel::Periodic { tbpf: 10_000 }),
    )
    .run()
    .unwrap();
    assert_eq!(out.result, Some(-37_900_058));
    let golden = Metrics {
        computation: Energy::from_pj(11_020_160),
        save: Energy::from_pj(39_365_535),
        restore: Energy::from_pj(13_988_480),
        reexecution: Energy::from_pj(134_610),
        cpu_energy: Energy::from_pj(9_796_800),
        vm_access_energy: Energy::from_pj(424_670),
        nvm_access_energy: Energy::ZERO,
        active_cycles: 129_762,
        power_failures: 11,
        checkpoints_committed: 22,
        checkpoints_skipped: 1_004,
        restores: 11,
        vm_reads: 3_106,
        vm_writes: 1_037,
        peak_vm_bytes: 1_540,
        insts_retired: 16_580,
        ..Metrics::default()
    };
    assert_eq!(out.metrics, golden);
}
