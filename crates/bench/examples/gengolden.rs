//! One-off generator for golden_metrics.rs data (not shipped).

use schematic_bench::{compile_technique, eb_for_tbpf};
use schematic_emu::{Machine, PowerModel, RunConfig};
use schematic_energy::CostTable;

fn main() {
    let table = CostTable::msp430fr5969();
    for b in schematic_benchsuite::all() {
        for tech in ["Schematic", "Ratchet"] {
            let module = (b.build)(1);
            let eb = eb_for_tbpf(&table, 10_000);
            let im = match compile_technique(tech, &module, &table, eb) {
                Ok(im) => im,
                Err(e) => {
                    println!("// {} {} NO PLACEMENT: {}", b.name, tech, e);
                    continue;
                }
            };
            let cfg = RunConfig {
                power: PowerModel::Periodic { tbpf: 10_000 },
                svm_bytes: usize::MAX / 2,
                max_active_cycles: 4_000_000_000,
                ..RunConfig::default()
            };
            let out = Machine::new(&im, &table, cfg).run().expect("no trap");
            let m = &out.metrics;
            println!(
                "    (\"{}\", \"{}\", {}, [{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}]),",
                b.name,
                tech,
                out.result.expect("completed"),
                m.computation.as_pj(),
                m.save.as_pj(),
                m.restore.as_pj(),
                m.reexecution.as_pj(),
                m.cpu_energy.as_pj(),
                m.vm_access_energy.as_pj(),
                m.nvm_access_energy.as_pj(),
                m.active_cycles,
                m.power_failures,
                m.checkpoints_committed,
                m.checkpoints_skipped,
                m.sleep_events,
                m.restores,
                m.implicit_restores,
                m.implicit_saves,
                m.unexpected_failures,
                m.vm_reads,
                m.vm_writes,
                m.nvm_reads,
                m.nvm_writes,
                m.coherence_violations,
                m.peak_vm_bytes,
                m.insts_retired,
            );
        }
    }
}
