//! Criterion bench: SCHEMATIC compilation (analysis) time per kernel.
//!
//! §III-C reports ~71 s average on the authors' setup (LLVM-IR scale,
//! SCEPTIC tooling); this reproduction analyzes the same kernels in
//! milliseconds, confirming the polynomial complexity claim
//! `O(V·(V² + E²))` rather than the constant factor.

use criterion::{criterion_group, criterion_main, Criterion};
use schematic_bench::{eb_for_tbpf, ENERGY_TBPF, SEED};
use schematic_core::{compile, SchematicConfig};
use schematic_energy::CostTable;
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let table = CostTable::msp430fr5969();
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let mut group = c.benchmark_group("analysis_time");
    group.sample_size(10);
    for bench in schematic_benchsuite::all() {
        let module = (bench.build)(SEED);
        group.bench_function(bench.name, |b| {
            b.iter(|| {
                let config = SchematicConfig::new(eb);
                black_box(compile(black_box(&module), &table, &config).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
