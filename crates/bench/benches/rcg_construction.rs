//! Criterion bench: placement scalability on synthetic CFGs.
//!
//! §III-C derives `O(V·(V² + E²))` for the analysis. This bench grows a
//! chain of diamond-shaped regions (so both the block count and the
//! per-path RCG size grow) and measures how compilation time scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schematic_core::{compile, SchematicConfig};
use schematic_energy::{CostTable, Energy};
use schematic_ir::{BinOp, CmpOp, FunctionBuilder, Module, ModuleBuilder, Variable};
use std::hint::black_box;

/// A chain of `n` diamonds, each touching one of four scalars.
fn diamond_chain(n: usize) -> Module {
    let mut mb = ModuleBuilder::new("chain");
    let vars: Vec<_> = (0..4)
        .map(|i| mb.var(Variable::scalar(format!("v{i}"))))
        .collect();
    let mut f = FunctionBuilder::new("main", 0);
    for k in 0..n {
        let t = f.new_block("t");
        let e = f.new_block("e");
        let j = f.new_block("j");
        let v = vars[k % 4];
        let x = f.load_scalar(v);
        let c = f.cmp(CmpOp::SGt, x, 0);
        f.cond_br(c, t, e);
        f.switch_to(t);
        let a = f.load_scalar(v);
        let a2 = f.bin(BinOp::Add, a, 1);
        f.store_scalar(v, a2);
        f.br(j);
        f.switch_to(e);
        let b = f.load_scalar(v);
        let b2 = f.bin(BinOp::Sub, b, 1);
        f.store_scalar(v, b2);
        f.br(j);
        f.switch_to(j);
    }
    let r = f.load_scalar(vars[0]);
    f.ret(Some(r.into()));
    let main = mb.func(f.finish());
    mb.finish(main)
}

fn bench_scaling(c: &mut Criterion) {
    let table = CostTable::msp430fr5969();
    let mut group = c.benchmark_group("rcg_scaling");
    group.sample_size(10);
    for n in [4usize, 16, 64, 128] {
        let module = diamond_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &module, |b, m| {
            b.iter(|| {
                let config = SchematicConfig::new(Energy::from_pj(300) * 10_000u64);
                black_box(compile(black_box(m), &table, &config).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
