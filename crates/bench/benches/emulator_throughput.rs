//! Criterion bench: emulator throughput — cycles simulated per second on
//! continuous and intermittent power (the substrate the whole evaluation
//! stands on; cf. the SCEPTIC emulator the paper uses, §IV-A.c).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use schematic_bench::{eb_for_tbpf, ENERGY_TBPF, SEED};
use schematic_core::{compile, SchematicConfig};
use schematic_emu::{run, InstrumentedModule, Machine, RunConfig};
use schematic_energy::CostTable;
use std::hint::black_box;

fn bench_emulator(c: &mut Criterion) {
    let table = CostTable::msp430fr5969();
    let mut group = c.benchmark_group("emulator");
    group.sample_size(10);

    for name in ["crc", "fft"] {
        let bench = schematic_benchsuite::by_name(name).unwrap();
        let im = InstrumentedModule::bare((bench.build)(SEED));
        let cycles = run(&im, RunConfig::default()).unwrap().metrics.active_cycles;
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(format!("continuous/{name}"), |b| {
            b.iter(|| black_box(run(&im, RunConfig::default()).unwrap()))
        });
    }

    // Intermittent execution of a SCHEMATIC binary (checkpoint runtime
    // exercised on every period).
    let bench = schematic_benchsuite::by_name("crc").unwrap();
    let module = (bench.build)(SEED);
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let compiled = compile(&module, &table, &SchematicConfig::new(eb)).unwrap();
    group.bench_function("intermittent/crc", |b| {
        b.iter(|| {
            black_box(
                Machine::new(
                    &compiled.instrumented,
                    &table,
                    RunConfig::periodic(ENERGY_TBPF),
                )
                .run()
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_emulator);
criterion_main!(benches);
