//! Criterion bench: compile-time cost of the design-choice ablations
//! (DESIGN.md §6). The *energy* effect of the same ablations is reported
//! by the `ablations` binary; this bench tracks their analysis-time
//! impact.

use criterion::{criterion_group, criterion_main, Criterion};
use schematic_bench::{eb_for_tbpf, ENERGY_TBPF, SEED};
use schematic_core::{compile, SchematicConfig};
use schematic_energy::CostTable;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let table = CostTable::msp430fr5969();
    let eb = eb_for_tbpf(&table, ENERGY_TBPF);
    let module = (schematic_benchsuite::by_name("crc").unwrap().build)(SEED);
    let mut group = c.benchmark_group("ablations_compile/crc");
    group.sample_size(10);
    for (label, liveness, ratio) in [
        ("full", true, true),
        ("no-liveness", false, true),
        ("no-ratio", true, false),
        ("all-nvm", true, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut config = SchematicConfig::new(eb);
                config.liveness_opt = liveness;
                config.ratio_ordering = ratio;
                if label == "all-nvm" {
                    config = config.all_nvm();
                }
                black_box(compile(black_box(&module), &table, &config).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
