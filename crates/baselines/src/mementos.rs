//! MEMENTOS (Ransford, Sorber & Fu, ASPLOS 2011): system support for
//! long-running computation on RFID-scale devices.
//!
//! MEMENTOS keeps all working data in VM and inserts *potential*
//! checkpoints at compile time; at run time each one measures the
//! capacitor voltage and commits only when the charge has fallen below a
//! threshold. The paper's evaluation uses the loop-latch placement mode
//! (§IV-A.b), which we follow. A committed checkpoint copies **all**
//! volatile data (every variable plus the registers) to NVM; a power
//! failure rolls back to the last committed checkpoint.
//!
//! Because the working set must fit the VM, MEMENTOS cannot run
//! `dijkstra`, `fft` or `rc4` on a 2 KB-VM platform (Table I), and its
//! fixed placement cannot guarantee forward progress for small energy
//! budgets (Table III).

use crate::common::{check_module, split_back_edges, vm_eligible_vars, Technique};
use schematic_core::PlacementError;
use schematic_emu::{
    AllocationPlan, CheckpointKind, CheckpointSpec, FailurePolicy, InstrumentedModule,
};
use schematic_energy::{CostTable, Energy};
use schematic_ir::{CheckpointId, Inst, Module};

/// The MEMENTOS technique (all-VM, voltage-guarded latch checkpoints).
#[derive(Debug, Clone, Copy)]
pub struct Mementos {
    /// Commit when the measured state of charge falls below this
    /// fraction (the `V_check` threshold).
    pub threshold: f64,
}

impl Default for Mementos {
    fn default() -> Self {
        Mementos { threshold: 0.5 }
    }
}

impl Technique for Mementos {
    fn name(&self) -> &'static str {
        "Mementos"
    }

    /// All-VM: the cumulative variable size must fit the VM (Table I).
    fn supports(&self, module: &Module, svm_bytes: usize) -> bool {
        module.data_bytes() <= svm_bytes
    }

    fn compile(
        &self,
        module: &Module,
        _table: &CostTable,
        _eb: Energy,
    ) -> Result<InstrumentedModule, PlacementError> {
        check_module(module)?;
        let mut m = module.clone();
        let all_vars = vm_eligible_vars(&m);
        let mut checkpoints: Vec<CheckpointSpec> = Vec::new();
        let threshold = self.threshold;

        split_back_edges(&mut m, |m, fid, nb, _edge| {
            let id = CheckpointId::from_usize(checkpoints.len());
            checkpoints.push(CheckpointSpec {
                save_vars: all_vars.clone(),
                restore_vars: all_vars.clone(),
                kind: CheckpointKind::Guarded { threshold },
            });
            m.func_mut(fid)
                .block_mut(nb)
                .insts
                .push(Inst::Checkpoint { id });
        });

        let plan = AllocationPlan::all_vm(&m);
        Ok(InstrumentedModule {
            technique: "Mementos".into(),
            module: m,
            checkpoints,
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: all_vars,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::default_table;
    use schematic_emu::{run, RunConfig, RunStatus};
    use schematic_ir::{CmpOp, FunctionBuilder, ModuleBuilder, Variable};

    fn looped_module(trips: i32) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        let h = f.new_block("h");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(h);
        f.switch_to(h);
        f.set_max_iters(h, trips as u64 + 1);
        let c = f.cmp(CmpOp::SGe, i, trips);
        f.cond_br(c, exit, body);
        f.switch_to(body);
        let v = f.load_scalar(x);
        let v2 = f.bin(schematic_ir::BinOp::Add, v, 1);
        f.store_scalar(x, v2);
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(h);
        f.switch_to(exit);
        let r = f.load_scalar(x);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn places_guarded_checkpoints_on_latches() {
        let m = looped_module(8);
        let im = Mementos::default()
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        assert_eq!(im.checkpoints.len(), 1);
        assert!(matches!(
            im.checkpoints[0].kind,
            CheckpointKind::Guarded { .. }
        ));
        assert_eq!(im.policy, FailurePolicy::Rollback);
    }

    #[test]
    fn vm_fit_check() {
        let m = looped_module(4);
        let mementos = Mementos::default();
        assert!(mementos.supports(&m, 2048));
        assert!(!mementos.supports(&m, 0));
    }

    #[test]
    fn skips_checkpoints_when_charged() {
        let m = looped_module(8);
        let im = Mementos::default()
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        let out = run(&im, RunConfig::default()).unwrap();
        assert!(out.completed());
        assert_eq!(out.result, Some(8));
        // Continuous power: voltage always reads full, never commits.
        assert_eq!(out.metrics.checkpoints_committed, 0);
        assert_eq!(out.metrics.checkpoints_skipped, 8);
    }

    #[test]
    fn commits_when_low_and_survives_failures() {
        let m = looped_module(200);
        let im = Mementos::default()
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        let out = run(&im, RunConfig::periodic(5_000)).unwrap();
        assert!(out.completed(), "{:?}", out.status);
        assert_eq!(out.result, Some(200));
        assert!(out.metrics.checkpoints_committed > 0);
        assert!(out.metrics.power_failures > 0);
        assert!(out.metrics.reexecution > Energy::ZERO);
    }

    #[test]
    fn livelocks_when_budget_too_small() {
        // A latch-to-latch stretch longer than the period: the voltage
        // check cannot help because the checkpoint location is fixed.
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        // One huge straight-line block: no latch, no checkpoint.
        for _ in 0..400 {
            let v = f.load_scalar(x);
            f.store_scalar(x, v);
        }
        f.ret(None);
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let im = Mementos::default()
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        let out = run(&im, RunConfig::periodic(500)).unwrap();
        assert_eq!(out.status, RunStatus::Livelock);
    }
}
