//! RATCHET (Van Der Woude & Hicks, OSDI 2016): intermittent computation
//! without hardware support or programmer intervention.
//!
//! RATCHET keeps *all* data in NVM, so nothing needs checkpointing except
//! CPU registers — but rollback re-execution then re-applies NVM writes.
//! To keep re-execution idempotent, RATCHET inserts compile-time
//! checkpoints that break **write-after-read (WAR) dependencies**: a
//! store to a location that may already have been read since the last
//! checkpoint gets a checkpoint right before it, so the re-executed read
//! can never observe the new value.
//!
//! RATCHET does not adapt to the capacitor size, so forward progress is
//! not guaranteed for small energy budgets (Table III).

use crate::common::{check_module, Technique};
use schematic_core::PlacementError;
use schematic_emu::{AllocationPlan, CheckpointSpec, FailurePolicy, InstrumentedModule};
use schematic_energy::{CostTable, Energy};
use schematic_ir::{call_effects, BlockId, Cfg, CheckpointId, FuncId, Inst, Module, VarSet};

/// The RATCHET technique (all-NVM, WAR-breaking static checkpoints).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ratchet;

impl Technique for Ratchet {
    fn name(&self) -> &'static str {
        "Ratchet"
    }

    /// All-NVM: runs on any VM size (Table I: all ✓).
    fn supports(&self, _module: &Module, _svm_bytes: usize) -> bool {
        true
    }

    fn compile(
        &self,
        module: &Module,
        _table: &CostTable,
        _eb: Energy,
    ) -> Result<InstrumentedModule, PlacementError> {
        check_module(module)?;
        let mut m = module.clone();
        let effects = call_effects(&m);

        let mut checkpoints: Vec<CheckpointSpec> = Vec::new();
        for fi in 0..m.funcs.len() {
            let fid = FuncId::from_usize(fi);
            // May-read-since-last-checkpoint at block entry, as a
            // fixpoint over the CFG. Within a block, a checkpoint clears
            // the set; stores to read vars demand a checkpoint.
            let cfg = Cfg::new(m.func(fid));
            let n = m.func(fid).blocks.len();
            let mut in_read: Vec<VarSet> = vec![VarSet::new(m.vars.len()); n];
            let mut changed = true;
            while changed {
                changed = false;
                for bi in 0..n {
                    let b = BlockId::from_usize(bi);
                    let mut set = VarSet::new(m.vars.len());
                    for &p in cfg.preds(b) {
                        set.union_with(&block_out_reads(&m, fid, p, &in_read[p.index()], &effects));
                    }
                    if set != in_read[bi] {
                        in_read[bi] = set;
                        changed = true;
                    }
                }
            }

            // Insert checkpoints before WAR stores.
            #[allow(clippy::needless_range_loop)]
            for bi in 0..n {
                let mut set = in_read[bi].clone();
                let mut i = 0;
                while i < m.funcs[fid.index()].blocks[bi].insts.len() {
                    let needs_cp = {
                        let inst = &m.funcs[fid.index()].blocks[bi].insts[i];
                        war_hazard(inst, &set, &effects)
                    };
                    if needs_cp {
                        let id = CheckpointId::from_usize(checkpoints.len());
                        checkpoints.push(CheckpointSpec::registers_only());
                        m.funcs[fid.index()].blocks[bi]
                            .insts
                            .insert(i, Inst::Checkpoint { id });
                        set = VarSet::new(m.vars.len());
                        i += 1; // skip the inserted checkpoint
                    }
                    track_reads(
                        &m.funcs[fid.index()].blocks[bi].insts[i],
                        &mut set,
                        &effects,
                    );
                    i += 1;
                }
            }
        }

        let plan = AllocationPlan::all_nvm(&m);
        Ok(InstrumentedModule {
            technique: "Ratchet".into(),
            module: m,
            checkpoints,
            plan,
            policy: FailurePolicy::Rollback,
            boot_restore: Vec::new(),
        })
    }
}

/// Reads accumulated by executing a whole block starting from `entry`.
fn block_out_reads(
    m: &Module,
    fid: FuncId,
    b: BlockId,
    entry: &VarSet,
    effects: &[schematic_ir::CallEffect],
) -> VarSet {
    let mut set = entry.clone();
    for inst in &m.func(fid).block(b).insts {
        if inst.is_checkpoint() {
            set = VarSet::new(m.vars.len());
        }
        track_reads(inst, &mut set, effects);
    }
    set
}

/// Whether executing `inst` with `read_set` pending is a WAR hazard.
fn war_hazard(inst: &Inst, read_set: &VarSet, effects: &[schematic_ir::CallEffect]) -> bool {
    match inst {
        Inst::Store { var, .. } => read_set.contains(*var),
        Inst::Call { func, .. } => {
            // Callee writes clashing with pending caller reads.
            effects[func.index()]
                .writes
                .iter()
                .any(|v| read_set.contains(v))
        }
        _ => false,
    }
}

fn track_reads(inst: &Inst, set: &mut VarSet, effects: &[schematic_ir::CallEffect]) {
    match inst {
        Inst::Load { var, .. } => {
            set.insert(*var);
        }
        Inst::Call { func, .. } => {
            // Conservative: everything the callee touches counts as read
            // (its own internal WARs are protected by its own
            // instrumentation; the boundary effects are what matter
            // here).
            set.union_with(&effects[func.index()].reads);
            set.union_with(&effects[func.index()].writes);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::default_table;
    use schematic_emu::{run, RunConfig};
    use schematic_ir::{FunctionBuilder, ModuleBuilder, Variable};

    /// `x = x + 1` — the canonical WAR hazard of the paper's §V.
    fn increment_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let mut f = FunctionBuilder::new("main", 0);
        for _ in 0..10 {
            let v = f.load_scalar(x);
            let v2 = f.bin(schematic_ir::BinOp::Add, v, 1);
            f.store_scalar(x, v2);
        }
        let r = f.load_scalar(x);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn breaks_war_dependencies() {
        let m = increment_module();
        let im = Ratchet
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        // One checkpoint before each of the 10 increments' stores.
        assert_eq!(im.checkpoints.len(), 10);
        assert_eq!(im.policy, FailurePolicy::Rollback);
    }

    #[test]
    fn correct_under_intermittent_power() {
        let m = increment_module();
        let im = Ratchet
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        // Very frequent failures: without WAR breaking the result would
        // over-count; with RATCHET it is exact. (Below ~500 cycles the
        // fixed placement livelocks — RATCHET does not adapt to EB,
        // which is exactly Table III's point.)
        for tbpf in [600u64, 1_000] {
            let out = run(&im, RunConfig::periodic(tbpf)).unwrap();
            assert!(out.completed(), "tbpf={tbpf}: {:?}", out.status);
            assert_eq!(out.result, Some(10), "tbpf={tbpf}");
        }
    }

    #[test]
    fn supports_any_vm_size() {
        let m = increment_module();
        assert!(Ratchet.supports(&m, 0));
    }

    #[test]
    fn loop_carried_war_checkpointed() {
        // The motivating example: `sum += array[i]` in a loop. The load
        // of `sum` before its store spans the back edge, so the read set
        // at the store must include the loop-carried read.
        let mut mb = ModuleBuilder::new("m");
        let arr = mb.var(Variable::array("a", 8).with_init((1..=8).collect()));
        let sum = mb.var(Variable::scalar("sum"));
        let mut f = FunctionBuilder::new("main", 0);
        let h = f.new_block("h");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(h);
        f.switch_to(h);
        f.set_max_iters(h, 9);
        let c = f.cmp(schematic_ir::CmpOp::SGe, i, 8);
        f.cond_br(c, exit, body);
        f.switch_to(body);
        let v = f.load_idx(arr, i);
        let s = f.load_scalar(sum);
        let s2 = f.bin(schematic_ir::BinOp::Add, s, v);
        f.store_scalar(sum, s2);
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(h);
        f.switch_to(exit);
        let r = f.load_scalar(sum);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let im = Ratchet
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        assert!(!im.checkpoints.is_empty());
        for tbpf in [400u64, 700] {
            let out = run(&im, RunConfig::periodic(tbpf)).unwrap();
            assert!(out.completed());
            assert_eq!(out.result, Some(36), "tbpf={tbpf}");
        }
    }

    #[test]
    fn no_spurious_checkpoints_without_war() {
        // Write-only then read-only: no WAR, no checkpoints.
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let y = mb.var(Variable::scalar("y"));
        let mut f = FunctionBuilder::new("main", 0);
        f.store_scalar(x, 1); // write before any read: no hazard
        let v = f.load_scalar(y);
        f.ret(Some(v.into()));
        let main = mb.func(f.finish());
        let m = mb.finish(main);
        let im = Ratchet
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        assert!(im.checkpoints.is_empty());
    }
}
