//! The common interface of intermittency techniques, plus shared
//! instrumentation helpers.

use schematic_core::PlacementError;
use schematic_emu::InstrumentedModule;
use schematic_energy::{CostTable, Energy};
use schematic_ir::{BlockId, Edge, FuncId, Inst, Module, VarId};

/// An intermittency-management technique: a static VM-fit check
/// (Table I) and a compiler.
pub trait Technique {
    /// Display name, matching the paper's tables.
    fn name(&self) -> &'static str;

    /// Whether the technique can run `module` on a platform with
    /// `svm_bytes` bytes of volatile memory (Table I's criterion).
    fn supports(&self, module: &Module, svm_bytes: usize) -> bool;

    /// Instruments `module` for intermittent execution with capacitor
    /// budget `eb`.
    ///
    /// # Errors
    ///
    /// Techniques that adapt to the platform (ROCKCLIMB) fail when no
    /// sound placement exists; the others are placement-oblivious and
    /// only fail on invalid modules.
    fn compile(
        &self,
        module: &Module,
        table: &CostTable,
        eb: Energy,
    ) -> Result<InstrumentedModule, PlacementError>;
}

/// All non-pinned variables of a module (the all-VM working set).
pub fn vm_eligible_vars(module: &Module) -> Vec<VarId> {
    module
        .iter_vars()
        .filter(|(_, v)| !v.pinned_nvm)
        .map(|(id, _)| id)
        .collect()
}

/// Splits every latch→header back-edge of every natural loop and runs
/// `f` on each new block (to insert the checkpoint instruction),
/// returning the new blocks.
pub fn split_back_edges(
    module: &mut Module,
    mut f: impl FnMut(&mut Module, FuncId, BlockId, Edge),
) {
    for fi in 0..module.funcs.len() {
        let fid = FuncId::from_usize(fi);
        let forest = schematic_ir::LoopForest::of(module.func(fid));
        let mut edges: Vec<Edge> = Vec::new();
        for l in &forest.loops {
            for &latch in &l.latches {
                edges.push(Edge::new(latch, l.header));
            }
        }
        edges.sort();
        edges.dedup();
        for e in edges {
            let nb = module.func_mut(fid).split_edge(e.from, e.to);
            f(module, fid, nb, e);
        }
    }
}

/// Inserts `make_inst()` at the start of every natural-loop header.
pub fn checkpoint_loop_headers(module: &mut Module, mut make_inst: impl FnMut() -> Inst) {
    for fi in 0..module.funcs.len() {
        let fid = FuncId::from_usize(fi);
        let forest = schematic_ir::LoopForest::of(module.func(fid));
        let headers: Vec<BlockId> = forest.loops.iter().map(|l| l.header).collect();
        for h in headers {
            let inst = make_inst();
            module.func_mut(fid).block_mut(h).insts.insert(0, inst);
        }
    }
}

/// Inserts `make_inst()` before every call instruction.
pub fn checkpoint_before_calls(module: &mut Module, mut make_inst: impl FnMut() -> Inst) {
    for func in &mut module.funcs {
        for block in &mut func.blocks {
            let mut i = 0;
            while i < block.insts.len() {
                if matches!(block.insts[i], Inst::Call { .. }) {
                    block.insts.insert(i, make_inst());
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Rejects invalid modules with a uniform error.
pub fn check_module(module: &Module) -> Result<(), PlacementError> {
    match schematic_ir::verify_module(module).into_iter().next() {
        None => Ok(()),
        Some(e) => Err(PlacementError::InvalidModule {
            message: e.to_string(),
        }),
    }
}

/// Helper: the default cost table (used by tests).
pub fn default_table() -> CostTable {
    CostTable::msp430fr5969()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schematic_ir::{CmpOp, FunctionBuilder, ModuleBuilder, Variable};

    fn looped_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let _p = mb.var(Variable::array("tab", 4).pinned());
        let mut leaf = FunctionBuilder::new("leaf", 0);
        leaf.ret(None);
        let leaf = mb.func(leaf.finish());
        let mut f = FunctionBuilder::new("main", 0);
        let h = f.new_block("h");
        let b = f.new_block("b");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(h);
        f.switch_to(h);
        f.set_max_iters(h, 4);
        let c = f.cmp(CmpOp::SGe, i, 3);
        f.cond_br(c, exit, b);
        f.switch_to(b);
        let v = f.load_scalar(x);
        f.store_scalar(x, v);
        f.call_void(leaf, vec![]);
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(h);
        f.switch_to(exit);
        f.ret(None);
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn vm_eligible_skips_pinned() {
        let m = looped_module();
        let vars = vm_eligible_vars(&m);
        assert_eq!(vars.len(), 1);
    }

    #[test]
    fn split_back_edges_adds_blocks() {
        let mut m = looped_module();
        let before = m.funcs[1].blocks.len();
        let mut seen = 0;
        split_back_edges(&mut m, |_, _, _, _| seen += 1);
        assert_eq!(seen, 1);
        assert_eq!(m.funcs[1].blocks.len(), before + 1);
        assert!(schematic_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn header_and_call_insertion() {
        let mut m = looped_module();
        checkpoint_loop_headers(&mut m, || Inst::Checkpoint {
            id: schematic_ir::CheckpointId(0),
        });
        let h = m.funcs[1].block_by_name("h").unwrap();
        assert!(matches!(
            m.funcs[1].block(h).insts[0],
            Inst::Checkpoint { .. }
        ));
        checkpoint_before_calls(&mut m, || Inst::Checkpoint {
            id: schematic_ir::CheckpointId(1),
        });
        let b = m.funcs[1].block_by_name("b").unwrap();
        let insts = &m.funcs[1].block(b).insts;
        let call_pos = insts
            .iter()
            .position(|i| matches!(i, Inst::Call { .. }))
            .unwrap();
        assert!(matches!(insts[call_pos - 1], Inst::Checkpoint { .. }));
    }
}
