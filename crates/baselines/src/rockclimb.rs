//! ROCKCLIMB (Choi, Kittinger, Liu & Jung, RTAS 2022): compiler-directed
//! high-performance intermittent computation with power-failure immunity.
//!
//! ROCKCLIMB keeps all data in NVM and, like SCHEMATIC, *waits for the
//! capacitor to recharge* at every checkpoint, so no code is ever
//! re-executed and no memory anomaly can occur. Placement is two-pass
//! (§IV-A.b):
//!
//! 1. checkpoints at every loop header and before every call;
//! 2. a CFG traversal adding checkpoints wherever the worst-case energy
//!    between checkpoints could still exceed `EB` (we drive this pass
//!    with the same independent energy verifier SCHEMATIC's backstop
//!    uses).
//!
//! The paper's loop-unrolling optimization (factor ≤ 10) exists to avoid
//! checkpointing on every iteration; we model it as *conditional* header
//! checkpointing with the equivalent period `min(10, ⌊EB′/E_iter⌋)`,
//! which has the same checkpoint frequency without duplicating code.

use crate::common::{check_module, checkpoint_before_calls, Technique};
use schematic_core::pverify::patch_placement;
use schematic_core::PlacementError;
use schematic_emu::{AllocationPlan, CheckpointSpec, FailurePolicy, InstrumentedModule};
use schematic_energy::{CostTable, Energy, MemClass};
use schematic_ir::{CheckpointId, FuncId, Inst, LoopForest, Module};

/// Maximum modelled unrolling factor (the paper limits unrolling to 10).
pub const MAX_UNROLL: u64 = 10;

/// The ROCKCLIMB technique (all-NVM, wait-until-recharged, adaptive
/// placement).
#[derive(Debug, Clone, Copy, Default)]
pub struct Rockclimb;

impl Technique for Rockclimb {
    fn name(&self) -> &'static str {
        "Rockclimb"
    }

    /// All-NVM: runs on any VM size (Table I: all ✓).
    fn supports(&self, _module: &Module, _svm_bytes: usize) -> bool {
        true
    }

    fn compile(
        &self,
        module: &Module,
        table: &CostTable,
        eb: Energy,
    ) -> Result<InstrumentedModule, PlacementError> {
        check_module(module)?;
        let mut m = module.clone();
        // Give the energy verifier room to insert checkpoints inside
        // oversized straight-line stretches and between adjacent calls.
        schematic_core::transform::split_large_blocks(&mut m, table, eb)?;

        let mut checkpoints: Vec<CheckpointSpec> = Vec::new();

        // Pass 1a: conditional checkpoints at loop headers, with the
        // unrolling-equivalent period.
        let overhead =
            table.checkpoint_commit_cost(0).energy + table.checkpoint_resume_cost(0).energy;
        for fi in 0..m.funcs.len() {
            let fid = FuncId::from_usize(fi);
            let forest = LoopForest::of(m.func(fid));
            let headers: Vec<(schematic_ir::BlockId, Energy)> = forest
                .loops
                .iter()
                .map(|l| {
                    // Upper bound of one iteration: the sum of all body
                    // blocks, all-NVM.
                    let iter: Energy = l
                        .body
                        .iter()
                        .map(|&b| {
                            schematic_energy::block_cost(
                                table,
                                m.func(fid),
                                b,
                                &|_| MemClass::Nvm,
                                &|_| schematic_energy::Cost::ZERO,
                            )
                            .energy
                        })
                        .sum();
                    (l.header, iter)
                })
                .collect();
            for (header, iter) in headers {
                let budget = eb.saturating_sub(overhead);
                let period = budget
                    .div_floor(iter)
                    .unwrap_or(MAX_UNROLL)
                    .clamp(1, MAX_UNROLL) as u32;
                let id = CheckpointId::from_usize(checkpoints.len());
                checkpoints.push(CheckpointSpec::registers_only());
                let inst = if period > 1 {
                    Inst::CondCheckpoint { id, period }
                } else {
                    Inst::Checkpoint { id }
                };
                m.func_mut(fid).block_mut(header).insts.insert(0, inst);
            }
        }

        // Pass 1b: checkpoints before calls.
        checkpoint_before_calls(&mut m, || {
            let id = CheckpointId::from_usize(checkpoints.len());
            checkpoints.push(CheckpointSpec::registers_only());
            Inst::Checkpoint { id }
        });

        let plan = AllocationPlan::all_nvm(&m);
        let mut im = InstrumentedModule {
            technique: "Rockclimb".into(),
            module: m,
            checkpoints,
            plan,
            policy: FailurePolicy::WaitRecharge,
            boot_restore: Vec::new(),
        };

        // Pass 2: add checkpoints wherever a stretch could exceed EB.
        patch_placement(&mut im, table, eb, 1024)?;
        Ok(im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::default_table;
    use schematic_core::verify_placement;
    use schematic_emu::{run, Machine, RunConfig};

    #[test]
    fn supports_everything() {
        let m = schematic_benchsuite::crc::build(1);
        assert!(Rockclimb.supports(&m, 0));
    }

    #[test]
    fn placement_is_sound_and_completes_intermittently() {
        let table = default_table();
        let tbpf = 10_000u64;
        let eb = Energy::from_pj(table.cpu_pj_per_cycle) * tbpf;
        for name in ["crc", "randmath", "bitcount"] {
            let b = schematic_benchsuite::by_name(name).unwrap();
            let m = (b.build)(5);
            let im = Rockclimb.compile(&m, &table, eb).unwrap();
            let report = verify_placement(&im, &table, eb);
            assert!(report.is_sound(), "{name}: {:?}", report.violations);
            let out = Machine::new(&im, &table, RunConfig::periodic(tbpf))
                .run()
                .unwrap();
            assert!(out.completed(), "{name}: {:?}", out.status);
            assert_eq!(out.result, Some((b.oracle)(5)), "{name}");
            assert_eq!(out.metrics.unexpected_failures, 0, "{name}");
            assert_eq!(out.metrics.reexecution, Energy::ZERO, "{name}");
        }
    }

    #[test]
    fn all_nvm_no_vm_traffic() {
        let table = default_table();
        let m = schematic_benchsuite::crc::build(1);
        let im = Rockclimb.compile(&m, &table, Energy::from_uj(3)).unwrap();
        let out = run(&im, RunConfig::default()).unwrap();
        assert_eq!(out.metrics.vm_reads + out.metrics.vm_writes, 0);
    }

    #[test]
    fn checkpoints_at_headers_and_calls() {
        let table = default_table();
        let m = schematic_benchsuite::bitcount::build(1);
        let im = Rockclimb.compile(&m, &table, Energy::from_uj(3)).unwrap();
        // bitcount: 3 helper loops + main's 2 loops + 3 calls/element,
        // at least.
        assert!(im.checkpoints.len() >= 8, "{}", im.checkpoints.len());
    }
}
