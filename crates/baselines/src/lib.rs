//! # schematic-baselines
//!
//! The four baseline intermittent-computing techniques the SCHEMATIC
//! paper compares against (§IV-A.b), re-implemented on the same IR,
//! emulator and energy model — exactly as the paper re-implemented them
//! inside SCEPTIC for a fair comparison:
//!
//! * [`Ratchet`] — all-NVM working memory; compile-time checkpoints
//!   break write-after-read (WAR) dependencies so rollback re-execution
//!   is idempotent. Registers are the only volatile data saved.
//! * [`Mementos`] — all-VM working memory; potential checkpoints at loop
//!   latches commit only when a runtime voltage measurement shows the
//!   capacitor below a threshold.
//! * [`Rockclimb`] — all-NVM; checkpoints at loop headers and before
//!   calls, plus a second pass adding checkpoints wherever the energy
//!   between checkpoints could exceed `EB`; wait-until-recharged at
//!   every checkpoint (same runtime discipline as SCHEMATIC). The loop
//!   unrolling optimization (factor ≤ 10) is modelled as conditional
//!   header checkpointing with the equivalent period.
//! * [`Alfred`] — all-VM working memory with deferred restoration (on
//!   first read, via the emulator's lazy-restore path) and anticipated
//!   saving (dirty variables written back at region checkpoints);
//!   checkpoints at loop latches save registers only.
//!
//! Every technique implements [`Technique`]: a VM-fit check (Table I)
//! and a compiler producing an
//! [`schematic_emu::InstrumentedModule`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alfred;
pub mod common;
pub mod mementos;
pub mod ratchet;
pub mod rockclimb;

pub use alfred::Alfred;
pub use common::Technique;
pub use mementos::Mementos;
pub use ratchet::Ratchet;
pub use rockclimb::Rockclimb;

/// All four baselines, in the paper's order.
pub fn all() -> Vec<Box<dyn Technique>> {
    vec![
        Box::new(Ratchet),
        Box::new(Mementos::default()),
        Box::new(Rockclimb),
        Box::new(Alfred),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_baselines_in_paper_order() {
        let names: Vec<_> = all().iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["Ratchet", "Mementos", "Rockclimb", "Alfred"]);
    }
}
