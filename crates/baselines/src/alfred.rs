//! ALFRED (Maioli & Mottola, SenSys 2021): virtual memory for
//! intermittent computing.
//!
//! ALFRED uses VM as working memory as much as possible and reduces the
//! checkpoint overhead with *deferred restoration* (a variable is
//! reloaded from NVM on its first read after a reboot) and *anticipated
//! saving* (a variable is persisted at its last write before a
//! checkpoint). At a checkpoint, only the CPU registers are saved.
//!
//! On our emulator the deferred restore maps directly onto the lazy
//! VM-fault path (charged to the *restore* category on first access
//! after a failure), and anticipated saving is modelled by persisting
//! each checkpoint region's written variables when its checkpoint
//! commits — the same bytes cross the VM→NVM boundary once per region
//! either way.
//!
//! ALFRED addresses VM and NVM with the same offsets, so it needs a VM
//! as large as the data segment: like MEMENTOS it cannot run `dijkstra`,
//! `fft` or `rc4` on a 2 KB-VM platform (Table I). Its checkpoint
//! placement (loop latches, following the paper's setup) does not adapt
//! to `EB`, so forward progress can fail for small budgets (Table III).

use crate::common::{check_module, split_back_edges, vm_eligible_vars, Technique};
use schematic_core::PlacementError;
use schematic_emu::{
    AllocationPlan, CheckpointKind, CheckpointSpec, FailurePolicy, InstrumentedModule,
};
use schematic_energy::{CostTable, Energy};
use schematic_ir::{call_effects, CheckpointId, Inst, LoopForest, Module, VarId};

/// The ALFRED technique (all-VM, deferred restore, anticipated save).
#[derive(Debug, Clone, Copy, Default)]
pub struct Alfred;

impl Technique for Alfred {
    fn name(&self) -> &'static str {
        "Alfred"
    }

    /// Same-offset VM addressing: the data segment must fit the VM
    /// (Table I).
    fn supports(&self, module: &Module, svm_bytes: usize) -> bool {
        module.data_bytes() <= svm_bytes
    }

    fn compile(
        &self,
        module: &Module,
        _table: &CostTable,
        _eb: Energy,
    ) -> Result<InstrumentedModule, PlacementError> {
        check_module(module)?;
        let mut m = module.clone();
        let effects = call_effects(&m);
        let mut checkpoints: Vec<CheckpointSpec> = Vec::new();

        // Checkpoints on loop latches; anticipated saving persists the
        // variables the loop body may have written (their last write
        // precedes the latch). Restoration is deferred: the restore list
        // is empty and first reads fault the data back in lazily.
        split_back_edges(&mut m, |m, fid, nb, edge| {
            let forest = LoopForest::of(m.func(fid));
            let written: Vec<VarId> = forest
                .loops
                .iter()
                .find(|l| l.header == edge.to)
                .map(|l| {
                    let mut set = schematic_ir::VarSet::new(m.vars.len());
                    for &b in &l.body {
                        for inst in &m.func(fid).block(b).insts {
                            match inst {
                                Inst::Store { var, .. } => {
                                    set.insert(*var);
                                }
                                Inst::Call { func, .. } => {
                                    set.union_with(&effects[func.index()].writes);
                                }
                                _ => {}
                            }
                        }
                    }
                    set.iter().filter(|v| !m.var(*v).pinned_nvm).collect()
                })
                .unwrap_or_default();
            let id = CheckpointId::from_usize(checkpoints.len());
            checkpoints.push(CheckpointSpec {
                save_vars: written,
                restore_vars: Vec::new(), // deferred restoration
                kind: CheckpointKind::Plain,
            });
            m.func_mut(fid)
                .block_mut(nb)
                .insts
                .push(Inst::Checkpoint { id });
        });

        let plan = AllocationPlan::all_vm(&m);
        let _ = vm_eligible_vars(&m); // (all-VM plan covers them)
        Ok(InstrumentedModule {
            technique: "Alfred".into(),
            module: m,
            checkpoints,
            plan,
            // Variables are restored lazily on first read after the
            // reboot, so nothing is staged at boot.
            boot_restore: Vec::new(),
            policy: FailurePolicy::Rollback,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::default_table;
    use schematic_emu::{run, RunConfig};
    use schematic_ir::{CmpOp, FunctionBuilder, ModuleBuilder, Variable};

    fn looped_module(trips: i32) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let x = mb.var(Variable::scalar("x"));
        let ro = mb.var(Variable::array("table", 8).with_init((0..8).collect()));
        let mut f = FunctionBuilder::new("main", 0);
        let h = f.new_block("h");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        let i = f.copy(0);
        f.br(h);
        f.switch_to(h);
        f.set_max_iters(h, trips as u64 + 1);
        let c = f.cmp(CmpOp::SGe, i, trips);
        f.cond_br(c, exit, body);
        f.switch_to(body);
        let m7 = f.bin(schematic_ir::BinOp::And, i, 7);
        let t = f.load_idx(ro, m7);
        let v = f.load_scalar(x);
        let v2 = f.bin(schematic_ir::BinOp::Add, v, t);
        f.store_scalar(x, v2);
        let i2 = f.bin(schematic_ir::BinOp::Add, i, 1);
        f.copy_to(i, i2);
        f.br(h);
        f.switch_to(exit);
        let r = f.load_scalar(x);
        f.ret(Some(r.into()));
        let main = mb.func(f.finish());
        mb.finish(main)
    }

    #[test]
    fn saves_only_written_variables() {
        let m = looped_module(8);
        let im = Alfred
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        assert_eq!(im.checkpoints.len(), 1);
        let x = m.var_by_name("x").unwrap();
        let table = m.var_by_name("table").unwrap();
        assert_eq!(im.checkpoints[0].save_vars, vec![x]);
        assert!(!im.checkpoints[0].save_vars.contains(&table));
        assert!(im.checkpoints[0].restore_vars.is_empty());
        assert!(im.boot_restore.is_empty());
    }

    #[test]
    fn vm_fit_check_matches_mementos_rule() {
        let m = looped_module(4);
        assert!(Alfred.supports(&m, 2048));
        assert!(!Alfred.supports(&m, 16));
    }

    #[test]
    fn correct_under_intermittent_power_with_deferred_restores() {
        let m = looped_module(120);
        let im = Alfred
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        let out = run(&im, RunConfig::periodic(4_000)).unwrap();
        assert!(out.completed(), "{:?}", out.status);
        // 0+1+2+...: 15 full rounds of 0..7 over 120 iterations.
        let expected: i32 = (0..120).map(|i| i & 7).sum();
        assert_eq!(out.result, Some(expected));
        assert!(out.metrics.power_failures > 0);
        // Deferred restoration shows up as lazy faults, not checkpoint
        // restores.
        assert!(out.metrics.implicit_restores > 0);
    }

    #[test]
    fn all_accesses_hit_vm_under_continuous_power() {
        let m = looped_module(16);
        let im = Alfred
            .compile(&m, &default_table(), Energy::from_uj(4))
            .unwrap();
        let out = run(&im, RunConfig::default()).unwrap();
        assert_eq!(out.metrics.nvm_reads + out.metrics.nvm_writes, 0);
        assert!(out.metrics.vm_reads > 0);
    }
}
